//! Quickstart: deploy NetAgg on an in-process transport, register a
//! user-defined aggregation function, and aggregate partial results from
//! four workers through an on-path agg box.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use netagg_core::prelude::*;
use netagg_net::ChannelTransport;
use std::sync::Arc;
use std::time::Duration;

/// A "top-1" aggregation: every worker reports its best (score, label)
/// candidate; the aggregate keeps the maximum.
struct Best;

impl AggregationFunction for Best {
    type Item = (f64, String);

    fn deserialize(&self, b: &Bytes) -> Result<Self::Item, AggError> {
        let s = std::str::from_utf8(b).map_err(|e| AggError::Corrupt(e.to_string()))?;
        let (score, label) = s
            .split_once('|')
            .ok_or_else(|| AggError::Corrupt("missing separator".into()))?;
        Ok((
            score
                .parse()
                .map_err(|_| AggError::Corrupt("bad score".into()))?,
            label.to_string(),
        ))
    }

    fn serialize(&self, (score, label): &Self::Item) -> Bytes {
        Bytes::from(format!("{score}|{label}"))
    }

    fn aggregate(&self, items: Vec<Self::Item>) -> Self::Item {
        items
            .into_iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .expect("non-empty")
    }

    fn empty(&self) -> Self::Item {
        (f64::NEG_INFINITY, String::new())
    }
}

fn main() {
    // One rack, four workers, one agg box attached to the rack switch.
    let transport = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(4, 1);
    let mut deployment = NetAggDeployment::launch(transport, &cluster).expect("launch deployment");

    let app = deployment.register_app("best", Arc::new(AggWrapper::new(Best)), 1.0);
    let master = deployment.master_shim(app);
    let workers: Vec<_> = (0..4).map(|w| deployment.worker_shim(app, w)).collect();

    // The master announces a request; every worker ships its partial
    // result through its shim, which redirects it to the on-path box.
    let pending = master.register_request(1, workers.len());
    let candidates = ["0.72|amber", "0.91|indigo", "0.55|teal", "0.88|crimson"];
    for (w, c) in workers.iter().zip(candidates) {
        w.send_partial(1, Bytes::from(c)).unwrap();
    }

    let result = pending.wait(Duration::from_secs(5)).expect("aggregated");
    println!(
        "combined result (aggregated on-path at the agg box): {}",
        String::from_utf8_lossy(&result.combined)
    );
    println!(
        "the master saw {} source message(s); {} empty worker results were emulated",
        result.master_inputs, result.emulated_empty
    );
    assert_eq!(result.combined.as_ref(), b"0.91|indigo");
    deployment.shutdown();
    println!("ok");
}
