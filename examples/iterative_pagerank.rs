//! Iterative PageRank over the NetAgg platform: each iteration broadcasts
//! the current ranks *down* the aggregation tree (the paper's Section 5
//! one-to-many extension) and aggregates the new rank contributions *up*
//! through the on-path combiner — the traffic pattern of iterative graph
//! processing and distributed learning the paper motivates.
//!
//! Run with: `cargo run --release --example iterative_pagerank`

use minimr::jobs::PageRank;
use minimr::netagg::CombinerAgg;
use minimr::seqfile;
use minimr::types::{f64_value, parse_f64, Pair};
use netagg_core::prelude::*;
use netagg_net::ChannelTransport;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const NODES: u32 = 64;
const WORKERS: u32 = 4;
const ITERATIONS: u64 = 8;
const DAMPING: f64 = 0.85;

/// Deterministic small graph: node i links to (i*7+1) % NODES and
/// (i/2 + 3) % NODES — irregular enough to make ranks diverge.
fn out_links(node: u32) -> Vec<u32> {
    vec![(node * 7 + 1) % NODES, (node / 2 + 3) % NODES]
}

fn main() {
    let transport = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, WORKERS / 2, 1);
    let mut deployment = NetAggDeployment::launch(transport, &cluster).unwrap();
    // The on-path aggregation function is PageRank's combiner: summing the
    // rank mass received per destination node.
    let app = deployment.register_app(
        "pagerank",
        Arc::new(AggWrapper::new(CombinerAgg::new(Arc::new(PageRank)))),
        1.0,
    );
    let master = deployment.master_shim(app);
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| deployment.worker_shim(app, w))
        .collect();
    std::thread::sleep(Duration::from_millis(50)); // listeners come up

    // Node ownership: worker w owns nodes w, w+WORKERS, ...
    let mut ranks: HashMap<u32, f64> = (0..NODES).map(|n| (n, 1.0)).collect();

    for iter in 0..ITERATIONS {
        // 1. Broadcast the full rank vector down the tree: the master emits
        //    one copy per root box; boxes replicate to the workers.
        let mut table = Vec::with_capacity(NODES as usize);
        for n in 0..NODES {
            table.push(Pair::new(format!("n{n}"), f64_value(ranks[&n])));
        }
        master.broadcast(iter, seqfile::encode(&table)).unwrap();

        // 2. Every worker computes contributions for ITS nodes and ships
        //    them up; on-path boxes run the combiner (mass sums per node).
        let pending = master.register_request(iter, workers.len());
        for (w, shim) in workers.iter().enumerate() {
            let (_, payload) = shim.recv_broadcast(Duration::from_secs(5)).unwrap();
            let ranks_in: HashMap<String, f64> = seqfile::decode(&payload.clone())
                .unwrap()
                .into_iter()
                .map(|p| {
                    (
                        String::from_utf8(p.key.to_vec()).unwrap(),
                        parse_f64(&p.value).unwrap(),
                    )
                })
                .collect();
            let mut contributions = Vec::new();
            for node in (w as u32..NODES).step_by(WORKERS as usize) {
                let rank = ranks_in[&format!("n{node}")];
                let links = out_links(node);
                let share = rank / links.len() as f64;
                for dst in links {
                    contributions.push(Pair::new(format!("n{dst}"), f64_value(share)));
                }
            }
            shim.send_partial(iter, seqfile::encode(&contributions))
                .unwrap();
        }

        // 3. The master receives the combined mass per node and applies the
        //    damping update.
        let result = pending.wait(Duration::from_secs(10)).unwrap();
        let combined = seqfile::decode(&result.combined).unwrap();
        let mut mass: HashMap<u32, f64> = HashMap::new();
        for p in combined {
            let name = String::from_utf8(p.key.to_vec()).unwrap();
            let node: u32 = name[1..].parse().unwrap();
            *mass.entry(node).or_insert(0.0) += parse_f64(&p.value).unwrap();
        }
        for n in 0..NODES {
            let m = mass.get(&n).copied().unwrap_or(0.0);
            ranks.insert(n, (1.0 - DAMPING) + DAMPING * m);
        }
        let total: f64 = ranks.values().sum();
        println!(
            "iteration {iter}: total rank {total:7.3} (master merged {} on-path aggregate(s))",
            result.master_inputs
        );
    }

    let mut top: Vec<(u32, f64)> = ranks.into_iter().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 nodes after {ITERATIONS} iterations:");
    for (n, r) in top.iter().take(5) {
        println!("  n{n}: {r:.4}");
    }
    // Rank mass is conserved by the damping update (up to fp error).
    let total: f64 = top.iter().map(|(_, r)| r).sum();
    let rel_err = (total - f64::from(NODES)).abs() / f64::from(NODES);
    assert!(rel_err < 0.01, "total {total}");
    deployment.shutdown();
    println!("\nok");
}
