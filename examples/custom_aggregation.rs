//! Writing your own aggregation function: an approximate distinct-count
//! sketch aggregated on-path.
//!
//! The platform runs ANY associative + commutative function on the agg
//! boxes. This example builds a HyperLogLog-style cardinality sketch —
//! workers count distinct user ids locally, boxes merge sketches with a
//! register-wise max, and the master reads one estimate — and shows the
//! recommended workflow:
//!
//!  1. implement [`AggregationFunction`],
//!  2. verify the algebraic laws with [`netagg_core::laws`]
//!     (a function that fails them gives tree-shape-dependent answers),
//!  3. deploy and aggregate on-path.
//!
//! Run with: `cargo run --example custom_aggregation`

use bytes::Bytes;
use netagg_core::prelude::*;
use netagg_core::{laws, protocol_hash};
use netagg_net::ChannelTransport;
use std::sync::Arc;
use std::time::Duration;

/// Number of HyperLogLog registers (2^8; ~6.5 % standard error).
const REGISTERS: usize = 256;

/// A HyperLogLog cardinality sketch: register `i` holds the maximum
/// leading-zero rank observed among hashes routed to bucket `i`.
#[derive(Clone, PartialEq, Eq)]
struct Sketch {
    registers: [u8; REGISTERS],
}

impl Sketch {
    fn new() -> Self {
        Self {
            registers: [0; REGISTERS],
        }
    }

    /// Observe one item.
    fn insert(&mut self, item: u64) {
        let h = protocol_hash(item);
        let bucket = (h & (REGISTERS as u64 - 1)) as usize;
        // Rank = position of the first 1-bit in the remaining 56 bits.
        let rank = ((h >> 8) | (1 << 56)).trailing_zeros() as u8 + 1;
        self.registers[bucket] = self.registers[bucket].max(rank);
    }

    /// Merge another sketch into this one (register-wise max): the
    /// associative, commutative operation the boxes run.
    fn merge(&mut self, other: &Sketch) {
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
    }

    /// Standard HyperLogLog estimator with the small-range correction.
    fn estimate(&self) -> f64 {
        let m = REGISTERS as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// The platform adapter: one register byte-array on the wire.
struct DistinctCount;

impl AggregationFunction for DistinctCount {
    type Item = Sketch;

    fn deserialize(&self, payload: &Bytes) -> Result<Sketch, AggError> {
        if payload.len() != REGISTERS {
            return Err(AggError::Corrupt(format!(
                "sketch must be {REGISTERS} bytes, got {}",
                payload.len()
            )));
        }
        let mut s = Sketch::new();
        s.registers.copy_from_slice(payload);
        Ok(s)
    }

    fn serialize(&self, item: &Sketch) -> Bytes {
        Bytes::copy_from_slice(&item.registers)
    }

    fn aggregate(&self, items: Vec<Sketch>) -> Sketch {
        let mut out = Sketch::new();
        for s in &items {
            out.merge(s);
        }
        out
    }

    fn empty(&self) -> Sketch {
        Sketch::new()
    }
}

fn main() {
    // Step 1: check the laws BEFORE deploying. Register-wise max is
    // associative, commutative, and the all-zero sketch is its identity —
    // but verify mechanically rather than by argument.
    let sample_payloads: Vec<Bytes> = (0..6)
        .map(|w| {
            let mut s = Sketch::new();
            for i in 0..500u64 {
                s.insert(w * 137 + i * 3);
            }
            DistinctCount.serialize(&s)
        })
        .collect();
    laws::assert_laws(&DistinctCount, &sample_payloads);
    println!("laws hold: merge consistency, commutativity, identity, stability");

    // Step 2: deploy. Two racks, one agg box each; sketches merge at the
    // rack box, then at the root box, and the master sees ONE sketch.
    let transport = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 4, 1);
    let mut deployment = NetAggDeployment::launch(transport, &cluster).expect("launch");
    let app = deployment.register_app("distinct", Arc::new(AggWrapper::new(DistinctCount)), 1.0);
    let master = deployment.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| deployment.worker_shim(app, w))
        .collect();

    // Step 3: each worker observes an overlapping slice of a stream of
    // user ids (heavy duplication across workers) and ships ONE sketch.
    let ids_per_worker = 30_000u64;
    let overlap = 10_000u64; // shared prefix seen by every worker
    let pending = master.register_request(1, workers.len());
    for (i, w) in workers.iter().enumerate() {
        let mut sketch = Sketch::new();
        for id in 0..overlap {
            sketch.insert(id);
        }
        let base = overlap + i as u64 * (ids_per_worker - overlap);
        for id in 0..(ids_per_worker - overlap) {
            sketch.insert(base + id);
        }
        w.send_partial(1, DistinctCount.serialize(&sketch))
            .expect("send sketch");
    }
    let result = pending.wait(Duration::from_secs(10)).expect("aggregate");
    let merged = DistinctCount.deserialize(&result.combined).expect("decode");

    let true_distinct = overlap + workers.len() as u64 * (ids_per_worker - overlap);
    let estimate = merged.estimate();
    let err = (estimate - true_distinct as f64).abs() / true_distinct as f64;
    println!(
        "true distinct ids: {true_distinct}, on-path estimate: {estimate:.0} ({:.1} % error)",
        err * 100.0
    );
    println!(
        "master received {} sketch(es) of {} bytes — not {} workers x {} bytes",
        result.master_inputs,
        result.master_input_bytes,
        workers.len(),
        REGISTERS
    );
    assert!(
        err < 0.25,
        "estimate should be within the sketch's error bound"
    );
    assert_eq!(result.master_inputs, 1, "aggregation happened on-path");
    deployment.shutdown();
}
