//! The nightly scenario matrix: sweep the [`ScenarioSpec`] grid —
//! topology shapes × impairment profiles — running every cell's full
//! workload mix on both transport providers and asserting the §7/§14
//! teardown contract. CI's per-commit gate runs the single quick soak;
//! this sweep covers the rest of the grid on a schedule.
//!
//! Run with: `cargo run --release --example scenario_matrix [filter]`
//! where `filter` is a substring of the cell names to run (the nightly
//! workflow shards on it; no filter runs everything).

use netagg_scenarios::{
    builtin_providers, run_scenario, Impairment, ScenarioSpec, SyntheticKind, TopologySpec,
};

/// Topology axis: rack count × workers per rack × boxes per rack.
fn topologies() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("flat", TopologySpec::single_rack(6, 1)),
        ("racked", TopologySpec::multi_rack(2, 3, 1)),
        ("wide", TopologySpec::multi_rack(3, 4, 2)),
    ]
}

/// Impairment axis, from clean to the full storm. Thresholds are
/// fractions of the cell's synthetic request count so every topology
/// sees the fault mid-run.
fn impairments(requests: u64) -> Vec<(&'static str, Vec<Impairment>)> {
    vec![
        ("clean", vec![]),
        (
            "failover",
            vec![Impairment::BoxKill {
                slot: 0,
                after_requests: requests / 3,
            }],
        ),
        (
            "partition",
            vec![Impairment::Partition {
                slots: vec![0],
                at_requests: requests / 3,
                heal_after_requests: requests / 3,
            }],
        ),
        (
            "storm",
            vec![
                Impairment::SeededBoxKill {
                    slot: 0,
                    frames_lo: 500,
                    frames_hi: 1_500,
                },
                Impairment::StragglerStorm {
                    workers: vec![1, 2],
                    delay_ms: 1,
                    from_requests: requests / 4,
                    until_requests: requests / 2,
                },
            ],
        ),
    ]
}

fn cells() -> Vec<(String, ScenarioSpec)> {
    let requests = 1_200;
    let mut out = Vec::new();
    for (tname, topo) in topologies() {
        for (iname, faults) in impairments(requests) {
            let name = format!("{tname}-{iname}");
            let mut spec = ScenarioSpec::new(&name, topo)
                .synthetic("sum", SyntheticKind::Sum, requests, 2.0)
                .synthetic("topk", SyntheticKind::TopK { k: 4 }, requests / 2, 1.0)
                .mapreduce(8, 1.0)
                .with_fast_detector()
                .with_inflight(8);
            for f in faults {
                spec = spec.impair(f);
            }
            out.push((name, spec));
        }
    }
    out
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let mut ran = 0;
    for (name, spec) in cells() {
        if !name.contains(&filter) {
            continue;
        }
        for provider in builtin_providers() {
            let report = run_scenario(&spec, provider.as_ref()).unwrap();
            println!("{}", report.summary());
            assert!(
                report.passed(),
                "{name}/{}: failures={} mismatches={} violations={:?}",
                report.provider,
                report.failures,
                report.mismatches,
                report.violations
            );
            ran += 1;
        }
    }
    assert!(ran > 0, "filter {filter:?} matched no matrix cells");
    println!("scenario matrix ok: {ran} runs");
}
