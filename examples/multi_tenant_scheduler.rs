//! Two applications — a latency-sensitive search engine and a
//! throughput-oriented map/reduce job — sharing one agg box, with the
//! adaptive weighted-fair scheduler balancing their CPU shares
//! (Section 4.2.3 / Figs. 25–26 of the paper).
//!
//! Run with: `cargo run --release --example multi_tenant_scheduler`

use netagg_core::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use netagg_core::protocol::AppId;
use std::time::{Duration, Instant};

fn run(adaptive: bool) -> (f64, f64) {
    let mut sched = TaskScheduler::new(SchedulerConfig {
        threads: 2,
        adaptive,
        ema_alpha: 0.2,
        seed: 11,
    });
    let search = AppId(1); // ~3 ms aggregation tasks (ranked merges)
    let batch = AppId(2); // ~1 ms combiner tasks
    sched.register_app(search, 1.0);
    sched.register_app(batch, 1.0);
    // Keep both queues saturated through the measurement window.
    for _ in 0..4_000 {
        sched.submit(
            search,
            Box::new(|| std::thread::sleep(Duration::from_millis(3))),
        );
        sched.submit(
            batch,
            Box::new(|| std::thread::sleep(Duration::from_millis(1))),
        );
    }
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(1_500) {
        std::thread::sleep(Duration::from_millis(100));
    }
    let cpu = sched.cpu_times();
    let s = cpu.iter().find(|c| c.app == search).unwrap().cpu_seconds;
    let b = cpu.iter().find(|c| c.app == batch).unwrap().cpu_seconds;
    sched.shutdown();
    let total = s + b;
    (s / total, b / total)
}

fn main() {
    println!("two applications share one agg box; both are entitled to 50% CPU");
    println!("search tasks take ~3 ms, batch combiner tasks ~1 ms\n");

    let (s, b) = run(false);
    println!(
        "fixed weights   : search {:4.0}%  batch {:4.0}%   <- long tasks starve the batch app",
        s * 100.0,
        b * 100.0
    );
    let (s2, b2) = run(true);
    println!(
        "adaptive weights: search {:4.0}%  batch {:4.0}%   <- shares match the 50/50 target",
        s2 * 100.0,
        b2 * 100.0
    );

    assert!(s > 0.62, "fixed weights should starve the short-task app");
    assert!((s2 - 0.5).abs() < 0.12, "adaptive weights should equalise");
}
