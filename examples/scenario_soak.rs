//! Declarative scenarios: one [`ScenarioSpec`] runs the full workload mix
//! (synthetic aggregations, search, map/reduce) with a seeded impairment
//! schedule, identically on every transport provider, and checks the
//! platform's teardown contract (DESIGN.md §7/§14) at the end.
//!
//! This is a miniature of the soak harness (`repro soak`); it finishes in
//! a few seconds.
//!
//! Run with: `cargo run --example scenario_soak`

use netagg_scenarios::{
    builtin_providers, run_scenario, Impairment, ScenarioSpec, SyntheticKind, TopologySpec,
};

fn main() {
    // Two racks, a box per rack; three apps plus a mid-run box kill and a
    // straggler storm, all derived from the spec's seed.
    let spec = ScenarioSpec::new("example-soak", TopologySpec::multi_rack(2, 3, 1))
        .synthetic("sum", SyntheticKind::Sum, 2_000, 2.0)
        .synthetic("topk", SyntheticKind::TopK { k: 4 }, 1_000, 1.0)
        .mapreduce(10, 1.0)
        .impair(Impairment::BoxKill {
            slot: 0,
            after_requests: 800,
        })
        .impair(Impairment::StragglerStorm {
            workers: vec![1, 4],
            delay_ms: 1,
            from_requests: 400,
            until_requests: 700,
        })
        .with_fast_detector()
        .with_inflight(8);

    // The same spec runs against the in-process channel transport and the
    // TCP sharded reactor; only timing may differ.
    for provider in builtin_providers() {
        let report = run_scenario(&spec, provider.as_ref()).unwrap();
        println!("{}", report.summary());
        assert!(
            report.passed(),
            "{}: failures={} mismatches={} violations={:?}",
            report.provider,
            report.failures,
            report.mismatches,
            report.violations
        );
    }
    println!("ok");
}
