//! WordCount on the map/reduce framework, with the combiner running
//! on-path at an agg box — the paper's Hadoop scenario. Compares the
//! shuffle+reduce time with and without the box over an emulated 1 Gbps /
//! 10 Gbps network.
//!
//! Run with: `cargo run --release --example mapreduce_wordcount`

use minimr::cluster::{JobConfig, MRCluster};
use minimr::jobs::{wordcount_input, WordCount};
use minimr::types::parse_u64;
use netagg_core::prelude::*;
use netagg_core::runtime::NetAggDeployment;
use netagg_core::shim::TreeSelection;
use netagg_core::tree;
use netagg_net::{EmuNet, Transport};
use std::sync::Arc;
use std::time::Duration;

const GBPS: f64 = 1e9 / 8.0;
const SCALE: f64 = 1e-2;

fn network(mappers: u32, boxes: u32) -> EmuNet {
    let app = AppId(0);
    let mut b = EmuNet::builder()
        .bandwidth_scale(SCALE)
        .endpoint(tree::master_addr(app), GBPS);
    for w in 0..mappers {
        b = b.endpoint(tree::worker_addr(app, w), GBPS);
    }
    for bx in 0..boxes {
        b = b.endpoint(tree::box_addr(bx), 10.0 * GBPS);
    }
    b.build()
}

fn run(boxes: u32) -> minimr::JobResult {
    let mappers = 8u32;
    let transport: Arc<dyn Transport> = Arc::new(network(mappers, boxes));
    let spec = ClusterSpec::single_rack(mappers, boxes);
    let mut deployment = NetAggDeployment::launch(transport, &spec).unwrap();
    let cluster = MRCluster::launch(
        &mut deployment,
        Arc::new(WordCount),
        TreeSelection::PerRequest,
        1.0,
    );
    // ~1.5 MB of text over a 2 000-word vocabulary: heavy repetition, so
    // combining reduces the shuffle to roughly 10 % of the intermediate
    // data — the regime where on-path aggregation shines.
    let inputs = wordcount_input(mappers as usize, 190_000, 2_000, 7);
    let result = cluster
        .run(
            inputs,
            &JobConfig {
                timeout: Duration::from_secs(120),
                ..JobConfig::default()
            },
        )
        .unwrap();
    deployment.shutdown();
    result
}

fn main() {
    println!("WordCount, 8 mappers -> 1 reducer over emulated 1 Gbps links\n");
    let plain = run(0);
    println!(
        "plain : shuffle+reduce {:>8.3?}  (reducer received {:.2} MB of {:.2} MB intermediate)",
        plain.shuffle_reduce_time,
        plain.reducer_input_bytes as f64 / 1e6,
        plain.intermediate_bytes as f64 / 1e6,
    );
    let netagg = run(1);
    println!(
        "netagg: shuffle+reduce {:>8.3?}  (reducer received {:.2} MB of {:.2} MB intermediate)",
        netagg.shuffle_reduce_time,
        netagg.reducer_input_bytes as f64 / 1e6,
        netagg.intermediate_bytes as f64 / 1e6,
    );
    println!(
        "\nspeedup {:.1}x; on-path combining cut the reducer's input to {:.0}%",
        plain.shuffle_reduce_time.as_secs_f64() / netagg.shuffle_reduce_time.as_secs_f64(),
        netagg.reduction_ratio() * 100.0
    );
    // Outputs agree exactly (u64 counts are order-insensitive).
    assert_eq!(plain.output, netagg.output);
    let top = netagg
        .output
        .iter()
        .max_by_key(|p| parse_u64(&p.value).unwrap_or(0))
        .unwrap();
    println!(
        "most frequent word: {} ({} occurrences)",
        String::from_utf8_lossy(&top.key),
        parse_u64(&top.value).unwrap()
    );
}
