//! A distributed search cluster (the paper's Solr scenario): ten backends
//! behind a frontend, partial top-k results aggregated on-path, compared
//! against the same cluster without agg boxes — over an emulated network
//! with 1 Gbps edge links and a 10 Gbps box link.
//!
//! Run with: `cargo run --release --example search_cluster`

use minisearch::corpus::CorpusConfig;
use minisearch::frontend::{frontend_service_addr, FrontendConfig};
use minisearch::netagg::{SearchCluster, SearchFunction};
use netagg_core::prelude::*;
use netagg_core::runtime::NetAggDeployment;
use netagg_core::tree;
use netagg_net::{EmuNet, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GBPS: f64 = 1e9 / 8.0;
const SCALE: f64 = 1e-2; // emulate "1 Gbps" as 1.25 MB/s for wall-clock speed

fn emulated_network(boxes: u32, backends: u32) -> EmuNet {
    let app = AppId(0);
    let mut b = EmuNet::builder()
        .bandwidth_scale(SCALE)
        .endpoint(tree::master_addr(app), GBPS);
    for w in 0..backends {
        b = b.endpoint(tree::worker_addr(app, w), GBPS);
    }
    for bx in 0..boxes {
        b = b.endpoint(tree::box_addr(bx), 10.0 * GBPS);
    }
    let net = b.build();
    net.alias(frontend_service_addr(app), tree::master_addr(app))
        .unwrap();
    for w in 0..backends {
        net.alias(tree::service_addr(app, w), tree::worker_addr(app, w))
            .unwrap();
    }
    net
}

fn run(boxes: u32, queries: usize) -> (f64, Duration) {
    let backends = 10u32;
    let transport: Arc<dyn Transport> = Arc::new(emulated_network(boxes, backends));
    let spec = ClusterSpec::single_rack(backends, boxes);
    let mut deployment = NetAggDeployment::launch(transport.clone(), &spec).unwrap();
    let mut cluster = SearchCluster::launch(
        &mut deployment,
        transport,
        &CorpusConfig {
            num_docs: 1_000,
            vocabulary: 4_000,
            mean_words: 60,
            markers_per_doc: 4,
            seed: 11,
        },
        SearchFunction::Sample { alpha: 0.05 },
        FrontendConfig {
            backend_k: 300,
            timeout: Duration::from_secs(30),
        },
        1.0,
    )
    .unwrap();

    let t0 = Instant::now();
    let mut latencies = Vec::new();
    for q in 0..queries {
        let terms = vec![
            minisearch::corpus::word(q % 50),
            minisearch::corpus::word((q * 7) % 400),
            minisearch::corpus::word((q * 13) % 4_000),
        ];
        let out = cluster.frontend.query(&terms).expect("query succeeds");
        latencies.push(out.latency);
    }
    let elapsed = t0.elapsed();
    let bytes: u64 = cluster
        .backends
        .iter()
        .map(|b| {
            b.stats()
                .result_bytes
                .load(std::sync::atomic::Ordering::Relaxed)
        })
        .sum();
    // Partial-result traffic rate, scaled back to nominal link speeds.
    let throughput = bytes as f64 / elapsed.as_secs_f64() / SCALE;
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    cluster.shutdown();
    deployment.shutdown();
    (throughput, p99)
}

fn main() {
    let queries = 60;
    println!("running {queries} queries against 10 backends...\n");
    let (plain_tp, plain_p99) = run(0, queries);
    println!(
        "plain  (no boxes):  throughput {:6.2} Gbps   p99 latency {:?}",
        plain_tp * 8.0 / 1e9,
        plain_p99
    );
    let (net_tp, net_p99) = run(1, queries);
    println!(
        "netagg (1 agg box): throughput {:6.2} Gbps   p99 latency {:?}",
        net_tp * 8.0 / 1e9,
        net_p99
    );
    println!(
        "\non-path aggregation improved throughput {:.1}x (paper: up to 9.3x)",
        net_tp / plain_tp
    );
}
