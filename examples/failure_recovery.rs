//! Agg-box failure recovery: kill the box mid-workload and watch the
//! failure detector re-point the workers at the master, with the replay
//! buffers recovering the in-flight request (Section 3.1, "Handling
//! failures").
//!
//! Run with: `cargo run --example failure_recovery`

use bytes::Bytes;
use netagg_core::failure::DetectorConfig;
use netagg_core::prelude::*;
use netagg_net::{ChannelTransport, FaultController, FaultTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn main() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut deployment = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = deployment.register_app("sum", Arc::new(AggWrapper::new(Sum)), 1.0);
    let master = deployment.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| deployment.worker_shim(app, w)).collect();
    deployment.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });

    // Healthy request: aggregated at the box.
    let p = master.register_request(1, 3);
    for w in &workers {
        w.send_partial(1, Bytes::from("10")).unwrap();
    }
    let r = p.wait(Duration::from_secs(5)).unwrap();
    println!(
        "request 1 (box healthy): sum = {} via {} master input(s)",
        String::from_utf8_lossy(&r.combined),
        r.master_inputs
    );

    // Kill the box with a request half-delivered.
    let p = master.register_request(2, 3);
    workers[0].send_partial(2, Bytes::from("1")).unwrap();
    workers[1].send_partial(2, Bytes::from("2")).unwrap();
    let box_addr = deployment.boxes()[0].addr();
    println!("\nkilling the agg box mid-request...");
    ctl.kill(box_addr);
    std::thread::sleep(Duration::from_millis(400)); // detector fires, redirects
    workers[2].send_partial(2, Bytes::from("4")).unwrap();
    let r = p.wait(Duration::from_secs(10)).unwrap();
    println!(
        "request 2 (box dead):    sum = {} via {} master input(s) — replay buffers resent the lost partials",
        String::from_utf8_lossy(&r.combined),
        r.master_inputs
    );
    assert_eq!(r.combined.as_ref(), b"7");

    // Later requests keep working without the box.
    let p = master.register_request(3, 3);
    for w in &workers {
        w.send_partial(3, Bytes::from("5")).unwrap();
    }
    let r = p.wait(Duration::from_secs(5)).unwrap();
    println!(
        "request 3 (box dead):    sum = {} — workers now send directly to the master",
        String::from_utf8_lossy(&r.combined)
    );
    assert_eq!(r.combined.as_ref(), b"15");
    deployment.shutdown();
    println!("\nok");
}
