//! Agg-box failure recovery: kill the box mid-workload and watch the
//! failure detector re-point the workers at the master, with the replay
//! buffers recovering the in-flight request (Section 3.1, "Handling
//! failures").
//!
//! The deployment is assembled by the scenario harness — one spec names
//! the topology, the workload and the detector; the fault controller and
//! shims come from accessors instead of hand-wiring.
//!
//! Run with: `cargo run --example failure_recovery`

use bytes::Bytes;
use netagg_scenarios::{
    ChannelProvider, ScenarioHarness, ScenarioSpec, SyntheticKind, TopologySpec,
};
use std::time::Duration;

fn main() {
    // Zero spec-driven requests: this example narrates each request by
    // hand through the harness's shim accessors.
    let spec = ScenarioSpec::new("failure-recovery", TopologySpec::single_rack(3, 1))
        .synthetic("sum", SyntheticKind::Sum, 0, 1.0)
        .with_fast_detector();
    let harness = ScenarioHarness::build(&spec, &ChannelProvider).unwrap();
    let (master, workers) = harness.synthetic_shims(0).unwrap();
    let master = master.clone();
    let workers = workers.to_vec();

    // Healthy request: aggregated at the box.
    let p = master.register_request(1, 3);
    for w in &workers {
        w.send_partial(1, Bytes::from("10")).unwrap();
    }
    let r = p.wait(Duration::from_secs(5)).unwrap();
    println!(
        "request 1 (box healthy): sum = {} via {} master input(s)",
        String::from_utf8_lossy(&r.combined),
        r.master_inputs
    );

    // Kill the box with a request half-delivered.
    let p = master.register_request(2, 3);
    workers[0].send_partial(2, Bytes::from("1")).unwrap();
    workers[1].send_partial(2, Bytes::from("2")).unwrap();
    let box_addr = harness.deployment().boxes()[0].addr();
    println!("\nkilling the agg box mid-request...");
    harness.fault().kill(box_addr);
    std::thread::sleep(Duration::from_millis(400)); // detector fires, redirects
    workers[2].send_partial(2, Bytes::from("4")).unwrap();
    let r = p.wait(Duration::from_secs(10)).unwrap();
    println!(
        "request 2 (box dead):    sum = {} via {} master input(s) — replay buffers resent the lost partials",
        String::from_utf8_lossy(&r.combined),
        r.master_inputs
    );
    assert_eq!(r.combined.as_ref(), b"7");

    // Later requests keep working without the box.
    let p = master.register_request(3, 3);
    for w in &workers {
        w.send_partial(3, Bytes::from("5")).unwrap();
    }
    let r = p.wait(Duration::from_secs(5)).unwrap();
    println!(
        "request 3 (box dead):    sum = {} — workers now send directly to the master",
        String::from_utf8_lossy(&r.combined)
    );
    assert_eq!(r.combined.as_ref(), b"15");
    drop((master, workers));
    let report = harness.finish();
    println!(
        "\nteardown contract: detections={} repoints={} violations={:?}",
        report.detections, report.repoints, report.violations
    );
    assert!(report.violations.is_empty());
    println!("\nok");
}
