//! Sustained-overflow accounting for `DropOldest` mailboxes: under a
//! deterministic producer/consumer rate gap, the `mailbox.dropped.*`
//! counters must match the evictions *exactly* (no sampling, no drift),
//! the depth gauge must track occupancy, and the surviving items must be
//! precisely the ones a FIFO-evicting model predicts.

use netagg_net::lifecycle::{CancelToken, Mailbox, OverflowPolicy};
use netagg_obs::MetricsRegistry;
use std::collections::VecDeque;

#[test]
fn drop_oldest_counters_match_evictions_exactly() {
    const CAPACITY: usize = 16;
    const ROUNDS: u64 = 200;
    const PRODUCED_PER_ROUND: u64 = 5;
    const CONSUMED_PER_ROUND: u64 = 2;

    let obs = MetricsRegistry::new();
    let cancel = CancelToken::new();
    let mb: Mailbox<u64> = Mailbox::with_obs(
        "overflow",
        CAPACITY,
        OverflowPolicy::DropOldest,
        cancel,
        &obs,
    );

    // Reference model: a FIFO that evicts its head on overflow.
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut model_dropped: u64 = 0;
    let mut next = 0u64;

    for round in 0..ROUNDS {
        // Producer runs faster than the consumer: +5 / -2 per round, so
        // the queue saturates and stays saturated — sustained overflow.
        for _ in 0..PRODUCED_PER_ROUND {
            mb.send(next).expect("DropOldest send never fails");
            model.push_back(next);
            if model.len() > CAPACITY {
                model.pop_front();
                model_dropped += 1;
            }
            next += 1;
        }
        for _ in 0..CONSUMED_PER_ROUND {
            let got = mb.recv().expect("queue is non-empty by construction");
            let want = model.pop_front().expect("model in sync");
            assert_eq!(
                got, want,
                "round {round}: eviction must drop the *oldest* item, \
                 so the head the consumer sees matches the model"
            );
        }
        // Exact agreement every round, not just at the end: a counter
        // updated lazily or in batches would fail here.
        assert_eq!(mb.dropped(), model_dropped, "round {round}: dropped()");
        assert_eq!(
            obs.counter("mailbox.dropped.overflow").get(),
            model_dropped,
            "round {round}: mailbox.dropped.<name>"
        );
        assert_eq!(
            obs.counter("mailbox.dropped.drop_oldest").get(),
            model_dropped,
            "round {round}: mailbox.dropped.<policy>"
        );
        assert_eq!(
            obs.gauge("mailbox.depth.overflow").get(),
            model.len() as f64,
            "round {round}: depth gauge tracks occupancy"
        );
    }

    // Conservation: every produced item was consumed, evicted, or still
    // queued — drops are not merely *close* to the rate gap, they account
    // for it exactly.
    let produced = ROUNDS * PRODUCED_PER_ROUND;
    let consumed = ROUNDS * CONSUMED_PER_ROUND;
    assert_eq!(
        model_dropped,
        produced - consumed - model.len() as u64,
        "conservation: produced = consumed + dropped + queued"
    );

    // Drain what survives: it must be exactly the model's tail.
    while let Some(want) = model.pop_front() {
        assert_eq!(mb.recv().unwrap(), want);
    }
}
