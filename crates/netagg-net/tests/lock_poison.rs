//! §15 poison handling: a thread killed while holding an [`OrderedMutex`]
//! mid-request must surface as a `lock_poison` structured event and a
//! clean drain (`runtime.threads_active` back to zero) — never as a
//! `PoisonError` cascade through the surviving holders.

use std::sync::Arc;
use std::time::Duration;

use netagg_net::lifecycle::{
    poisoned_locks, set_poison_sink, witness_reset, CancelToken, JoinScope, OrderedMutex,
};
use netagg_net::lock_order;
use netagg_obs::{names, MetricsRegistry};

#[test]
fn killed_holder_poisons_without_cascading_and_the_scope_drains() {
    // The witness (and therefore the poison log) only exists in debug
    // builds; in release this test degenerates to the drain check.
    witness_reset();
    let obs = MetricsRegistry::new();
    set_poison_sink(&obs);
    let gauge = obs.gauge(names::RUNTIME_THREADS_ACTIVE);

    let cancel = CancelToken::new();
    let scope = JoinScope::with_obs("poison-test", cancel, Duration::from_secs(5), Some(&obs));
    let state = Arc::new(OrderedMutex::new(lock_order::AGG_STATES, 0u32));

    let held = state.clone();
    scope
        .spawn("test-poison-victim", move || {
            let mut g = held.lock();
            *g += 1; // a half-applied update the panic abandons
            panic!("killed mid-request");
        })
        .unwrap();

    // The drain sees the panic as a reported thread failure, not a hang.
    let err = scope.join_all().expect_err("victim panic must be reported");
    let report = format!("{err:?}");
    assert!(report.contains("test-poison-victim"), "{report}");
    assert_eq!(gauge.get(), 0.0, "deployment did not drain to zero threads");

    // No cascade: the lock is still acquirable and shows the partial
    // update (the shim never poisons).
    assert_eq!(*state.lock(), 1);

    if cfg!(debug_assertions) {
        assert!(
            poisoned_locks().iter().any(|l| l == "agg.states"),
            "poison log missed the dead holder: {:?}",
            poisoned_locks()
        );
        let events = obs.events();
        let poison: Vec<_> = events
            .iter()
            .filter(|e| e.kind == names::EVENT_LOCK_POISON)
            .collect();
        assert!(
            poison.iter().any(|e| e.detail.contains("agg.states")),
            "no lock_poison event named the lock: {events:?}"
        );
    }
}
