//! Property-based tests of the network substrate: the frame codec must
//! survive arbitrary payloads and arbitrary fragmentation, the wire
//! helpers must round-trip and never panic on garbage, and the in-process
//! transport must preserve per-connection FIFO order.

use bytes::BytesMut;
use netagg_net::{encode_frame, ChannelTransport, FrameDecoder, Transport};
use proptest::prelude::*;

proptest! {
    /// Any sequence of payloads, encoded back-to-back and re-fed to the
    /// decoder in arbitrary chunk sizes, decodes to the same sequence.
    #[test]
    fn framing_roundtrips_under_fragmentation(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..20),
        cuts in proptest::collection::vec(1usize..64, 1..50),
    ) {
        let mut wire = BytesMut::new();
        for p in &payloads {
            encode_frame(p, &mut wire).unwrap();
        }
        let wire = wire.freeze();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        let mut offset = 0;
        let mut cut_iter = cuts.iter().cycle();
        while offset < wire.len() {
            let take = (*cut_iter.next().unwrap()).min(wire.len() - offset);
            dec.feed(&wire[offset..offset + take]);
            offset += take;
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f.to_vec());
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// The decoder never panics on arbitrary garbage: every outcome is a
    /// frame, "need more data", or a frame-too-large error.
    #[test]
    fn decoder_tolerates_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        dec.feed(&data);
        for _ in 0..data.len() + 1 {
            match dec.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Wire byte-string round-trips preserve content and consume exactly
    /// the bytes written.
    #[test]
    fn wire_bytes_roundtrip(
        items in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100), 0..10)
    ) {
        use netagg_net::wire::{get_bytes, put_bytes};
        let mut buf = BytesMut::new();
        for b in &items {
            put_bytes(&mut buf, b);
        }
        let mut src = buf.freeze();
        for b in &items {
            let got = get_bytes(&mut src).unwrap();
            prop_assert_eq!(got.as_ref(), b.as_slice());
        }
        prop_assert!(src.is_empty());
    }

    /// Wire decoders reject truncated or corrupt input without panicking.
    #[test]
    fn wire_decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        use netagg_net::wire::{get_bytes, get_f64, get_str, get_u32, get_u64, get_u8};
        let src = bytes::Bytes::from(data);
        let _ = get_bytes(&mut src.clone());
        let _ = get_str(&mut src.clone());
        let _ = get_u8(&mut src.clone());
        let _ = get_u32(&mut src.clone());
        let _ = get_u64(&mut src.clone());
        let _ = get_f64(&mut src.clone());
    }

    /// The in-process transport delivers each connection's messages in
    /// send order, regardless of payload sizes.
    #[test]
    fn channel_transport_preserves_fifo(
        sizes in proptest::collection::vec(0usize..4096, 1..30)
    ) {
        let t = ChannelTransport::new();
        let mut listener = t.bind(1).unwrap();
        let mut tx = t.connect(2, 1).unwrap();
        let payloads: Vec<bytes::Bytes> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut v = vec![(i % 251) as u8; n];
                v.extend_from_slice(&(i as u32).to_be_bytes());
                bytes::Bytes::from(v)
            })
            .collect();
        for p in &payloads {
            tx.send(p.clone()).unwrap();
        }
        let mut rx = listener
            .accept_timeout(std::time::Duration::from_secs(1))
            .unwrap();
        for p in &payloads {
            let got = rx
                .recv_timeout(std::time::Duration::from_secs(1))
                .unwrap();
            prop_assert_eq!(&got, p);
        }
    }
}
