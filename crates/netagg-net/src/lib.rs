//! Network substrate for the NetAgg testbed experiments.
//!
//! The paper's prototype runs on a 31-server testbed with 1 Gbps edge links
//! and 10 Gbps agg-box links. This crate reproduces that substrate on one
//! machine:
//!
//! * [`transport`] — blocking, message-oriented [`Transport`] /
//!   [`Connection`] traits with logical node addresses.
//! * [`channel`] — in-process transport over bounded [`Mailbox`]es (the
//!   bound provides natural back-pressure, mirroring the paper's
//!   back-pressure mechanism).
//! * [`tcp`] — real TCP-loopback transport: an event-driven sharded
//!   reactor multiplexing logical connections onto shared physical links
//!   with batched zero-copy framing (DESIGN.md §12).
//! * [`framing`] — the length-prefixed binary frame codec over shared
//!   zero-copy chunks (the role KryoNet plays in the paper's Java
//!   prototype).
//! * [`flow`] — [`FlowWindow`]: byte-counted per-connection send windows,
//!   the TCP reactor's sender-side backpressure (§12).
//! * [`units`] — typed [`units::Bytes`] / [`units::BitsPerSec`] /
//!   [`units::Nanosecs`] quantities used by flow control and the link
//!   emulator.
//! * [`ratelimit`] — token-bucket rate limiting used to emulate link
//!   capacities (1 Gbps edge vs 10 Gbps box links).
//! * [`emu`] — [`emu::EmuNet`]: a transport whose endpoints have emulated
//!   ingress/egress link capacities.
//! * [`fault`] — fault injection (killing endpoints, delaying messages) for
//!   failure-recovery and straggler experiments.
//! * [`lifecycle`] — the unified lifecycle & backpressure runtime:
//!   [`CancelToken`], bounded [`Mailbox`]es with overflow policies,
//!   deadline-joining [`JoinScope`]s (DESIGN.md §9), and the rank-checked
//!   [`lifecycle::OrderedMutex`] / [`lifecycle::OrderedRwLock`] wrappers
//!   with their debug-build acquisition witness (§15).
//! * [`lock_order`] — the static lock-rank registry backing §15's
//!   acquisition order, single-sourced for the wrappers and `netagg-lint`.
//! * [`metered`] — [`metered::MeteredTransport`]: a decorator that counts
//!   frames and bytes per link into a metrics registry.
//! * [`wire`] — small binary (de)serialisation helpers over [`bytes`].

#![warn(missing_docs)]

pub mod channel;
pub mod emu;
pub mod fault;
pub mod flow;
pub mod framing;
pub mod lifecycle;
pub mod lock_order;
pub mod metered;
pub mod ratelimit;
pub mod tcp;
pub mod transport;
pub mod units;
pub mod wire;

pub use channel::ChannelTransport;
pub use emu::{EmuNet, EmuNetBuilder};
pub use fault::{DetRng, FaultController, FaultStep, FaultTransport};
pub use flow::FlowWindow;
pub use framing::{encode_frame, FrameDecoder, MAX_FRAME};
pub use lifecycle::{CancelToken, JoinScope, Mailbox, OverflowPolicy};
pub use metered::MeteredTransport;
pub use ratelimit::TokenBucket;
pub use tcp::TcpTransport;
pub use transport::{Connection, Listener, NetError, NodeId, Transport};
