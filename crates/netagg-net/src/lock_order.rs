//! The single source of truth for the workspace lock-rank registry
//! (DESIGN.md §15).
//!
//! Every hot lock in the runtime is an
//! [`OrderedMutex`](crate::lifecycle::OrderedMutex) /
//! [`OrderedRwLock`](crate::lifecycle::OrderedRwLock) constructed from one
//! of the [`LockRank`] constants below. The rank encodes the only legal
//! acquisition order: a thread may acquire a lock only while every lock it
//! already holds has a *strictly smaller* rank. Outermost locks therefore
//! carry the lowest ranks; the transport layer — always acquired last, at
//! the bottom of every call chain — carries the highest.
//!
//! `netagg-lint`'s `lock-order` rule parses this file, diffs the constants
//! bidirectionally against the §15 "Lock ranks" table (the same pattern as
//! the §7 metrics contract), infers the static acquisition graph from the
//! construction and acquisition sites, and fails CI on any edge that
//! violates rank monotonicity. The debug-only runtime witness
//! (`lifecycle::witness`) enforces the identical invariant at runtime and
//! records every observed edge so the soak test can prove containment in
//! the static graph.
//!
//! Rank bands (gaps left for future locks):
//!
//! * 10–19 scenario engine (`netagg-scenarios/src/runner.rs`)
//! * 20–29 master shim (`netagg-core/src/shim/master.rs`)
//! * 30–39 worker shim (`netagg-core/src/shim/worker.rs`)
//! * 40–59 agg-box runtime (`netagg-core/src/aggbox/runtime.rs`)
//! * 60–69 agg-box scheduler (`netagg-core/src/aggbox/scheduler.rs`)
//! * 70–89 TCP reactor (`netagg-net/src/tcp.rs`)

/// A static lock rank: the position of one named lock in the global
/// acquisition order (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    /// Position in the global order; strictly increasing along every
    /// legal acquisition chain.
    pub rank: u16,
    /// Registry name, `<band>.<lock>`; the key used by the static graph,
    /// the runtime witness and the §15 table.
    pub name: &'static str,
}

impl LockRank {
    /// Declare a rank (used by the registry constants below and by tests
    /// that need ad-hoc locks outside the global order).
    pub const fn new(rank: u16, name: &'static str) -> Self {
        Self { rank, name }
    }
}

// --- scenario engine (10–19) -----------------------------------------------

/// Armed impairments not yet due; held while applying due actions.
pub const SCN_PENDING: LockRank = LockRank::new(10, "scn.pending");
/// Labels of impairments already applied (taken under `scn.pending`).
pub const SCN_APPLIED: LockRank = LockRank::new(12, "scn.applied");
/// High-water mailbox depths sampled from registry snapshots.
pub const SCN_DEPTHS: LockRank = LockRank::new(14, "scn.depths");
/// Per-application issued/completed/failure counters.
pub const SCN_APP_STATS: LockRank = LockRank::new(16, "scn.app_stats");

// --- master shim (20–29) ---------------------------------------------------

/// Per-request pending table; the master's outermost lock.
pub const MASTER_PENDING: LockRank = LockRank::new(20, "master.pending");
/// Routing table (taken under `master.pending` by ledger seeding).
pub const MASTER_ROUTES: LockRank = LockRank::new(22, "master.routes");
/// Delivered-request ring (taken under `master.pending` by the reaper).
pub const MASTER_DELIVERED: LockRank = LockRank::new(24, "master.delivered");
/// Cached control connections; held across control-plane sends.
pub const MASTER_CTRL_CONNS: LockRank = LockRank::new(26, "master.ctrl_conns");

// --- worker shim (30–39) ---------------------------------------------------

/// Tree-to-parent assignment map.
pub const WORKER_ASSIGNMENTS: LockRank = LockRank::new(30, "worker.assignments");
/// Replay buffer of sent chunks (held while clearing sequence state).
pub const WORKER_REPLAY: LockRank = LockRank::new(32, "worker.replay");
/// Per-request next-sequence counters.
pub const WORKER_SEQS: LockRank = LockRank::new(34, "worker.seqs");
/// Cached data connections; held across data-plane sends.
pub const WORKER_CONNS: LockRank = LockRank::new(36, "worker.conns");

// --- agg-box runtime (40–59) -----------------------------------------------

/// Per-request aggregation states; the box's outermost lock.
pub const AGG_STATES: LockRank = LockRank::new(40, "agg.states");
/// Registered application combiners (read under `agg.states`).
pub const AGG_APPS: LockRank = LockRank::new(42, "agg.apps");
/// Per-tree routing entries (read/written under `agg.states`).
pub const AGG_ROUTES: LockRank = LockRank::new(44, "agg.routes");
/// Per-request upstream redirect overrides.
pub const AGG_OUT_REDIRECTS: LockRank = LockRank::new(46, "agg.out_redirects");
/// Upward replay buffer (taken under `agg.states` on completion).
pub const AGG_OUT_REPLAY: LockRank = LockRank::new(48, "agg.out_replay");
/// Straggler bypass counters per (request, child box).
pub const AGG_STRAGGLER: LockRank = LockRank::new(50, "agg.straggler");

// --- agg-box scheduler (60–69) ---------------------------------------------

/// WFQ scheduler state (taken under `agg.states` by combine submission).
pub const SCHED_STATE: LockRank = LockRank::new(60, "sched.state");

// --- TCP reactor (70–89) ---------------------------------------------------

/// Reactor join scope; held only at startup, before shard threads exist.
pub const NET_SCOPE: LockRank = LockRank::new(70, "net.scope");
/// Attached metrics registry (read under `net.scope` at startup).
pub const NET_OBS: LockRank = LockRank::new(71, "net.obs");
/// NodeId → socket address registry.
pub const NET_REGISTRY: LockRank = LockRank::new(72, "net.registry");
/// Address → physical link map; held while dialling a new link.
pub const NET_LINKS: LockRank = LockRank::new(73, "net.links");
/// A link's read half (decoder + channel routing); pumping the read half
/// flushes the write half, so `net.rin` orders before `net.out`.
pub const NET_RIN: LockRank = LockRank::new(74, "net.rin");
/// A link's write half (encoder + wire queue).
pub const NET_OUT: LockRank = LockRank::new(76, "net.out");
/// A link's direct-delivery inject queue (fed under the *twin's*
/// `net.out` by the flush path).
pub const NET_INJ: LockRank = LockRank::new(78, "net.inj");
/// The process-wide read-hint directory (§12); the innermost lock.
pub const NET_LINK_DIR: LockRank = LockRank::new(79, "net.link_dir");
