//! A transport decorator that meters traffic into a
//! [`MetricsRegistry`].
//!
//! [`MeteredTransport`] wraps any [`Transport`] and counts every frame and
//! payload byte crossing it:
//!
//! * `net.frames_sent` / `net.bytes_sent` — global egress counters,
//! * `net.frames_recv` / `net.bytes_recv` — global ingress counters,
//! * `net.link.<from>-><to>.frames` / `.bytes` — per-link counters,
//!   incremented on the sending side only (so each link direction is
//!   counted exactly once even when both endpoints share the registry).
//!
//! Deployments wrap their transport once ([`crate::Transport`] objects
//! compose), so agg boxes, shims and detectors are metered without any
//! change to their code.

use crate::lifecycle::CancelToken;
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::Bytes;
use netagg_obs::{names, Counter, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

struct GlobalCounters {
    frames_sent: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    frames_recv: Arc<Counter>,
    bytes_recv: Arc<Counter>,
}

impl GlobalCounters {
    fn new(obs: &MetricsRegistry) -> Self {
        Self {
            frames_sent: obs.counter(names::NET_FRAMES_SENT),
            bytes_sent: obs.counter(names::NET_BYTES_SENT),
            frames_recv: obs.counter(names::NET_FRAMES_RECV),
            bytes_recv: obs.counter(names::NET_BYTES_RECV),
        }
    }
}

/// A [`Transport`] decorator that publishes `net.*` traffic metrics.
pub struct MeteredTransport {
    inner: Arc<dyn Transport>,
    obs: MetricsRegistry,
}

impl MeteredTransport {
    /// Wrap `inner`, publishing traffic counters to `obs`.
    pub fn new(inner: Arc<dyn Transport>, obs: MetricsRegistry) -> Self {
        Self { inner, obs }
    }

    /// The registry this transport publishes to.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.obs
    }
}

impl Transport for MeteredTransport {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        let inner = self.inner.bind(local)?;
        Ok(Box::new(MeteredListener {
            inner,
            local,
            obs: self.obs.clone(),
        }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let inner = self.inner.connect(local, peer)?;
        Ok(Box::new(MeteredConnection::new(
            inner, local, peer, &self.obs,
        )))
    }

    fn attach_obs(&self, obs: &MetricsRegistry) {
        self.inner.attach_obs(obs);
    }
}

struct MeteredListener {
    inner: Box<dyn Listener>,
    local: NodeId,
    obs: MetricsRegistry,
}

impl MeteredListener {
    fn wrap(&self, conn: Box<dyn Connection>) -> Box<dyn Connection> {
        let peer = conn.peer();
        Box::new(MeteredConnection::new(conn, self.local, peer, &self.obs))
    }
}

impl Listener for MeteredListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let conn = self.inner.accept()?;
        Ok(self.wrap(conn))
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let conn = self.inner.accept_timeout(timeout)?;
        Ok(self.wrap(conn))
    }

    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        let conn = self.inner.accept_cancellable(cancel)?;
        Ok(self.wrap(conn))
    }
}

struct MeteredConnection {
    inner: Box<dyn Connection>,
    global: GlobalCounters,
    /// `net.link.<local>-><peer>.frames` / `.bytes` (egress direction).
    link_frames: Arc<Counter>,
    link_bytes: Arc<Counter>,
}

impl MeteredConnection {
    fn new(inner: Box<dyn Connection>, local: NodeId, peer: NodeId, obs: &MetricsRegistry) -> Self {
        Self {
            inner,
            global: GlobalCounters::new(obs),
            link_frames: obs.counter(&names::net_link_frames(local, peer)),
            link_bytes: obs.counter(&names::net_link_bytes(local, peer)),
        }
    }

    fn count_recv(&self, frame: &Bytes) {
        self.global.frames_recv.inc();
        self.global.bytes_recv.add(frame.len() as u64);
    }
}

impl Connection for MeteredConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        let len = payload.len() as u64;
        self.inner.send(payload)?;
        self.global.frames_sent.inc();
        self.global.bytes_sent.add(len);
        self.link_frames.inc();
        self.link_bytes.add(len);
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        let frame = self.inner.recv()?;
        self.count_recv(&frame);
        Ok(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        let frame = self.inner.recv_timeout(timeout)?;
        self.count_recv(&frame);
        Ok(frame)
    }

    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        let frame = self.inner.recv_cancellable(cancel)?;
        self.count_recv(&frame);
        Ok(frame)
    }

    fn peer(&self) -> NodeId {
        self.inner.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelTransport;

    #[test]
    fn counts_frames_and_bytes_per_link() {
        let obs = MetricsRegistry::new();
        let t = MeteredTransport::new(Arc::new(ChannelTransport::new()), obs.clone());
        let mut listener = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        c.send(Bytes::from_static(b"hello")).unwrap();
        let mut accepted = listener.accept_timeout(Duration::from_secs(1)).unwrap();
        let got = accepted.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&got[..], b"hello");
        accepted.send(Bytes::from_static(b"ack!")).unwrap();
        let back = c.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&back[..], b"ack!");

        let snap = obs.snapshot();
        assert_eq!(snap.counter("net.frames_sent"), Some(2));
        assert_eq!(snap.counter("net.frames_recv"), Some(2));
        assert_eq!(snap.counter("net.bytes_sent"), Some(9));
        assert_eq!(snap.counter("net.bytes_recv"), Some(9));
        assert_eq!(snap.counter("net.link.2->1.frames"), Some(1));
        assert_eq!(snap.counter("net.link.2->1.bytes"), Some(5));
        assert_eq!(snap.counter("net.link.1->2.frames"), Some(1));
        assert_eq!(snap.counter("net.link.1->2.bytes"), Some(4));
    }

    #[test]
    fn unmetered_errors_pass_through() {
        let obs = MetricsRegistry::new();
        let t = MeteredTransport::new(Arc::new(ChannelTransport::new()), obs.clone());
        assert!(matches!(t.connect(5, 99), Err(NetError::NotFound(99))));
        assert_eq!(obs.snapshot().counter("net.frames_sent"), None);
    }
}
