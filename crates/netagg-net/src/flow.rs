//! Windowed outbound flow control for the TCP reactor (DESIGN.md §12).
//!
//! Every virtual connection multiplexed onto a physical link owns a
//! [`FlowWindow`]: `send` acquires the payload size before enqueueing a
//! record, and the reactor releases it when the record moves into the
//! link's write buffer. A sender that outruns the reactor therefore parks
//! on its own window instead of growing an unbounded queue — the
//! per-connection analogue of the channel transport's bounded mailbox.
//!
//! The shape follows minim's windowed flow state (SNIPPETS.md §2): typed
//! [`Bytes`] quantities, a hard limit, and explicit
//! pause (acquire blocks) / resume (release wakes) transitions. One
//! deliberate asymmetry: a payload larger than the whole window is
//! admitted whenever the window is idle (`in_flight == 0`), so oversized
//! frames make progress instead of deadlocking — the window bounds
//! *queued* bytes, it does not reject frames.

use crate::lifecycle::CancelToken;
use crate::transport::NetError;
use crate::units::Bytes;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct WindowState {
    in_flight: Bytes,
    closed: bool,
}

struct WindowShared {
    state: Mutex<WindowState>,
    cv: Condvar,
}

/// A byte-counted send window: [`acquire`](FlowWindow::acquire) blocks
/// while the window is full, [`release`](FlowWindow::release) opens it
/// back up, [`close`](FlowWindow::close) fails all waiters with
/// [`NetError::Closed`]. Clones share the window.
#[derive(Clone)]
pub struct FlowWindow {
    limit: Bytes,
    shared: Arc<WindowShared>,
}

impl FlowWindow {
    /// A window admitting up to `limit` in-flight bytes.
    pub fn new(limit: Bytes) -> Self {
        Self {
            limit,
            shared: Arc::new(WindowShared {
                state: Mutex::new(WindowState {
                    in_flight: Bytes::ZERO,
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Reserve `n` bytes, blocking while `in_flight + n` would exceed the
    /// limit — except when the window is idle, which admits any size (see
    /// the module docs). Wakes with [`NetError::Cancelled`] when `cancel`
    /// fires and [`NetError::Closed`] once the window is closed.
    pub fn acquire(&self, n: Bytes, cancel: &CancelToken) -> Result<(), NetError> {
        let wake = self.shared.clone();
        let _guard = cancel.register_waker(move || {
            // Take the lock so a waiter between its cancel check and its
            // park cannot miss the notify (same pattern as Mailbox).
            drop(wake.state.lock());
            wake.cv.notify_all();
        });
        let mut s = self.shared.state.lock();
        loop {
            if cancel.is_cancelled() {
                return Err(NetError::Cancelled);
            }
            if s.closed {
                return Err(NetError::Closed);
            }
            if s.in_flight == Bytes::ZERO || s.in_flight + n <= self.limit {
                s.in_flight += n;
                return Ok(());
            }
            self.shared.cv.wait(&mut s);
        }
    }

    /// Return `n` reserved bytes (saturating) and wake blocked acquirers.
    pub fn release(&self, n: Bytes) {
        let mut s = self.shared.state.lock();
        s.in_flight = s.in_flight.saturating_sub(n);
        drop(s);
        self.shared.cv.notify_all();
    }

    /// Fail current and future acquires with [`NetError::Closed`].
    pub fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.cv.notify_all();
    }

    /// Bytes currently reserved.
    pub fn in_flight(&self) -> Bytes {
        self.shared.state.lock().in_flight
    }

    /// The configured limit.
    pub fn limit(&self) -> Bytes {
        self.limit
    }
}

impl std::fmt::Debug for FlowWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowWindow")
            .field("limit", &self.limit)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn acquire_blocks_until_release() {
        let w = FlowWindow::new(Bytes::new(100));
        let cancel = CancelToken::new();
        w.acquire(Bytes::new(80), &cancel).unwrap();
        let w2 = w.clone();
        let c2 = cancel.clone();
        // netagg-lint: allow(no-raw-spawn) test contention thread; the window, not a scope, is under test
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            w2.acquire(Bytes::new(50), &c2).unwrap();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(40));
        w.release(Bytes::new(80));
        let waited = h.join().unwrap();
        assert!(
            waited >= Duration::from_millis(30),
            "second acquire must park"
        );
        assert_eq!(w.in_flight(), Bytes::new(50));
    }

    #[test]
    fn idle_window_admits_oversized_frames() {
        let w = FlowWindow::new(Bytes::kib(64));
        let cancel = CancelToken::new();
        // 2 MiB > the whole window, but nothing is in flight: admitted.
        w.acquire(Bytes::mib(2), &cancel).unwrap();
        assert_eq!(w.in_flight(), Bytes::mib(2));
        w.release(Bytes::mib(2));
        assert_eq!(w.in_flight(), Bytes::ZERO);
    }

    #[test]
    fn cancel_and_close_wake_blocked_acquirers() {
        let w = FlowWindow::new(Bytes::new(10));
        let cancel = CancelToken::new();
        w.acquire(Bytes::new(10), &cancel).unwrap();
        let (w2, c2) = (w.clone(), cancel.clone());
        // netagg-lint: allow(no-raw-spawn) test contention thread; the window, not a scope, is under test
        let h = std::thread::spawn(move || w2.acquire(Bytes::new(5), &c2));
        std::thread::sleep(Duration::from_millis(20));
        cancel.cancel();
        assert_eq!(h.join().unwrap(), Err(NetError::Cancelled));

        let w = FlowWindow::new(Bytes::new(10));
        let fresh = CancelToken::new();
        w.acquire(Bytes::new(10), &fresh).unwrap();
        let (w2, c2) = (w.clone(), fresh.clone());
        // netagg-lint: allow(no-raw-spawn) test contention thread; the window, not a scope, is under test
        let h = std::thread::spawn(move || w2.acquire(Bytes::new(5), &c2));
        std::thread::sleep(Duration::from_millis(20));
        w.close();
        assert_eq!(h.join().unwrap(), Err(NetError::Closed));
    }
}
