//! Minimal binary (de)serialisation helpers over [`bytes`].
//!
//! The NetAgg protocol and the application serialisers (the role Hadoop's
//! `SequenceFile` and Solr's binary codec play in the paper) are built from
//! these primitives: fixed-width integers, length-prefixed byte strings and
//! UTF-8 strings, all big-endian.

use crate::transport::NetError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use netagg_obs::trace::TraceCtx;

/// Append a length-prefixed byte string.
pub fn put_bytes(dst: &mut BytesMut, b: &[u8]) {
    dst.put_u32(b.len() as u32);
    dst.put_slice(b);
}

/// Read a length-prefixed byte string, validating against the remainder.
pub fn get_bytes(src: &mut Bytes) -> Result<Bytes, NetError> {
    if src.remaining() < 4 {
        return Err(NetError::Corrupt("missing length".into()));
    }
    let len = src.get_u32() as usize;
    if src.remaining() < len {
        return Err(NetError::Corrupt(format!(
            "length {len} exceeds remaining {}",
            src.remaining()
        )));
    }
    Ok(src.split_to(len))
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(dst: &mut BytesMut, s: &str) {
    put_bytes(dst, s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(src: &mut Bytes) -> Result<String, NetError> {
    let b = get_bytes(src)?;
    String::from_utf8(b.to_vec()).map_err(|e| NetError::Corrupt(format!("bad utf8: {e}")))
}

/// Read one byte.
pub fn get_u8(src: &mut Bytes) -> Result<u8, NetError> {
    if src.remaining() < 1 {
        return Err(NetError::Corrupt("missing u8".into()));
    }
    Ok(src.get_u8())
}

/// Read a big-endian `u32`.
pub fn get_u32(src: &mut Bytes) -> Result<u32, NetError> {
    if src.remaining() < 4 {
        return Err(NetError::Corrupt("missing u32".into()));
    }
    Ok(src.get_u32())
}

/// Read a big-endian `u64`.
pub fn get_u64(src: &mut Bytes) -> Result<u64, NetError> {
    if src.remaining() < 8 {
        return Err(NetError::Corrupt("missing u64".into()));
    }
    Ok(src.get_u64())
}

/// Read a big-endian `f64`.
pub fn get_f64(src: &mut Bytes) -> Result<f64, NetError> {
    if src.remaining() < 8 {
        return Err(NetError::Corrupt("missing f64".into()));
    }
    Ok(src.get_f64())
}

/// Append a [`TraceCtx`] as two big-endian `u64`s (DESIGN.md §11).
/// Untraced frames encode [`TraceCtx::NONE`] — 16 zero bytes — so the
/// frame layout is the same whether tracing is on or off.
pub fn put_trace(dst: &mut BytesMut, ctx: &TraceCtx) {
    dst.put_u64(ctx.trace_id);
    dst.put_u64(ctx.parent_span_id);
}

/// Read a [`TraceCtx`] written by [`put_trace`].
pub fn get_trace(src: &mut Bytes) -> Result<TraceCtx, NetError> {
    Ok(TraceCtx {
        trace_id: get_u64(src)?,
        parent_span_id: get_u64(src)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"abc");
        put_bytes(&mut buf, b"");
        put_str(&mut buf, "héllo");
        buf.put_u64(42);
        let mut src = buf.freeze();
        assert_eq!(get_bytes(&mut src).unwrap().as_ref(), b"abc");
        assert_eq!(get_bytes(&mut src).unwrap().len(), 0);
        assert_eq!(get_str(&mut src).unwrap(), "héllo");
        assert_eq!(get_u64(&mut src).unwrap(), 42);
        assert!(src.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut src = Bytes::from_static(&[0, 0, 0, 10, 1, 2]);
        assert!(get_bytes(&mut src).is_err());
        let mut empty = Bytes::new();
        assert!(get_u32(&mut empty).is_err());
        assert!(get_u64(&mut Bytes::new()).is_err());
        assert!(get_f64(&mut Bytes::new()).is_err());
        assert!(get_u8(&mut Bytes::new()).is_err());
    }

    #[test]
    fn trace_ctx_roundtrips_and_rejects_truncation() {
        let mut buf = BytesMut::new();
        let ctx = TraceCtx {
            trace_id: 0x8000_0000_0000_0001,
            parent_span_id: 42,
        };
        put_trace(&mut buf, &ctx);
        put_trace(&mut buf, &TraceCtx::NONE);
        assert_eq!(buf.len(), 32);
        let mut src = buf.freeze();
        assert_eq!(get_trace(&mut src).unwrap(), ctx);
        let none = get_trace(&mut src).unwrap();
        assert_eq!(none, TraceCtx::NONE);
        assert!(!none.is_active());
        assert!(get_trace(&mut Bytes::from_static(&[0; 15])).is_err());
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut src = buf.freeze();
        assert!(get_str(&mut src).is_err());
    }
}
