//! In-process transport over bounded crossbeam channels.
//!
//! Each connection is a pair of bounded byte-message channels. The bound
//! gives natural back-pressure: a sender blocks once the receiver's queue
//! is full, which is exactly the behaviour the paper relies on to slow
//! workers down when an agg box cannot keep up (Section 3.2.1).

use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Messages queued per direction before senders block.
const CHANNEL_DEPTH: usize = 256;

struct Pending {
    peer: NodeId,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

#[derive(Default)]
struct Registry {
    accept_queues: HashMap<NodeId, Sender<Pending>>,
}

/// In-process transport. Cheap to clone (shared registry).
#[derive(Clone, Default)]
pub struct ChannelTransport {
    registry: Arc<Mutex<Registry>>,
}

impl ChannelTransport {
    /// Create an empty in-process transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove a binding, making future connects fail (used by fault
    /// injection and clean shutdown).
    pub fn unbind(&self, node: NodeId) {
        self.registry.lock().accept_queues.remove(&node);
    }
}

impl Transport for ChannelTransport {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        let (tx, rx) = bounded::<Pending>(1024);
        let mut reg = self.registry.lock();
        if reg.accept_queues.contains_key(&local) {
            return Err(NetError::AlreadyBound(local));
        }
        reg.accept_queues.insert(local, tx);
        Ok(Box::new(ChannelListener { inbox: rx }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let accept = {
            let reg = self.registry.lock();
            reg.accept_queues
                .get(&peer)
                .cloned()
                .ok_or(NetError::NotFound(peer))?
        };
        let (tx_a, rx_a) = bounded::<Bytes>(CHANNEL_DEPTH); // local -> peer
        let (tx_b, rx_b) = bounded::<Bytes>(CHANNEL_DEPTH); // peer -> local
        let pending = Pending {
            peer: local,
            tx: tx_b,
            rx: rx_a,
        };
        match accept.try_send(pending) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                return Err(NetError::NotFound(peer))
            }
        }
        Ok(Box::new(ChannelConnection {
            peer,
            tx: tx_a,
            rx: rx_b,
        }))
    }
}

struct ChannelListener {
    inbox: Receiver<Pending>,
}

impl Listener for ChannelListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let p = self.inbox.recv().map_err(|_| NetError::Closed)?;
        Ok(Box::new(ChannelConnection {
            peer: p.peer,
            tx: p.tx,
            rx: p.rx,
        }))
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(p) => Ok(Box::new(ChannelConnection {
                peer: p.peer,
                tx: p.tx,
                rx: p.rx,
            })),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

struct ChannelConnection {
    peer: NodeId,
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl Connection for ChannelConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        self.tx.send(payload).map_err(|_| NetError::Closed)
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(b),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn peer(&self) -> NodeId {
        self.peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn connect_send_recv() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let handle = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(2, 1).unwrap();
                c.send(Bytes::from_static(b"ping")).unwrap();
                c.recv().unwrap()
            }
        });
        let mut server = l.accept().unwrap();
        assert_eq!(server.peer(), 2);
        assert_eq!(server.recv().unwrap().as_ref(), b"ping");
        server.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(handle.join().unwrap().as_ref(), b"pong");
    }

    #[test]
    fn connect_to_unbound_fails() {
        let t = ChannelTransport::new();
        assert!(matches!(t.connect(1, 99), Err(NetError::NotFound(99))));
    }

    #[test]
    fn double_bind_fails() {
        let t = ChannelTransport::new();
        let _l = t.bind(5).unwrap();
        assert!(matches!(t.bind(5), Err(NetError::AlreadyBound(5))));
    }

    #[test]
    fn recv_timeout_elapses() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        assert_eq!(
            c.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn drop_closes_connection() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        drop(c);
        assert_eq!(server.recv(), Err(NetError::Closed));
    }

    #[test]
    fn unbind_stops_new_connections() {
        let t = ChannelTransport::new();
        let _l = t.bind(1).unwrap();
        t.unbind(1);
        assert!(t.connect(2, 1).is_err());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        // Fill the queue; the next send would block, so run it in a thread
        // and verify it completes once we drain.
        for _ in 0..CHANNEL_DEPTH {
            c.send(Bytes::from_static(b"x")).unwrap();
        }
        let blocked = thread::spawn(move || {
            let mut c = c;
            c.send(Bytes::from_static(b"y")).unwrap();
            c
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!blocked.is_finished(), "send should block on a full queue");
        let mut server = _server;
        server.recv().unwrap();
        blocked.join().unwrap();
    }
}
