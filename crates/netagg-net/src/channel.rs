//! In-process transport over bounded lifecycle mailboxes.
//!
//! Each connection is a pair of bounded [`Mailbox`]es with
//! [`OverflowPolicy::Block`]. The bound gives natural back-pressure: a
//! sender blocks once the receiver's queue is full, which is exactly the
//! behaviour the paper relies on to slow workers down when an agg box
//! cannot keep up (Section 3.2.1). Because the queues are lifecycle
//! mailboxes, `recv_cancellable`/`accept_cancellable` wake instantly on
//! cancellation — no poll loop.

use crate::lifecycle::{
    CancelToken, Mailbox, MailboxRecvError, MailboxRecvTimeoutError, OverflowPolicy,
};
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Messages queued per direction before senders block.
const CHANNEL_DEPTH: usize = 256;

/// Connections queued at a listener before connects are refused.
const ACCEPT_DEPTH: usize = 1024;

struct Pending {
    peer: NodeId,
    tx: Mailbox<Bytes>,
    rx: Mailbox<Bytes>,
}

#[derive(Default)]
struct Registry {
    accept_queues: HashMap<NodeId, Mailbox<Pending>>,
}

/// In-process transport. Cheap to clone (shared registry).
#[derive(Clone, Default)]
pub struct ChannelTransport {
    registry: Arc<Mutex<Registry>>,
}

impl ChannelTransport {
    /// Create an empty in-process transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove a binding, making future connects fail (used by fault
    /// injection and clean shutdown).
    pub fn unbind(&self, node: NodeId) {
        if let Some(q) = self.registry.lock().accept_queues.remove(&node) {
            // Wake a blocked accept with Closed, as dropping the old
            // crossbeam sender did.
            q.close();
        }
    }
}

impl Transport for ChannelTransport {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        // The accept queue rejects (rather than blocks) when flooded so a
        // connect against a stalled listener fails fast.
        let inbox = Mailbox::new(
            format!("chan.accept.{local}"),
            ACCEPT_DEPTH,
            OverflowPolicy::Reject,
            CancelToken::new(),
        );
        let mut reg = self.registry.lock();
        if reg.accept_queues.contains_key(&local) {
            return Err(NetError::AlreadyBound(local));
        }
        reg.accept_queues.insert(local, inbox.clone());
        Ok(Box::new(ChannelListener { inbox }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let accept = {
            let reg = self.registry.lock();
            reg.accept_queues
                .get(&peer)
                .cloned()
                .ok_or(NetError::NotFound(peer))?
        };
        let a2b = Mailbox::new(
            format!("chan.data.{local}-{peer}"),
            CHANNEL_DEPTH,
            OverflowPolicy::Block,
            CancelToken::new(),
        );
        let b2a = Mailbox::new(
            format!("chan.data.{peer}-{local}"),
            CHANNEL_DEPTH,
            OverflowPolicy::Block,
            CancelToken::new(),
        );
        let pending = Pending {
            peer: local,
            tx: b2a.clone(),
            rx: a2b.clone(),
        };
        // A closed inbox (dropped listener) or a flooded one both mean the
        // peer is effectively unreachable.
        if accept.send(pending).is_err() {
            return Err(NetError::NotFound(peer));
        }
        Ok(Box::new(ChannelConnection {
            peer,
            tx: a2b,
            rx: b2a,
        }))
    }
}

struct ChannelListener {
    inbox: Mailbox<Pending>,
}

fn conn_from(p: Pending) -> Box<dyn Connection> {
    Box::new(ChannelConnection {
        peer: p.peer,
        tx: p.tx,
        rx: p.rx,
    })
}

impl Listener for ChannelListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        self.inbox
            .recv()
            .map(conn_from)
            .map_err(|_| NetError::Closed)
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(p) => Ok(conn_from(p)),
            Err(MailboxRecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(_) => Err(NetError::Closed),
        }
    }

    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        match self.inbox.recv_cancellable(cancel) {
            Ok(p) => Ok(conn_from(p)),
            Err(MailboxRecvError::Closed) => Err(NetError::Closed),
            Err(MailboxRecvError::Cancelled) => Err(NetError::Cancelled),
        }
    }
}

impl Drop for ChannelListener {
    fn drop(&mut self) {
        // A dropped listener refuses future connects immediately (senders
        // observe Closed), matching TCP listener-socket semantics.
        self.inbox.close();
    }
}

struct ChannelConnection {
    peer: NodeId,
    tx: Mailbox<Bytes>,
    rx: Mailbox<Bytes>,
}

impl Connection for ChannelConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        self.tx.send(payload).map_err(|_| NetError::Closed)
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(b),
            Err(MailboxRecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(_) => Err(NetError::Closed),
        }
    }

    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        // True wakeup: cancellation notifies the mailbox condvar directly.
        match self.rx.recv_cancellable(cancel) {
            Ok(b) => Ok(b),
            Err(MailboxRecvError::Closed) => Err(NetError::Closed),
            Err(MailboxRecvError::Cancelled) => Err(NetError::Cancelled),
        }
    }

    fn peer(&self) -> NodeId {
        self.peer
    }
}

impl Drop for ChannelConnection {
    fn drop(&mut self) {
        // Dropping either endpoint closes both directions: the peer's recv
        // drains what was already queued and then reports Closed, and a
        // peer blocked in send wakes with Closed (mpsc endpoint-drop
        // semantics, which the old crossbeam implementation provided).
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::MailboxTryRecvError;
    use std::thread;

    #[test]
    fn connect_send_recv() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the transport under test is not a scope
        let handle = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(2, 1).unwrap();
                c.send(Bytes::from_static(b"ping")).unwrap();
                c.recv().unwrap()
            }
        });
        let mut server = l.accept().unwrap();
        assert_eq!(server.peer(), 2);
        assert_eq!(server.recv().unwrap().as_ref(), b"ping");
        server.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(handle.join().unwrap().as_ref(), b"pong");
    }

    #[test]
    fn connect_to_unbound_fails() {
        let t = ChannelTransport::new();
        assert!(matches!(t.connect(1, 99), Err(NetError::NotFound(99))));
    }

    #[test]
    fn double_bind_fails() {
        let t = ChannelTransport::new();
        let _l = t.bind(5).unwrap();
        assert!(matches!(t.bind(5), Err(NetError::AlreadyBound(5))));
    }

    #[test]
    fn recv_timeout_elapses() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        assert_eq!(
            c.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn drop_closes_connection() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        drop(c);
        assert_eq!(server.recv(), Err(NetError::Closed));
    }

    #[test]
    fn unbind_stops_new_connections() {
        let t = ChannelTransport::new();
        let _l = t.bind(1).unwrap();
        t.unbind(1);
        assert!(t.connect(2, 1).is_err());
    }

    #[test]
    fn dropped_listener_refuses_connects() {
        let t = ChannelTransport::new();
        let l = t.bind(1).unwrap();
        drop(l);
        assert!(matches!(t.connect(2, 1), Err(NetError::NotFound(1))));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        // Fill the queue; the next send would block, so run it in a thread
        // and verify it completes once we drain.
        for _ in 0..CHANNEL_DEPTH {
            c.send(Bytes::from_static(b"x")).unwrap();
        }
        // netagg-lint: allow(no-raw-spawn) test needs a deliberately blocked sender to observe backpressure
        let blocked = thread::spawn(move || {
            let mut c = c;
            c.send(Bytes::from_static(b"y")).unwrap();
            c
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!blocked.is_finished(), "send should block on a full queue");
        let mut server = _server;
        server.recv().unwrap();
        blocked.join().unwrap();
    }

    #[test]
    fn cancel_wakes_blocked_recv_and_accept() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        let cancel = CancelToken::new();
        let c2 = cancel.clone();
        // netagg-lint: allow(no-raw-spawn) test parks a receiver to time the cancel wakeup
        let recv_thread = thread::spawn(move || {
            let r = c.recv_cancellable(&c2);
            (r, std::time::Instant::now(), c)
        });
        let c3 = cancel.clone();
        // netagg-lint: allow(no-raw-spawn) test parks an acceptor to time the cancel wakeup
        let accept_thread = thread::spawn(move || l.accept_cancellable(&c3));
        thread::sleep(Duration::from_millis(40));
        let t0 = std::time::Instant::now();
        cancel.cancel();
        let (r, done_at, _c) = recv_thread.join().unwrap();
        assert_eq!(r, Err(NetError::Cancelled));
        assert!(
            done_at.duration_since(t0) < Duration::from_millis(80),
            "cancel must wake a blocked recv immediately"
        );
        assert!(matches!(
            accept_thread.join().unwrap(),
            Err(NetError::Cancelled)
        ));
        // The connection itself is still usable after a cancelled recv.
        server.send(Bytes::from_static(b"still-here")).unwrap();
        drop(server);
    }

    #[test]
    fn blocked_sender_wakes_when_peer_drops() {
        let t = ChannelTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let server = l.accept().unwrap();
        for _ in 0..CHANNEL_DEPTH {
            c.send(Bytes::from_static(b"x")).unwrap();
        }
        // netagg-lint: allow(no-raw-spawn) test needs a deliberately blocked sender to observe cancel-beats-data
        let blocked = thread::spawn(move || {
            let mut c = c;
            c.send(Bytes::from_static(b"y"))
        });
        thread::sleep(Duration::from_millis(20));
        drop(server);
        assert_eq!(blocked.join().unwrap(), Err(NetError::Closed));
    }

    #[test]
    fn try_recv_error_covers_empty_and_closed() {
        // Exercise the MailboxTryRecvError mapping used by downstream
        // consumers of the raw mailboxes.
        let mb: Mailbox<u8> = Mailbox::new("t", 1, OverflowPolicy::Block, CancelToken::new());
        assert_eq!(mb.try_recv(), Err(MailboxTryRecvError::Empty));
        mb.close();
        assert_eq!(mb.try_recv(), Err(MailboxTryRecvError::Closed));
    }
}
