//! Typed units for flow control and link emulation.
//!
//! Byte counts, line rates and durations stop being bare `u64`/`f64`
//! values that can be mixed up silently: [`Bytes`] × [`BitsPerSec`] →
//! [`Nanosecs`] is the only way to turn a window into a wait, so a rate
//! can never be added to a byte count by accident. The newtypes follow
//! minim's flow state (SNIPPETS.md §2), which models windows, rates and
//! delays the same way.
//!
//! The [`crate::flow::FlowWindow`] used by the TCP reactor's outbound path
//! (DESIGN.md §12) and the [`crate::ratelimit::TokenBucket`] used by the
//! link emulator are both written against these types.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::time::Duration;

/// A count of bytes (payload sizes, window limits, in-flight totals).
///
/// Distinct from [`bytes::Bytes`] (a buffer); this is the *quantity*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Exactly `n` bytes.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// `n` KiB.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` MiB.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// A buffer length as a byte count.
    pub const fn of_len(n: usize) -> Self {
        Bytes(n as u64)
    }

    /// The raw count.
    pub const fn into_u64(self) -> u64 {
        self.0
    }

    /// The raw count as a `usize` (buffer sizing).
    pub const fn into_usize(self) -> usize {
        self.0 as usize
    }

    /// `self - other`, floored at zero.
    pub const fn saturating_sub(self, other: Self) -> Self {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Serialisation delay of this many bytes at `rate`
    /// (`8·bytes / rate`, in nanoseconds; u128 intermediate, no overflow
    /// for any realistic window × rate).
    pub fn transfer_time(self, rate: BitsPerSec) -> Nanosecs {
        if rate.0 == 0 {
            return Nanosecs(u64::MAX);
        }
        let ns = (self.0 as u128 * 8 * 1_000_000_000) / rate.0 as u128;
        Nanosecs(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

/// A line rate in bits per second (link capacities, pacing rates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitsPerSec(u64);

impl BitsPerSec {
    /// Exactly `n` bits per second.
    pub const fn new(n: u64) -> Self {
        BitsPerSec(n)
    }

    /// `n` Mbit/s (decimal, as link rates are quoted).
    pub const fn mbps(n: u64) -> Self {
        BitsPerSec(n * 1_000_000)
    }

    /// `n` Gbit/s (decimal; the paper's 1 Gbps edge / 10 Gbps box links).
    pub const fn gbps(n: u64) -> Self {
        BitsPerSec(n * 1_000_000_000)
    }

    /// The raw rate.
    pub const fn into_u64(self) -> u64 {
        self.0
    }

    /// The rate in bytes per second (token-bucket arithmetic).
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bit/s", self.0)
    }
}

/// A duration in nanoseconds (transfer times, pacing delays).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanosecs(u64);

impl Nanosecs {
    /// Zero nanoseconds.
    pub const ZERO: Nanosecs = Nanosecs(0);

    /// Exactly `n` nanoseconds.
    pub const fn new(n: u64) -> Self {
        Nanosecs(n)
    }

    /// The raw count.
    pub const fn into_u64(self) -> u64 {
        self.0
    }

    /// As a `std::time::Duration` (for sleeps and deadlines).
    pub const fn to_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add for Nanosecs {
    type Output = Nanosecs;
    fn add(self, rhs: Nanosecs) -> Nanosecs {
        Nanosecs(self.0 + rhs.0)
    }
}

impl AddAssign for Nanosecs {
    fn add_assign(&mut self, rhs: Nanosecs) {
        self.0 += rhs.0;
    }
}

impl From<Duration> for Nanosecs {
    fn from(d: Duration) -> Self {
        Nanosecs(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Nanosecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_hand_arithmetic() {
        // 125 bytes = 1000 bits at 1 Gbps = 1 µs.
        assert_eq!(
            Bytes::new(125).transfer_time(BitsPerSec::gbps(1)),
            Nanosecs::new(1_000)
        );
        // 1 MiB at 10 Gbps ≈ 838.9 µs.
        let t = Bytes::mib(1).transfer_time(BitsPerSec::gbps(10));
        assert_eq!(t.into_u64(), 1024 * 1024 * 8 / 10);
        // Zero rate never divides by zero.
        assert_eq!(
            Bytes::new(1).transfer_time(BitsPerSec::new(0)).into_u64(),
            u64::MAX
        );
    }

    #[test]
    fn byte_arithmetic_is_typed() {
        let mut w = Bytes::kib(64);
        w += Bytes::new(100);
        assert_eq!(w.into_u64(), 64 * 1024 + 100);
        assert_eq!(Bytes::new(5).saturating_sub(Bytes::new(9)), Bytes::ZERO);
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
        assert_eq!(BitsPerSec::gbps(1).bytes_per_sec(), 125_000_000.0);
        assert_eq!(
            Nanosecs::new(1500).to_duration(),
            Duration::from_nanos(1500)
        );
    }
}
