//! Token-bucket rate limiting used to emulate link capacities.
//!
//! An emulated 1 Gbps NIC is a shared bucket refilled at 125 MB/s: every
//! byte a connection moves first acquires tokens, sleeping when the bucket
//! runs dry. Buckets are shared per endpoint, so concurrent connections of
//! one node contend for its NIC exactly as real flows would.
//!
//! `acquire(n)` models store-and-forward serialisation: it returns only
//! once `n` bytes' worth of tokens have actually been consumed, even when
//! `n` far exceeds the burst size — a 1 MB message on a 1 MB/s link takes
//! one second, not one burst.

use crate::units::{BitsPerSec, Bytes};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate, bytes per second.
    rate: f64,
    /// Maximum burst, bytes.
    burst: f64,
    state: Mutex<State>,
}

impl TokenBucket {
    /// `rate` in bytes/s; `burst` is the bucket depth in bytes.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0);
        Self {
            rate,
            burst,
            state: Mutex::new(State {
                tokens: burst,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Bucket with a burst sized to ~4 ms of line rate (a small NIC queue).
    pub fn for_link(rate_bytes_per_sec: f64) -> Self {
        let burst = (rate_bytes_per_sec * 0.004).max(64.0 * 1024.0);
        Self::new(rate_bytes_per_sec, burst)
    }

    /// [`TokenBucket::for_link`] from a typed link rate — the natural
    /// spelling for the paper's topologies:
    /// `TokenBucket::for_link_rate(BitsPerSec::gbps(10))`.
    pub fn for_link_rate(rate: BitsPerSec) -> Self {
        Self::for_link(rate.bytes_per_sec())
    }

    /// Refill rate in bytes/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn refill(&self, s: &mut State) {
        let now = Instant::now();
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + dt * self.rate).min(self.burst);
        s.last_refill = now;
    }

    /// Try to take `n` tokens (`n` must be at most the burst) without
    /// blocking. Returns the time to wait before retrying if the bucket is
    /// too empty (`None` means acquired).
    pub fn try_acquire(&self, n: f64) -> Option<Duration> {
        debug_assert!(n <= self.burst + 1e-9);
        let mut s = self.state.lock();
        self.refill(&mut s);
        if s.tokens >= n {
            s.tokens -= n;
            None
        } else {
            let deficit = n - s.tokens;
            Some(Duration::from_secs_f64(deficit / self.rate))
        }
    }

    /// [`TokenBucket::acquire`] of a typed byte quantity.
    pub fn acquire_bytes(&self, n: Bytes) {
        self.acquire(n.into_u64() as f64);
    }

    /// Acquire `n` tokens, sleeping as needed. Blocks for the full
    /// serialisation time of `n` bytes: amounts above the burst are taken
    /// in burst-sized instalments.
    pub fn acquire(&self, n: f64) {
        let mut remaining = n;
        while remaining > 0.0 {
            let take = remaining.min(self.burst);
            loop {
                match self.try_acquire(take) {
                    None => break,
                    Some(wait) => std::thread::sleep(wait.min(Duration::from_millis(50))),
                }
            }
            remaining -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors_match_raw_rates() {
        let b = TokenBucket::for_link_rate(BitsPerSec::mbps(800));
        assert_eq!(b.rate(), 100e6, "800 Mbps is 100 MB/s");
        b.acquire_bytes(Bytes::kib(1)); // within burst: immediate
    }

    #[test]
    fn burst_is_free_then_rate_limits() {
        let b = TokenBucket::new(1e6, 1e4); // 1 MB/s, 10 KB burst
        let t0 = Instant::now();
        b.acquire(1e4); // burst: immediate
        assert!(t0.elapsed() < Duration::from_millis(5));
        let t1 = Instant::now();
        b.acquire(2e4); // needs 20 KB of refill at 1 MB/s => >= ~20 ms
        assert!(
            t1.elapsed() >= Duration::from_millis(15),
            "elapsed {:?}",
            t1.elapsed()
        );
    }

    #[test]
    fn sustained_rate_is_respected() {
        let rate = 10e6; // 10 MB/s
        let b = TokenBucket::new(rate, 1e4);
        let total = 1e6; // 1 MB in 10 KB chunks
        let t0 = Instant::now();
        let mut sent = 0.0;
        while sent < total {
            b.acquire(1e4);
            sent += 1e4;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let expected = total / rate;
        assert!(
            elapsed >= 0.7 * expected && elapsed < 5.0 * expected,
            "elapsed {elapsed}, expected ~{expected}"
        );
    }

    #[test]
    fn oversized_acquire_blocks_for_full_serialisation() {
        let b = TokenBucket::new(1e6, 1e3); // 1 MB/s, 1 KB burst
        b.acquire(1e3); // drain the burst
        let t0 = Instant::now();
        // 50 KB at 1 MB/s: the call itself must take ~50 ms.
        b.acquire(50e3);
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(40),
            "oversized acquire returned after only {elapsed:?}"
        );
    }

    #[test]
    fn concurrent_acquirers_share_the_rate() {
        use std::sync::Arc;
        let b = Arc::new(TokenBucket::new(20e6, 1e4));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                // netagg-lint: allow(no-raw-spawn) test contention threads; the bucket, not a scope, is under test
                std::thread::spawn(move || {
                    let mut sent = 0.0;
                    while sent < 250e3 {
                        b.acquire(1e4);
                        sent += 1e4;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 x 250 KB = 1 MB at 20 MB/s ~ 50 ms.
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(elapsed > 0.03, "elapsed {elapsed}");
    }
}
