//! Readiness-driven, multiplexed TCP-loopback transport (DESIGN.md §12).
//!
//! The transport used to run one blocking socket plus reader state per
//! logical connection. It is now an event-driven data plane built from
//! three ideas:
//!
//! * **Link multiplexing.** All logical connections a transport instance
//!   dials to one listener address share a single physical socket (a
//!   *link*). Frames travel as mux records — `OPEN`/`DATA`/`CLOSE`, each
//!   inside an ordinary length-prefixed frame — so four workers sending
//!   partials to the same agg box cost one write syscall, not four.
//! * **Run-to-completion fast path.** A sender does not hand its frame
//!   to an I/O thread: it encodes and flushes under the link's write
//!   lock, then looks its socket's in-process twin up in the read-hint
//!   directory (a process-wide `(local, peer) → link` map) and pumps the
//!   twin's read half on the same thread. A loopback hop therefore costs
//!   zero scheduler handoffs — identical to the channel transport —
//!   and once the directory proves both ends live in this process, the
//!   writer hands encoded chunks straight to the twin's decoder through
//!   a gated inject queue, skipping the kernel round trip entirely (the
//!   gate orders any socket-written prefix ahead of injected bytes).
//! * **Sharded reactor backstop.** Nonblocking sockets are also swept by
//!   N reactor threads (`net-reactor-<i>`, spawned through [`JoinScope`]
//!   so the lifecycle and lint contracts hold). The build is offline and
//!   the workspace vendors no libc, so there is no `epoll`: each shard
//!   sweeps its links and parks on its command [`Mailbox`]; senders
//!   *kick* a parked shard through that mailbox, making wakeups explicit
//!   and edge-triggered. The reactor owns accepts, write-backlog and
//!   stall retries, and all out-of-process reads (re-armed by a short
//!   park tick); the data path only falls back to it when a read half is
//!   busy.
//! * **Zero-copy batching.** Outbound records from every connection on a
//!   link coalesce into one staging buffer per flush (large payloads are
//!   appended as their own [`Bytes`] chunk without copying); inbound
//!   bytes decode through the chunk-based [`FrameDecoder`], handing each
//!   `DATA` payload out as a shared slice of the read buffer.
//!
//! Backpressure is two-levelled: every virtual connection owns a
//! [`FlowWindow`] bounding its queued-but-unwritten bytes, and a full
//! per-connection inbox makes the reactor stop reading the whole link,
//! turning overload into kernel-level TCP backpressure. The reactor
//! itself never blocks on anything but its own mailbox.
//!
//! Connections behave exactly like the channel transport's: `recv` drains
//! data queued before a peer close and then reports
//! [`NetError::Closed`]; `recv_cancellable`/`accept_cancellable` are true
//! wakeups (no poll tick); dropping a connection flushes queued writes
//! before the `CLOSE` record. Dropping the last transport handle cancels
//! the reactor scope, which joins the shard threads and fails all blocked
//! operations.

use crate::flow::FlowWindow;
use crate::framing::{FrameDecoder, MAX_FRAME};
use crate::lifecycle::{
    CancelToken, JoinScope, Mailbox, MailboxRecvError, MailboxRecvTimeoutError, MailboxSendError,
    MailboxTryRecvError, OrderedMutex, OverflowPolicy, DEFAULT_JOIN_DEADLINE,
};
use crate::lock_order;
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use crate::units;
use bytes::{BufMut, Bytes, BytesMut};
use netagg_obs::{names, Counter, Gauge, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

// --- mux record types (§12 wire format) ------------------------------------

/// `[OPEN][channel u32][src u32][dst u32]` — dialer announces a channel.
const REC_OPEN: u8 = 1;
/// `[DATA][channel u32][payload …]` — one application frame.
const REC_DATA: u8 = 2;
/// `[CLOSE][channel u32]` — either side retires a channel.
const REC_CLOSE: u8 = 3;

/// Header bytes a mux record may add on top of an application payload;
/// the link decoder allows `MAX_FRAME + MUX_HEADROOM` so a maximum-size
/// payload still fits its record.
const MUX_HEADROOM: usize = 16;

/// Per-connection inbound queue depth (frames).
const INBOX_DEPTH: usize = 1024;
/// Pending-accept queue depth, mirroring the channel transport.
const ACCEPT_DEPTH: usize = 1024;
/// Reactor command-queue depth (registrations and kicks).
const CMD_DEPTH: usize = 1024;
/// Per-connection send window: queued-but-unwritten bytes a sender may
/// accumulate before parking (an idle window admits any single frame).
const SEND_WINDOW: units::Bytes = units::Bytes::mib(1);
/// Payloads up to this size are copied into the link's staging buffer;
/// larger ones ride as their own zero-copy chunk.
const COALESCE_MAX: usize = 16 * 1024;
/// Stop draining connection queues while a link has this many encoded
/// bytes awaiting the socket (write backpressure high-watermark).
const WRITE_BACKLOG_HIGH: usize = 256 * 1024;
/// Socket read size per syscall.
const READ_CHUNK: usize = 64 * 1024;
/// Park timeout while an inbox is full (retry delivery promptly).
const PARK_STALLED: Duration = Duration::from_micros(200);
/// Park timeout while links are registered (backstop only; every local
/// event kicks the shard awake).
const PARK_TICK: Duration = Duration::from_millis(5);
/// Park timeout with nothing registered.
const PARK_IDLE: Duration = Duration::from_millis(50);
/// Yield-spins after an idle sweep before parking on the mailbox. While
/// spinning the shard stays runnable (senders skip the kick futex and the
/// shard skips the park/unpark round trip), which keeps a hot closed loop
/// entirely futex-free on the reactor side; `yield_now` cedes the CPU to
/// whoever has actual work, so the spin costs only slack cycles.
const SPIN_YIELDS: u32 = 256;
/// Run the accept sweep every Nth socket sweep (plus immediately before
/// parking and on every park wake). Accepts are setup-path events; probing
/// every listener with an `accept(2)` syscall on every sweep would dwarf
/// the data-path syscall budget.
const ACCEPT_EVERY: u32 = 64;

fn be_u32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

// --- read-hint directory (§12 wakeup protocol) -----------------------------

/// Process-wide map from a socket's `(local, peer)` address pair to the
/// link that owns it. After a successful write, the reactor looks up the
/// *reversed* pair to find the in-process twin of the socket it just fed
/// and marks that link readable — so the read sweep touches exactly the
/// links with data instead of `read(2)`-polling every socket. The map is
/// global, not per transport, because loopback pairs may span transport
/// instances; sockets whose twin lives in another process simply never
/// get hints and are re-armed by the park tick instead.
// netagg-lint: lock-binding(link_dir = net.link_dir)
fn link_dir() -> &'static LinkDir {
    static DIR: OnceLock<LinkDir> = OnceLock::new();
    DIR.get_or_init(|| OrderedMutex::new(lock_order::NET_LINK_DIR, HashMap::new()))
}

type LinkDir = OrderedMutex<HashMap<(SocketAddr, SocketAddr), Weak<LinkState>>>;

fn dir_remove(key: Option<(SocketAddr, SocketAddr)>) {
    if let Some(k) = key {
        link_dir().lock().remove(&k);
    }
}

/// Writer-side hint: bytes just went out on the socket registered under
/// `key`, so its in-process twin (the socket with the reversed address
/// pair) now has data to read. Mark that link readable and kick its shard.
fn dir_mark_twin(key: Option<(SocketAddr, SocketAddr)>) {
    let Some((local, peer)) = key else { return };
    let twin = link_dir().lock().get(&(peer, local)).cloned();
    if let Some(w) = twin {
        if let Some(l) = w.upgrade() {
            l.readable.store(true, Ordering::SeqCst);
            l.kick();
        } else {
            link_dir().lock().remove(&(peer, local));
        }
    }
}

// --- reactor metrics (§7 `net.tcp.*`) --------------------------------------

/// Counter/gauge handles for the §7 `net.tcp.*` rows; all `None` until a
/// registry is attached (raw transports in unit tests run unmetered).
#[derive(Clone, Default)]
struct ReactorObs {
    wakeups: Option<Arc<Counter>>,
    batches: Option<Arc<Counter>>,
    coalesced: Option<Arc<Counter>>,
    links: Option<Arc<Gauge>>,
    channels: Option<Arc<Gauge>>,
}

impl ReactorObs {
    fn new(obs: Option<&MetricsRegistry>) -> Self {
        let Some(o) = obs else {
            return Self::default();
        };
        Self {
            wakeups: Some(o.counter(names::NET_TCP_REACTOR_WAKEUPS)),
            batches: Some(o.counter(names::NET_TCP_BATCHES_WRITTEN)),
            coalesced: Some(o.counter(names::NET_TCP_FRAMES_COALESCED)),
            links: Some(o.gauge(names::NET_TCP_LINKS_ACTIVE)),
            channels: Some(o.gauge(names::NET_TCP_CHANNELS_ACTIVE)),
        }
    }

    fn wakeup(&self) {
        if let Some(c) = &self.wakeups {
            c.inc();
        }
    }

    fn batch(&self) {
        if let Some(c) = &self.batches {
            c.inc();
        }
    }

    fn coalesce(&self, n: u64) {
        if let Some(c) = &self.coalesced {
            c.add(n);
        }
    }

    fn link_up(&self) {
        if let Some(g) = &self.links {
            g.add(1.0);
        }
    }

    fn link_down(&self) {
        if let Some(g) = &self.links {
            g.add(-1.0);
        }
    }

    fn chan_up(&self) {
        if let Some(g) = &self.channels {
            g.add(1.0);
        }
    }

    fn chan_down(&self) {
        if let Some(g) = &self.channels {
            g.add(-1.0);
        }
    }
}

// --- shared state between user threads and the reactor ---------------------

/// One queued outbound record. `Data` keeps its channel alive until the
/// record reaches the wire buffer, which is what makes drop-after-send
/// flush-before-close.
enum OutRec {
    Open {
        chan: Arc<ChanState>,
        src: NodeId,
        dst: NodeId,
    },
    Data {
        chan: Arc<ChanState>,
        payload: Bytes,
    },
    Close {
        chan: Arc<ChanState>,
    },
}

/// Encoder and socket-writer state of a link, shared between sending
/// threads (the inline fast path) and the reactor shard (the backstop).
/// Always taken *after* `rin` when both are needed (§12 lock order).
struct OutBuf {
    /// Records queued by senders, not yet encoded.
    q: VecDeque<OutRec>,
    /// Encoded wire chunks awaiting the socket, plus a byte offset into
    /// the front chunk.
    wq: VecDeque<Bytes>,
    wq_off: usize,
    wq_bytes: usize,
    staging: BytesMut,
    /// Write-side clone of the link's socket.
    stream: TcpStream,
    /// Channels the encoder OPENed, awaiting adoption into the read
    /// half's routing map (merged at the top of every pump).
    opened: Vec<Arc<ChanState>>,
    /// Channel ids the encoder CLOSEd, awaiting removal from that map.
    retired: Vec<u32>,
    /// Total payload bytes successfully written to the socket. Publishes
    /// the prefix length when the link switches to direct delivery.
    sock_bytes: u64,
    /// In-process twin, resolved once from the directory. While `direct`
    /// is set, freshly encoded chunks go to its inject queue instead of
    /// the kernel (§12 in-process short-circuit).
    twin: Option<Weak<LinkState>>,
    direct: bool,
    /// Chunks encoded in direct mode, awaiting the inject handoff.
    pending_inj: Vec<Bytes>,
}

impl OutBuf {
    fn flush_staging(&mut self) {
        if !self.staging.is_empty() {
            let chunk = std::mem::take(&mut self.staging).freeze();
            self.push_chunk(chunk);
        }
    }

    fn push_chunk(&mut self, chunk: Bytes) {
        if self.direct {
            self.pending_inj.push(chunk);
        } else {
            self.wq_bytes += chunk.len();
            self.wq.push_back(chunk);
        }
    }

    fn clear(&mut self) {
        self.q.clear();
        self.wq.clear();
        self.wq_bytes = 0;
        self.wq_off = 0;
        self.staging.clear();
        self.pending_inj.clear();
    }
}

/// Decoder and inbound-routing state of a link. Owned by whichever
/// thread holds the `rin` mutex: normally the reactor shard, but a
/// writer that just fed this socket's in-process twin pumps it inline
/// (run-to-completion fast path, §12).
struct ReadHalf {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Channels with inbound delivery on this link.
    chans: HashMap<u32, Arc<ChanState>>,
    /// Set on accepted sockets; `None` on dialled ones (which must never
    /// see an `OPEN`).
    inbound: Option<InboundCtx>,
    /// A decoded frame whose inbox was full: delivery backpressure. While
    /// set, the link is not read (TCP pushes back on the peer).
    stalled: Option<(u32, Bytes)>,
    scratch: Vec<u8>,
    /// Total bytes consumed from the socket; injected chunks are held
    /// back until this passes the twin's published prefix length.
    sock_consumed: u64,
    /// Finalization guard: `die_locked` ran.
    done: bool,
}

/// Result of one flush pass over a link's write half.
#[derive(Default, Clone, Copy)]
struct FlushOutcome {
    /// At least one successful socket write happened.
    wrote: bool,
    /// Nothing is left queued (records, staging or wire chunks).
    clean: bool,
    /// The socket failed; the caller must kill the link.
    fatal: bool,
}

/// One physical socket and everything on it: the write half (`out`),
/// the read half (`rin`), and the shard that backstops both. Shared
/// between user threads and the reactor; all I/O methods are callable
/// from any thread. Lock order: `rin` before `out`, never two links'
/// `rin` on one thread.
struct LinkState {
    /// Kick target. Weak: shards own their command queues; a dead reactor
    /// must not be kept alive by lingering connection handles.
    shard: Weak<Shard>,
    /// Which shard the link was assigned to (round-robin; tests assert
    /// the distribution).
    #[cfg_attr(not(test), allow(dead_code))]
    shard_idx: usize,
    dead: AtomicBool,
    next_ch: AtomicU32,
    /// Read hint (§12): set by whoever wrote to this socket's in-process
    /// twin (when the twin's read half was busy), by the park tick
    /// (out-of-process backstop), and at install; cleared by the reactor
    /// right before it reads the socket.
    readable: AtomicBool,
    /// Mirrors `ReadHalf::stalled` for lock-free park decisions.
    stalled_flag: AtomicBool,
    /// This socket's `(local, peer)` address pair — the link's key in the
    /// read-hint directory. `None` disables hints; the link is then swept
    /// unconditionally.
    key: Option<(SocketAddr, SocketAddr)>,
    obs: ReactorObs,
    /// Wire chunks injected by the in-process twin's writer, bypassing
    /// the kernel. A leaf lock: never held while taking any other.
    inj: OrderedMutex<VecDeque<Bytes>>,
    /// Byte count of `inj`, readable without the lock (backpressure).
    inj_bytes: AtomicUsize,
    /// Socket-prefix length published by the twin's writer when it
    /// switches to direct delivery; `u64::MAX` until then. The read side
    /// consumes exactly this many socket bytes before touching `inj`.
    inj_gate: AtomicU64,
    out: OrderedMutex<OutBuf>,
    rin: OrderedMutex<ReadHalf>,
}

impl LinkState {
    /// Build a link around a connected nonblocking socket and register it
    /// in the read-hint directory. Fails only if the socket cannot be
    /// cloned for the write half.
    fn register(
        shard: &Arc<Shard>,
        stream: TcpStream,
        inbound: Option<InboundCtx>,
        obs: ReactorObs,
    ) -> std::io::Result<Arc<LinkState>> {
        let wstream = stream.try_clone()?;
        let key = stream.local_addr().ok().zip(stream.peer_addr().ok());
        let link = Arc::new(LinkState {
            shard: Arc::downgrade(shard),
            shard_idx: shard.idx,
            dead: AtomicBool::new(false),
            next_ch: AtomicU32::new(0),
            readable: AtomicBool::new(true),
            stalled_flag: AtomicBool::new(false),
            key,
            obs,
            inj: OrderedMutex::new(lock_order::NET_INJ, VecDeque::new()),
            inj_bytes: AtomicUsize::new(0),
            inj_gate: AtomicU64::new(u64::MAX),
            out: OrderedMutex::new(
                lock_order::NET_OUT,
                OutBuf {
                    q: VecDeque::new(),
                    wq: VecDeque::new(),
                    wq_off: 0,
                    wq_bytes: 0,
                    staging: BytesMut::new(),
                    stream: wstream,
                    opened: Vec::new(),
                    retired: Vec::new(),
                    sock_bytes: 0,
                    twin: None,
                    direct: false,
                    pending_inj: Vec::new(),
                },
            ),
            rin: OrderedMutex::new(
                lock_order::NET_RIN,
                ReadHalf {
                    stream,
                    decoder: FrameDecoder::with_max(MAX_FRAME + MUX_HEADROOM),
                    chans: HashMap::new(),
                    inbound,
                    stalled: None,
                    scratch: vec![0u8; READ_CHUNK],
                    sock_consumed: 0,
                    done: false,
                },
            ),
        });
        if let Some(k) = key {
            link_dir().lock().insert(k, Arc::downgrade(&link));
        }
        link.obs.link_up();
        Ok(link)
    }

    /// Queue a record and flush it inline (§12 fast path): encode, write
    /// the socket from this thread, then pump the in-process twin so a
    /// loopback hop completes without waking the reactor at all.
    fn enqueue(self: &Arc<Self>, rec: OutRec) -> Result<(), NetError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(NetError::Closed);
        }
        let f = {
            let mut b = self.out.lock();
            b.q.push_back(rec);
            self.flush_locked(&mut b)
        };
        self.after_flush(f);
        Ok(())
    }

    fn kick(&self) {
        if let Some(s) = self.shard.upgrade() {
            s.notify();
        }
    }
}

/// One virtual connection (mux channel) on a link.
struct ChanState {
    id: u32,
    peer: NodeId,
    link: Arc<LinkState>,
    inbox: Mailbox<Bytes>,
    window: FlowWindow,
    /// Set once the channel is retired (remote CLOSE, link death or local
    /// drop processed); sends fail fast with `Closed`.
    closed: AtomicBool,
}

impl ChanState {
    fn new(id: u32, peer: NodeId, link: Arc<LinkState>, cancel: &CancelToken) -> Self {
        Self {
            id,
            peer,
            link,
            inbox: Mailbox::new(
                "tcp.chan.rx",
                INBOX_DEPTH,
                OverflowPolicy::Block,
                cancel.clone(),
            ),
            window: FlowWindow::new(SEND_WINDOW),
            closed: AtomicBool::new(false),
        }
    }

    /// Retire the channel: drain-then-`Closed` for the receiver, immediate
    /// `Closed` for blocked senders. Returns true on the first call so
    /// exactly one retirer does the gauge accounting.
    fn retire(&self) -> bool {
        let first = !self.closed.swap(true, Ordering::SeqCst);
        self.inbox.close();
        self.window.close();
        first
    }
}

#[derive(Default)]
struct ListenerCtl {
    closed: AtomicBool,
}

// --- reactor command plumbing ----------------------------------------------

enum Cmd {
    /// Wake a parked shard (sent only when `parked` is observed true).
    Kick,
    /// Adopt a freshly dialled link (the shard becomes its backstop).
    AddLink { link: Arc<LinkState> },
    /// Adopt a freshly bound listener.
    AddListener {
        listener: TcpListener,
        local: NodeId,
        accept: Mailbox<TcpConnection>,
        ctl: Arc<ListenerCtl>,
    },
}

/// One reactor shard's handle: its command mailbox doubles as its park
/// point, so a kick is just a (possibly redundant) mailbox send.
struct Shard {
    idx: usize,
    cmds: Mailbox<Cmd>,
    parked: AtomicBool,
    work: AtomicBool,
}

impl Shard {
    /// Publish "there is work" and wake the shard if it is parked. The
    /// store/load order pairs with the reactor's park sequence (§12
    /// wakeup protocol): either the reactor's `work.swap(false)` sees our
    /// store, or we see `parked == true` and enqueue a kick.
    fn notify(&self) {
        self.work.store(true, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            let _ = self.cmds.try_send(Cmd::Kick);
        }
    }
}

// --- reactor ---------------------------------------------------------------

struct Reactor {
    cancel: CancelToken,
    shards: Vec<Arc<Shard>>,
    scope: OrderedMutex<Option<JoinScope>>,
    obs: OrderedMutex<Option<MetricsRegistry>>,
    /// Metric handles shared with every link (set at first start).
    robs: OnceLock<ReactorObs>,
    next: AtomicUsize,
}

impl Reactor {
    fn new(shards: usize) -> Self {
        let cancel = CancelToken::new();
        let shards = (0..shards)
            .map(|idx| {
                Arc::new(Shard {
                    idx,
                    cmds: Mailbox::new(
                        format!("tcp.reactor.{idx}"),
                        CMD_DEPTH,
                        OverflowPolicy::Block,
                        cancel.clone(),
                    ),
                    parked: AtomicBool::new(false),
                    work: AtomicBool::new(false),
                })
            })
            .collect();
        Self {
            cancel,
            shards,
            scope: OrderedMutex::new(lock_order::NET_SCOPE, None),
            obs: OrderedMutex::new(lock_order::NET_OBS, None),
            robs: OnceLock::new(),
            next: AtomicUsize::new(0),
        }
    }

    /// Metric handles for link I/O; default (unmetered) before start.
    fn link_obs(&self) -> ReactorObs {
        self.robs.get().cloned().unwrap_or_default()
    }

    fn attach(&self, obs: &MetricsRegistry) {
        *self.obs.lock() = Some(obs.clone());
    }

    fn pick_shard(&self) -> Arc<Shard> {
        let i = self.next.fetch_add(1, Ordering::SeqCst) % self.shards.len();
        self.shards[i].clone()
    }

    /// Spawn the shard threads on first use (after any `attach_obs`), so
    /// the reactor participates in `runtime.threads_active` when a
    /// registry exists.
    fn ensure_started(&self) {
        let mut scope = self.scope.lock();
        if scope.is_some() || self.cancel.is_cancelled() {
            return;
        }
        let obs = self.obs.lock().clone();
        let robs = self
            .robs
            .get_or_init(|| ReactorObs::new(obs.as_ref()))
            .clone();
        let s = JoinScope::with_obs(
            "tcp-reactor",
            self.cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            obs.as_ref(),
        );
        for shard in &self.shards {
            let runner = ShardRunner::new(shard.clone(), self.cancel.clone(), robs.clone());
            let _ = s.spawn(format!("net-reactor-{}", shard.idx), move || runner.run());
        }
        *scope = Some(s);
    }
}

/// Everything a shard thread owns: its registered sockets and their
/// decoder/writer state. Holds `Arc<Shard>`s only — never the transport —
/// so dropping the last transport handle is what terminates the reactor.
struct ShardRunner {
    shard: Arc<Shard>,
    cancel: CancelToken,
    obs: ReactorObs,
    links: Vec<LinkIo>,
    listeners: Vec<ListenerIo>,
}

struct ListenerIo {
    listener: TcpListener,
    local: NodeId,
    accept: Mailbox<TcpConnection>,
    ctl: Arc<ListenerCtl>,
}

impl ShardRunner {
    fn new(shard: Arc<Shard>, cancel: CancelToken, obs: ReactorObs) -> Self {
        Self {
            shard,
            cancel,
            obs,
            links: Vec::new(),
            listeners: Vec::new(),
        }
    }

    fn run(mut self) {
        let mut sweeps_since_accept = ACCEPT_EVERY;
        loop {
            loop {
                match self.shard.cmds.try_recv() {
                    Ok(cmd) => self.install(cmd, &mut sweeps_since_accept),
                    Err(MailboxTryRecvError::Empty) => break,
                    Err(_) => return self.teardown(),
                }
            }
            if self.cancel.is_cancelled() {
                return self.teardown();
            }
            let mut progress = false;
            sweeps_since_accept += 1;
            if sweeps_since_accept >= ACCEPT_EVERY {
                sweeps_since_accept = 0;
                self.accept_sweep(&mut progress);
            }
            for io in &self.links {
                let l = &io.link;
                if l.dead.load(Ordering::SeqCst) {
                    l.die(); // finalize if an inline path only marked it
                    continue;
                }
                // Backstop flush: retries WouldBlock backlog and records
                // enqueued while an inline flush held the lock. No
                // self-kick on leftovers — the park tick is the retry.
                let f = {
                    let mut b = l.out.lock();
                    l.flush_locked(&mut b)
                };
                if f.fatal {
                    l.fail();
                    continue;
                }
                if f.wrote {
                    progress = true;
                    l.read_twin();
                }
                // Backstop read, gated by the §12 read hint.
                if l.stalled_flag.load(Ordering::SeqCst)
                    || l.key.is_none()
                    || l.readable.swap(false, Ordering::SeqCst)
                {
                    if let Some(mut r) = l.rin.try_lock() {
                        if l.pump_in_locked(&mut r) {
                            progress = true;
                        }
                    } else {
                        // An inline reader owns the half right now; keep
                        // the hint armed so we re-check after it is done.
                        l.readable.store(true, Ordering::SeqCst);
                    }
                }
            }
            self.links.retain(|io| !io.link.dead.load(Ordering::SeqCst));
            self.listeners
                .retain(|l| !l.ctl.closed.load(Ordering::SeqCst));
            if progress {
                continue;
            }
            if self.shard.work.swap(false, Ordering::SeqCst) {
                continue;
            }
            // Spin phase: yield instead of parking, so a hot closed loop
            // never pays the park/unpark futex round trip — senders see
            // `parked == false` and skip the kick entirely. `yield_now`
            // hands the CPU to whichever thread has real work; a stalled
            // link skips the spin so its short park retries delivery.
            if !self
                .links
                .iter()
                .any(|l| l.link.stalled_flag.load(Ordering::SeqCst))
            {
                let mut woke = false;
                for _ in 0..SPIN_YIELDS {
                    std::thread::yield_now();
                    if self.shard.work.swap(false, Ordering::SeqCst) || self.cancel.is_cancelled() {
                        woke = true;
                        break;
                    }
                }
                if woke {
                    continue; // cancellation lands in the loop-top check
                }
            }
            // About to sleep: catch connects that arrived during the
            // throttled sweeps so dial latency is bounded by the spin,
            // not the park tick.
            let mut late = false;
            sweeps_since_accept = 0;
            self.accept_sweep(&mut late);
            if late {
                continue;
            }
            // Park protocol: publish `parked`, re-check `work`, then wait
            // on the command mailbox. A sender either saw `parked == true`
            // and kicked the mailbox, or stored `work` before our swap —
            // both wake us. The timeout is a backstop, not the mechanism;
            // shutdown wakes through the mailbox's bound cancel token.
            self.shard.parked.store(true, Ordering::SeqCst);
            if self.shard.work.swap(false, Ordering::SeqCst) {
                self.shard.parked.store(false, Ordering::SeqCst);
                continue;
            }
            // netagg-lint: allow(no-poll-shutdown) park backstop; shutdown is wakeup-driven via the cmd mailbox's bound cancel token (§12)
            let woke = self.shard.cmds.recv_timeout(self.park_duration());
            self.shard.parked.store(false, Ordering::SeqCst);
            sweeps_since_accept = ACCEPT_EVERY;
            match woke {
                Ok(cmd) => {
                    self.obs.wakeup();
                    self.install(cmd, &mut sweeps_since_accept);
                }
                Err(MailboxRecvTimeoutError::Timeout) => {
                    self.obs.wakeup();
                    // Out-of-process peers cannot send read hints; a park
                    // tick re-arms every link so their data is picked up
                    // on the next sweep (§12 backstop).
                    for io in &self.links {
                        io.link.readable.store(true, Ordering::SeqCst);
                    }
                }
                Err(_) => return self.teardown(),
            }
        }
    }

    fn park_duration(&self) -> Duration {
        if self
            .links
            .iter()
            .any(|l| l.link.stalled_flag.load(Ordering::SeqCst))
        {
            PARK_STALLED
        } else if self.links.is_empty() && self.listeners.is_empty() {
            PARK_IDLE
        } else {
            PARK_TICK
        }
    }

    fn install(&mut self, cmd: Cmd, sweeps_since_accept: &mut u32) {
        match cmd {
            Cmd::Kick => {}
            Cmd::AddLink { link } => {
                self.links.push(LinkIo { link });
            }
            Cmd::AddListener {
                listener,
                local,
                accept,
                ctl,
            } => {
                // A fresh listener may already have a backlog: sweep it on
                // the next iteration rather than a throttle period later.
                *sweeps_since_accept = ACCEPT_EVERY;
                self.listeners.push(ListenerIo {
                    listener,
                    local,
                    accept,
                    ctl,
                });
            }
        }
    }

    fn accept_sweep(&mut self, progress: &mut bool) {
        let mut fresh: Vec<LinkIo> = Vec::new();
        for l in &self.listeners {
            if l.ctl.closed.load(Ordering::SeqCst) {
                continue;
            }
            loop {
                match l.listener.accept() {
                    Ok((stream, _)) => {
                        *progress = true;
                        if stream.set_nodelay(true).is_err()
                            || stream.set_nonblocking(true).is_err()
                        {
                            continue;
                        }
                        let ctx = InboundCtx {
                            local: l.local,
                            accept: l.accept.clone(),
                            ctl: l.ctl.clone(),
                        };
                        if let Ok(link) =
                            LinkState::register(&self.shard, stream, Some(ctx), self.obs.clone())
                        {
                            fresh.push(LinkIo { link });
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        self.links.append(&mut fresh);
    }

    fn teardown(&mut self) {
        for io in &self.links {
            io.link.die();
        }
        self.links.clear();
        for l in &self.listeners {
            l.accept.close();
        }
        self.listeners.clear();
    }
}

/// Accept-side routing context of an inbound link.
struct InboundCtx {
    local: NodeId,
    accept: Mailbox<TcpConnection>,
    ctl: Arc<ListenerCtl>,
}

/// Reactor-side registration of one link. The I/O state itself lives in
/// [`LinkState`]; the shard is merely its reader and writer of last
/// resort (backlog retries, stall retries, out-of-process data).
struct LinkIo {
    link: Arc<LinkState>,
}

impl LinkState {
    /// Drain queued records into wire chunks and push them at the socket.
    /// Pure state transform under the `out` lock; callers translate the
    /// outcome via [`Self::after_flush`] / [`Self::after_flush_nested`].
    fn flush_locked(&self, b: &mut OutBuf) -> FlushOutcome {
        let mut out = FlushOutcome::default();
        // One-time switch to direct delivery: once the directory proves
        // the socket's other end lives in this process, freshly encoded
        // chunks are handed to the twin's inject queue instead of the
        // kernel. Everything encoded so far stays on the socket path; the
        // published prefix length keeps those bytes ordered first.
        if !b.direct {
            if let Some((local, peer)) = self.key {
                let found = { link_dir().lock().get(&(peer, local)).cloned() };
                if let Some(t) = found.as_ref().and_then(Weak::upgrade) {
                    b.flush_staging();
                    t.inj_gate
                        .store(b.sock_bytes + b.wq_bytes as u64, Ordering::SeqCst);
                    b.twin = found;
                    b.direct = true;
                }
            }
        }
        let twin = if b.direct {
            match b.twin.as_ref().and_then(Weak::upgrade) {
                Some(t) => Some(t),
                None => {
                    // The in-process peer is gone; the link is dead.
                    out.fatal = true;
                    return out;
                }
            }
        } else {
            None
        };
        let twin_backlog = twin
            .as_ref()
            .map_or(0, |t| t.inj_bytes.load(Ordering::SeqCst));
        if b.wq_bytes + b.staging.len() + twin_backlog < WRITE_BACKLOG_HIGH && !b.q.is_empty() {
            let batched = b.q.len() as u64;
            while let Some(rec) = b.q.pop_front() {
                self.encode_rec(b, rec);
            }
            if batched > 1 {
                self.obs.coalesce(batched);
            }
        }
        b.flush_staging();
        if let Some(t) = &twin {
            if !b.pending_inj.is_empty() {
                let mut q = t.inj.lock();
                for c in b.pending_inj.drain(..) {
                    t.inj_bytes.fetch_add(c.len(), Ordering::SeqCst);
                    q.push_back(c);
                }
                self.obs.batch();
                out.wrote = true;
            }
        }
        // Socket path: socket-only links and pre-switch leftovers.
        while let Some(front) = b.wq.front().cloned() {
            match (&b.stream).write(&front[b.wq_off..]) {
                Ok(0) => {
                    out.fatal = true;
                    break;
                }
                Ok(n) => {
                    self.obs.batch();
                    out.wrote = true;
                    b.wq_off += n;
                    b.wq_bytes -= n;
                    b.sock_bytes += n as u64;
                    if b.wq_off == front.len() {
                        b.wq.pop_front();
                        b.wq_off = 0;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    out.fatal = true;
                    break;
                }
            }
        }
        out.clean = b.q.is_empty() && b.wq.is_empty();
        out
    }

    fn encode_rec(&self, b: &mut OutBuf, rec: OutRec) {
        match rec {
            OutRec::Open { chan, src, dst } => {
                b.staging.put_u32(13);
                b.staging.put_u8(REC_OPEN);
                b.staging.put_u32(chan.id);
                b.staging.put_u32(src);
                b.staging.put_u32(dst);
                self.obs.chan_up();
                b.opened.push(chan);
            }
            OutRec::Data { chan, payload } => {
                chan.window.release(units::Bytes::of_len(payload.len()));
                b.staging.put_u32((5 + payload.len()) as u32);
                b.staging.put_u8(REC_DATA);
                b.staging.put_u32(chan.id);
                if payload.len() <= COALESCE_MAX {
                    b.staging.put_slice(&payload);
                } else {
                    // Big payload: its own chunk, no copy.
                    b.flush_staging();
                    b.push_chunk(payload);
                }
            }
            OutRec::Close { chan } => {
                b.staging.put_u32(5);
                b.staging.put_u8(REC_CLOSE);
                b.staging.put_u32(chan.id);
                if chan.retire() {
                    self.obs.chan_down();
                }
                b.retired.push(chan.id);
            }
        }
    }

    /// Flush follow-up for contexts holding no `rin` lock: kill the link
    /// on socket failure, pump the in-process twin after a write, and
    /// kick the shard once when leftovers need a backstop retry.
    fn after_flush(self: &Arc<Self>, f: FlushOutcome) {
        if f.fatal {
            return self.fail();
        }
        if f.wrote {
            self.read_twin();
        }
        if !f.clean {
            self.kick();
        }
    }

    /// Flush follow-up for read-side contexts (a `rin` lock is held):
    /// never pumps another link — that would nest two read halves and
    /// deadlock against the reverse nesting — only hints the twin's
    /// shard. Returns true on socket failure; the caller finalizes with
    /// the lock it already holds.
    fn after_flush_nested(&self, f: FlushOutcome) -> bool {
        if f.fatal {
            return true;
        }
        if f.wrote {
            dir_mark_twin(self.key);
        }
        if !f.clean {
            self.kick();
        }
        false
    }

    /// Queue and flush a CLOSE for a channel the read side refused
    /// (dst mismatch, flooded listener). Returns true on socket failure.
    fn close_reply(&self, ch: u32) -> bool {
        let f = {
            let mut b = self.out.lock();
            b.staging.put_u32(5);
            b.staging.put_u8(REC_CLOSE);
            b.staging.put_u32(ch);
            self.flush_locked(&mut b)
        };
        self.after_flush_nested(f)
    }

    /// Writer-side fast path: this thread just fed the link's socket, so
    /// its in-process twin has bytes. Pump the twin on this thread if its
    /// read half is free — a loopback hop then runs to completion without
    /// ever waking the reactor — otherwise hint the twin's shard.
    fn read_twin(&self) {
        let Some((local, peer)) = self.key else {
            return;
        };
        let twin = { link_dir().lock().get(&(peer, local)).cloned() };
        let Some(w) = twin else { return };
        let Some(t) = w.upgrade() else {
            link_dir().lock().remove(&(peer, local));
            return;
        };
        if let Some(mut r) = t.rin.try_lock() {
            t.pump_in_locked(&mut r);
        } else {
            // Busy read half: its current owner may already be past the
            // read syscall, so arm the hint and let the reactor re-check.
            t.readable.store(true, Ordering::SeqCst);
            t.kick();
        };
    }

    /// Adopt channels the encoder opened or closed since the last pump
    /// into the read half's routing map.
    fn merge_chans(&self, r: &mut ReadHalf) {
        let mut b = self.out.lock();
        for c in b.opened.drain(..) {
            r.chans.insert(c.id, c);
        }
        for ch in b.retired.drain(..) {
            r.chans.remove(&ch);
        }
    }

    /// Read and dispatch everything available on the socket. Callable
    /// from the reactor shard or inline from whichever thread wrote to
    /// the twin socket. Returns true if anything was consumed.
    fn pump_in_locked(self: &Arc<Self>, r: &mut ReadHalf) -> bool {
        if r.done {
            return false;
        }
        self.merge_chans(r);
        let mut progress = false;
        if r.stalled.is_some() {
            self.retry_stalled(r);
            if r.stalled.is_some() {
                return progress;
            }
            progress = true;
            if !self.drain_frames(r) {
                return progress;
            }
        }
        loop {
            match r.stream.read(&mut r.scratch) {
                Ok(0) => {
                    self.die_locked(r);
                    return progress;
                }
                Ok(n) => {
                    progress = true;
                    r.sock_consumed += n as u64;
                    r.decoder
                        .feed_bytes(Bytes::copy_from_slice(&r.scratch[..n]));
                    let short = n < r.scratch.len();
                    if !self.drain_frames(r) {
                        return progress;
                    }
                    if short {
                        // Short read: the socket is (almost surely) drained.
                        break;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.die_locked(r);
                    return progress;
                }
            }
        }
        // Injected phase: chunks the twin's writer handed over directly.
        // Held back until every socket-prefix byte has been decoded, so
        // the byte stream order matches a pure-socket link exactly.
        let gate = self.inj_gate.load(Ordering::SeqCst);
        if gate != u64::MAX && r.sock_consumed >= gate {
            loop {
                let chunk = { self.inj.lock().pop_front() };
                let Some(chunk) = chunk else { break };
                self.inj_bytes.fetch_sub(chunk.len(), Ordering::SeqCst);
                progress = true;
                r.decoder.feed_bytes(chunk);
                if !self.drain_frames(r) {
                    return progress;
                }
            }
        }
        progress
    }

    fn retry_stalled(&self, r: &mut ReadHalf) {
        if let Some((ch, payload)) = r.stalled.take() {
            self.stalled_flag.store(false, Ordering::SeqCst);
            if let Some(chan) = r.chans.get(&ch) {
                if let Err(MailboxSendError::Full(p)) = chan.inbox.try_send(payload) {
                    r.stalled = Some((ch, p));
                    self.stalled_flag.store(true, Ordering::SeqCst);
                }
                // Closed/cancelled inbox: receiver is gone, frame dropped.
            }
        }
    }

    /// Decode and route buffered records; `false` when the link died or
    /// delivery stalled (remaining bytes stay buffered).
    fn drain_frames(self: &Arc<Self>, r: &mut ReadHalf) -> bool {
        loop {
            match r.decoder.next_frame() {
                Ok(None) => return true,
                Ok(Some(f)) => {
                    if !self.dispatch(r, f) {
                        return false;
                    }
                }
                Err(_) => {
                    self.die_locked(r);
                    return false;
                }
            }
        }
    }

    /// Look up an inbound channel, adopting freshly opened ones on a miss
    /// (an inline writer may have OPENed after our last merge).
    fn chan_for(&self, r: &mut ReadHalf, ch: u32) -> Option<Arc<ChanState>> {
        if let Some(c) = r.chans.get(&ch) {
            return Some(c.clone());
        }
        self.merge_chans(r);
        r.chans.get(&ch).cloned()
    }

    fn dispatch(self: &Arc<Self>, r: &mut ReadHalf, f: Bytes) -> bool {
        let Some(&kind) = f.first() else {
            self.die_locked(r);
            return false;
        };
        match kind {
            REC_DATA if f.len() >= 5 => {
                let ch = be_u32(&f[1..5]);
                let payload = f.slice(5..);
                if let Some(chan) = self.chan_for(r, ch) {
                    match chan.inbox.try_send(payload) {
                        Ok(()) => {}
                        Err(MailboxSendError::Full(p)) => {
                            r.stalled = Some((ch, p));
                            self.stalled_flag.store(true, Ordering::SeqCst);
                            // The shard retries on its short stall park.
                            self.kick();
                            return false;
                        }
                        Err(_) => {} // receiver gone: drop
                    }
                }
                // Unknown channel: data raced a local close; drop.
                true
            }
            REC_OPEN if f.len() == 13 => {
                self.handle_open(r, &f);
                !r.done
            }
            REC_CLOSE if f.len() == 5 => {
                let ch = be_u32(&f[1..5]);
                if let Some(chan) = self.chan_for(r, ch) {
                    r.chans.remove(&ch);
                    if chan.retire() {
                        self.obs.chan_down();
                    }
                }
                true
            }
            _ => {
                self.die_locked(r);
                false
            }
        }
    }

    fn handle_open(self: &Arc<Self>, r: &mut ReadHalf, f: &Bytes) {
        let ch = be_u32(&f[1..5]);
        let src = be_u32(&f[5..9]);
        let dst = be_u32(&f[9..13]);
        let Some(ctx) = &r.inbound else {
            // OPEN on a link we dialled: the peer never opens channels on
            // an inbound socket (§12 link asymmetry). Protocol violation.
            self.die_locked(r);
            return;
        };
        if dst != ctx.local || ctx.ctl.closed.load(Ordering::SeqCst) {
            if self.close_reply(ch) {
                self.die_locked(r);
            }
            return;
        }
        let cancel = ctx.accept.cancel_token().clone();
        let chan = Arc::new(ChanState::new(ch, src, self.clone(), &cancel));
        self.obs.chan_up();
        r.chans.insert(ch, chan.clone());
        if ctx.accept.try_send(TcpConnection { chan }).is_err() {
            // Listener gone (or flooded): refuse the channel.
            if let Some(c) = r.chans.remove(&ch) {
                if c.retire() {
                    self.obs.chan_down();
                }
            }
            if self.close_reply(ch) {
                self.die_locked(r);
            }
        }
    }

    /// Kill the link from a write-side or external context (no `rin`
    /// lock held): fail fast for senders, then finalize under `rin`.
    fn fail(&self) {
        self.dead.store(true, Ordering::SeqCst);
        {
            let mut b = self.out.lock();
            b.clear();
            let _ = b.stream.shutdown(Shutdown::Both);
        }
        self.die();
    }

    /// Finalize the link, taking the read lock (idempotent).
    fn die(&self) {
        let mut r = self.rin.lock();
        self.die_locked(&mut r);
    }

    /// Kill the link: retire every channel (receivers drain then observe
    /// `Closed`), fail senders, drop queued I/O, close the socket and
    /// leave the read-hint directory.
    fn die_locked(&self, r: &mut ReadHalf) {
        if r.done {
            return;
        }
        r.done = true;
        self.dead.store(true, Ordering::SeqCst);
        dir_remove(self.key);
        for (_, chan) in r.chans.drain() {
            if chan.retire() {
                self.obs.chan_down();
            }
        }
        r.stalled = None;
        self.stalled_flag.store(false, Ordering::SeqCst);
        {
            let mut q = self.inj.lock();
            q.clear();
            self.inj_bytes.store(0, Ordering::SeqCst);
        }
        {
            let mut b = self.out.lock();
            // Channels OPENed but never adopted by the read side.
            for chan in b.opened.drain(..) {
                if chan.retire() {
                    self.obs.chan_down();
                }
            }
            b.retired.clear();
            b.clear();
            let _ = b.stream.shutdown(Shutdown::Both);
        }
        let _ = r.stream.shutdown(Shutdown::Both);
        // The FIN is a readable event too: let the twin see EOF now
        // rather than on its next park tick.
        dir_mark_twin(self.key);
        self.obs.link_down();
        self.kick();
    }
}

// --- public transport ------------------------------------------------------

struct TcpShared {
    registry: OrderedMutex<HashMap<NodeId, SocketAddr>>,
    links: OrderedMutex<HashMap<SocketAddr, Arc<LinkState>>>,
    reactor: Reactor,
}

impl TcpShared {
    /// Get or dial the shared physical link to `addr`.
    fn link_to(&self, addr: SocketAddr) -> Result<Arc<LinkState>, NetError> {
        let mut links = self.links.lock();
        if let Some(l) = links.get(&addr) {
            if !l.dead.load(Ordering::SeqCst) {
                return Ok(l.clone());
            }
        }
        // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: the link table lock serializes racing dials to one physical link per address
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let shard = self.reactor.pick_shard();
        let link = LinkState::register(&shard, stream, None, self.reactor.link_obs())?;
        shard
            .cmds
            // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: AddLink must reach the reactor before a second dial can observe the link
            .send(Cmd::AddLink { link: link.clone() })
            .map_err(|_| NetError::Closed)?;
        shard.notify();
        links.insert(addr, link.clone());
        Ok(link)
    }
}

/// Default shard count: `NETAGG_TCP_SHARDS` when set, else half the
/// available cores, clamped to 1..=4 (loopback sweeps are cheap; more
/// shards only pay off when senders genuinely run in parallel).
fn default_shards() -> usize {
    if let Some(n) = std::env::var("NETAGG_TCP_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.clamp(1, 16);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / 2).clamp(1, 4)
}

/// TCP transport. Cheap to clone (shared address registry, link table and
/// reactor); the reactor threads stop when the last clone drops.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<TcpShared>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::with_shards(default_shards())
    }
}

impl TcpTransport {
    /// Create a transport with an empty address registry and the default
    /// reactor shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a transport with exactly `shards` reactor threads
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            inner: Arc::new(TcpShared {
                registry: OrderedMutex::new(lock_order::NET_REGISTRY, HashMap::new()),
                links: OrderedMutex::new(lock_order::NET_LINKS, HashMap::new()),
                reactor: Reactor::new(shards.max(1)),
            }),
        }
    }

    /// The number of reactor shards this transport runs.
    pub fn shard_count(&self) -> usize {
        self.inner.reactor.shards.len()
    }
}

impl Transport for TcpTransport {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        let listener = {
            let mut reg = self.inner.registry.lock();
            if reg.contains_key(&local) {
                return Err(NetError::AlreadyBound(local));
            }
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            l.set_nonblocking(true)?;
            reg.insert(local, l.local_addr()?);
            l
        };
        self.inner.reactor.ensure_started();
        let cancel = self.inner.reactor.cancel.clone();
        let ctl = Arc::new(ListenerCtl::default());
        let accept = Mailbox::new(
            format!("tcp.accept.{local}"),
            ACCEPT_DEPTH,
            OverflowPolicy::Block,
            cancel,
        );
        let shard = self.inner.reactor.pick_shard();
        shard
            .cmds
            .send(Cmd::AddListener {
                listener,
                local,
                accept: accept.clone(),
                ctl: ctl.clone(),
            })
            .map_err(|_| NetError::Closed)?;
        shard.notify();
        Ok(Box::new(TcpListenerWrapper {
            accept,
            ctl,
            shard: Arc::downgrade(&shard),
        }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let addr = *self
            .inner
            .registry
            .lock()
            .get(&peer)
            .ok_or(NetError::NotFound(peer))?;
        self.inner.reactor.ensure_started();
        let link = self.inner.link_to(addr)?;
        let ch = link.next_ch.fetch_add(1, Ordering::SeqCst);
        let cancel = self.inner.reactor.cancel.clone();
        let chan = Arc::new(ChanState::new(ch, peer, link.clone(), &cancel));
        link.enqueue(OutRec::Open {
            chan: chan.clone(),
            src: local,
            dst: peer,
        })?;
        Ok(Box::new(TcpConnection { chan }))
    }

    fn attach_obs(&self, obs: &MetricsRegistry) {
        self.inner.reactor.attach(obs);
    }
}

struct TcpListenerWrapper {
    accept: Mailbox<TcpConnection>,
    ctl: Arc<ListenerCtl>,
    shard: Weak<Shard>,
}

impl Listener for TcpListenerWrapper {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        match self.accept.recv() {
            Ok(conn) => Ok(Box::new(conn)),
            Err(_) => Err(NetError::Closed),
        }
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        match self.accept.recv_timeout(timeout) {
            Ok(conn) => Ok(Box::new(conn)),
            Err(MailboxRecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(_) => Err(NetError::Closed),
        }
    }

    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        match self.accept.recv_cancellable(cancel) {
            Ok(conn) => Ok(Box::new(conn)),
            Err(MailboxRecvError::Closed) => Err(NetError::Closed),
            Err(MailboxRecvError::Cancelled) => {
                if cancel.is_cancelled() {
                    Err(NetError::Cancelled)
                } else {
                    Err(NetError::Closed)
                }
            }
        }
    }
}

impl Drop for TcpListenerWrapper {
    fn drop(&mut self) {
        self.ctl.closed.store(true, Ordering::SeqCst);
        self.accept.close();
        if let Some(s) = self.shard.upgrade() {
            s.notify();
        }
    }
}

/// One virtual connection handle.
struct TcpConnection {
    chan: Arc<ChanState>,
}

impl Connection for TcpConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        if payload.len() > MAX_FRAME {
            return Err(NetError::FrameTooLarge(payload.len()));
        }
        let chan = &self.chan;
        if chan.closed.load(Ordering::SeqCst) || chan.link.dead.load(Ordering::SeqCst) {
            return Err(NetError::Closed);
        }
        match chan.window.acquire(
            units::Bytes::of_len(payload.len()),
            chan.inbox.cancel_token(),
        ) {
            Ok(()) => {}
            // The window's cancel token is the reactor's: cancellation
            // here means transport teardown, which is a close to callers.
            Err(NetError::Cancelled) => return Err(NetError::Closed),
            Err(e) => return Err(e),
        }
        chan.link.enqueue(OutRec::Data {
            chan: chan.clone(),
            payload,
        })?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        self.chan.inbox.recv().map_err(|_| NetError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        match self.chan.inbox.recv_timeout(timeout) {
            Ok(b) => Ok(b),
            Err(MailboxRecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(_) => Err(NetError::Closed),
        }
    }

    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        match self.chan.inbox.recv_cancellable(cancel) {
            Ok(b) => Ok(b),
            Err(MailboxRecvError::Closed) => Err(NetError::Closed),
            Err(MailboxRecvError::Cancelled) => {
                if cancel.is_cancelled() {
                    Err(NetError::Cancelled)
                } else {
                    Err(NetError::Closed)
                }
            }
        }
    }

    fn peer(&self) -> NodeId {
        self.chan.peer
    }
}

impl Drop for TcpConnection {
    fn drop(&mut self) {
        if self.chan.closed.load(Ordering::SeqCst) {
            return; // already retired (remote close or link death)
        }
        // The CLOSE record queues behind any unsent DATA, so queued
        // writes flush before the peer sees the close.
        let _ = self.chan.link.enqueue(OutRec::Close {
            chan: self.chan.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tcp_roundtrip() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the TCP framing is what is under test
        let h = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(7, 1).unwrap();
                c.send(Bytes::from_static(b"over tcp")).unwrap();
                c.recv().unwrap()
            }
        });
        let mut server = l.accept().unwrap();
        assert_eq!(server.peer(), 7);
        assert_eq!(server.recv().unwrap().as_ref(), b"over tcp");
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(h.join().unwrap().as_ref(), b"ack");
    }

    #[test]
    fn tcp_large_message() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let payload = Bytes::from((0..2_000_000u32).map(|i| i as u8).collect::<Vec<u8>>());
        let expect = payload.clone();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the TCP framing is what is under test
        let h = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(2, 1).unwrap();
                c.send(payload).unwrap();
                // c drops here: the 2 MB frame must flush before CLOSE.
            }
        });
        let mut server = l.accept().unwrap();
        let got = server.recv().unwrap();
        h.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn tcp_recv_timeout() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(30)),
            Err(NetError::Timeout)
        );
        drop(c.send(Bytes::from_static(b"late")));
        assert_eq!(
            server
                .recv_timeout(Duration::from_millis(200))
                .unwrap()
                .as_ref(),
            b"late"
        );
    }

    #[test]
    fn tcp_unknown_peer() {
        let t = TcpTransport::new();
        assert!(matches!(t.connect(1, 9), Err(NetError::NotFound(9))));
    }

    #[test]
    fn tcp_accept_timeout() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        assert!(matches!(
            l.accept_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn tcp_close_detected() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        drop(c);
        assert_eq!(server.recv(), Err(NetError::Closed));
    }

    #[test]
    fn connections_multiplex_one_physical_link() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut clients: Vec<Box<dyn Connection>> =
            (0..8).map(|i| t.connect(100 + i, 1).unwrap()).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.send(Bytes::from(format!("payload-{i}"))).unwrap();
        }
        // All eight logical connections share one dialled socket.
        assert_eq!(t.inner.links.lock().len(), 1);
        for i in 0..8u32 {
            let mut server = l.accept().unwrap();
            assert_eq!(server.peer(), 100 + i);
            assert_eq!(
                server.recv().unwrap().as_ref(),
                format!("payload-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn links_round_robin_across_shards() {
        let t = TcpTransport::with_shards(3);
        assert_eq!(t.shard_count(), 3);
        let _listeners: Vec<_> = (1..=3).map(|n| t.bind(n).unwrap()).collect();
        let _conns: Vec<_> = (1..=3).map(|n| t.connect(10 + n, n).unwrap()).collect();
        let links = t.inner.links.lock();
        let mut shards: Vec<usize> = links.values().map(|l| l.shard_idx).collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(
            shards.len(),
            3,
            "three links to three peers must spread over all three shards"
        );
    }

    #[test]
    fn batched_frames_roundtrip_in_order() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        // A burst of small frames plus one large (> COALESCE_MAX, so it
        // takes the zero-copy big-payload path), then more smalls: the
        // receiver must see every frame intact, in order.
        let big = Bytes::from(vec![0xAB; 100 * 1024]);
        for i in 0..100u32 {
            c.send(Bytes::from(format!("small-{i}"))).unwrap();
        }
        c.send(big.clone()).unwrap();
        for i in 100..200u32 {
            c.send(Bytes::from(format!("small-{i}"))).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(
                server.recv().unwrap().as_ref(),
                format!("small-{i}").as_bytes()
            );
        }
        assert_eq!(server.recv().unwrap(), big);
        for i in 100..200u32 {
            assert_eq!(
                server.recv().unwrap().as_ref(),
                format!("small-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn transport_drop_fails_blocked_receivers() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let _c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread
        let h = thread::spawn(move || server.recv());
        thread::sleep(Duration::from_millis(30));
        drop(l);
        drop(t); // joins the reactor; the blocked recv must wake
        assert_eq!(h.join().unwrap(), Err(NetError::Closed));
    }

    #[test]
    fn oversized_send_is_rejected() {
        let t = TcpTransport::new();
        let _l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let huge = Bytes::from(vec![0u8; MAX_FRAME + 1]);
        assert!(matches!(c.send(huge), Err(NetError::FrameTooLarge(_))));
    }
}

#[cfg(test)]
mod pingpong_bench {
    use super::*;

    #[test]
    #[ignore]
    fn pingpong_latency() {
        let t = TcpTransport::new();
        let mut l = t.bind(2).unwrap();
        let mut c = t.connect(1, 2).unwrap();
        c.send(bytes::Bytes::from_static(b"warm")).unwrap();
        let mut s = l.accept().unwrap();
        s.recv().unwrap();
        let n = 2000u32;
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            c.send(bytes::Bytes::from_static(b"ping")).unwrap();
            s.recv().unwrap();
            s.send(bytes::Bytes::from_static(b"pong")).unwrap();
            c.recv().unwrap();
        }
        let rtt = t0.elapsed() / n;
        eprintln!("[bench] rtt = {rtt:?} ({:?} per hop)", rtt / 2);
    }
}
