//! Real TCP-loopback transport with length-prefixed framing.
//!
//! Logical node addresses map to ephemeral `127.0.0.1` ports through a
//! shared in-process registry. Connections exchange a one-frame handshake
//! carrying the dialler's logical address, then speak length-prefixed
//! frames with `TCP_NODELAY` set (persistent connections, as the paper's
//! shim layers maintain).

use crate::framing::{encode_frame, FrameDecoder};
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// TCP transport. Cheap to clone (shared address registry).
#[derive(Clone, Default)]
pub struct TcpTransport {
    registry: Arc<Mutex<HashMap<NodeId, SocketAddr>>>,
}

impl TcpTransport {
    /// Create a transport with an empty address registry.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for TcpTransport {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        let mut reg = self.registry.lock();
        if reg.contains_key(&local) {
            return Err(NetError::AlreadyBound(local));
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        reg.insert(local, listener.local_addr()?);
        Ok(Box::new(TcpListenerWrapper { listener }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let addr = {
            let reg = self.registry.lock();
            *reg.get(&peer).ok_or(NetError::NotFound(peer))?
        };
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut conn = TcpConnection::new(stream, peer);
        // Handshake: announce our logical address.
        conn.send(Bytes::copy_from_slice(&local.to_be_bytes()))?;
        Ok(Box::new(conn))
    }
}

struct TcpListenerWrapper {
    listener: TcpListener,
}

impl TcpListenerWrapper {
    fn finish_accept(&self, stream: TcpStream) -> Result<Box<dyn Connection>, NetError> {
        stream.set_nodelay(true)?;
        let mut conn = TcpConnection::new(stream, 0);
        let hello = conn.recv()?;
        if hello.len() != 4 {
            return Err(NetError::Corrupt("bad handshake frame".into()));
        }
        conn.peer = u32::from_be_bytes([hello[0], hello[1], hello[2], hello[3]]);
        Ok(Box::new(conn))
    }
}

impl Listener for TcpListenerWrapper {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let (stream, _) = self.listener.accept()?;
        self.finish_accept(stream)
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        // std's TcpListener has no accept timeout; emulate with nonblocking
        // polling, which is adequate for tests and experiment setup paths.
        self.listener.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + timeout;
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break Ok(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        break Err(NetError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break Err(e.into()),
            }
        };
        self.listener.set_nonblocking(false)?;
        let stream = result?;
        stream.set_nonblocking(false)?;
        self.finish_accept(stream)
    }
}

struct TcpConnection {
    stream: TcpStream,
    decoder: FrameDecoder,
    peer: NodeId,
    read_buf: Vec<u8>,
}

impl TcpConnection {
    fn new(stream: TcpStream, peer: NodeId) -> Self {
        Self {
            stream,
            decoder: FrameDecoder::new(),
            peer,
            read_buf: vec![0u8; 64 * 1024],
        }
    }

    fn fill(&mut self) -> Result<(), NetError> {
        let n = self.stream.read(&mut self.read_buf)?;
        if n == 0 {
            return Err(NetError::Closed);
        }
        self.decoder.feed(&self.read_buf[..n]);
        Ok(())
    }
}

impl Connection for TcpConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        let mut buf = BytesMut::with_capacity(payload.len() + 4);
        encode_frame(&payload, &mut buf)?;
        self.stream.write_all(&buf)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        self.stream.set_read_timeout(None)?;
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            self.fill()?;
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.fill() {
                Ok(()) => {}
                Err(NetError::Timeout) => return Err(NetError::Timeout),
                Err(e) => return Err(e),
            }
        }
    }

    fn peer(&self) -> NodeId {
        self.peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tcp_roundtrip() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the TCP framing is what is under test
        let h = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(7, 1).unwrap();
                c.send(Bytes::from_static(b"over tcp")).unwrap();
                c.recv().unwrap()
            }
        });
        let mut server = l.accept().unwrap();
        assert_eq!(server.peer(), 7);
        assert_eq!(server.recv().unwrap().as_ref(), b"over tcp");
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(h.join().unwrap().as_ref(), b"ack");
    }

    #[test]
    fn tcp_large_message() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let payload = Bytes::from((0..2_000_000u32).map(|i| i as u8).collect::<Vec<u8>>());
        let expect = payload.clone();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the TCP framing is what is under test
        let h = thread::spawn({
            let t = t.clone();
            move || {
                let mut c = t.connect(2, 1).unwrap();
                c.send(payload).unwrap();
            }
        });
        let mut server = l.accept().unwrap();
        let got = server.recv().unwrap();
        h.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn tcp_recv_timeout() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_millis(30)),
            Err(NetError::Timeout)
        );
        drop(c.send(Bytes::from_static(b"late")));
        assert_eq!(
            server
                .recv_timeout(Duration::from_millis(200))
                .unwrap()
                .as_ref(),
            b"late"
        );
    }

    #[test]
    fn tcp_unknown_peer() {
        let t = TcpTransport::new();
        assert!(matches!(t.connect(1, 9), Err(NetError::NotFound(9))));
    }

    #[test]
    fn tcp_accept_timeout() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        assert!(matches!(
            l.accept_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn tcp_close_detected() {
        let t = TcpTransport::new();
        let mut l = t.bind(1).unwrap();
        let c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        drop(c);
        assert_eq!(server.recv(), Err(NetError::Closed));
    }
}
