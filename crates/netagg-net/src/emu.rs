//! Emulated network: a transport whose endpoints have finite ingress and
//! egress link capacities.
//!
//! This reproduces the paper's testbed on one machine: servers get 1 Gbps
//! links, agg boxes 10 Gbps. A `bandwidth_scale` factor shrinks all rates
//! uniformly so experiments preserve every capacity *ratio* while running
//! quickly on CI hardware.

use crate::channel::ChannelTransport;
use crate::lifecycle::CancelToken;
use crate::ratelimit::TokenBucket;
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Shared epoch for in-flight latency timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Clone)]
struct Nic {
    egress: Arc<TokenBucket>,
    ingress: Arc<TokenBucket>,
}

/// Builder for [`EmuNet`].
pub struct EmuNetBuilder {
    endpoints: HashMap<NodeId, (f64, f64)>,
    scale: f64,
    latency: Duration,
}

impl Default for EmuNetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EmuNetBuilder {
    /// Start an empty builder at scale 1.0.
    pub fn new() -> Self {
        Self {
            endpoints: HashMap::new(),
            scale: 1.0,
            latency: Duration::ZERO,
        }
    }

    /// One-way propagation latency added to every message (in addition to
    /// serialisation through the token buckets). Zero by default.
    pub fn latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Scale every configured rate by `s` (e.g. `1e-2` to emulate a 1 Gbps
    /// link as 10 Mbps). Ratios between endpoints are preserved.
    pub fn bandwidth_scale(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.scale = s;
        self
    }

    /// Add an endpoint with symmetric link capacity in bytes/s.
    pub fn endpoint(mut self, node: NodeId, rate: f64) -> Self {
        self.endpoints.insert(node, (rate, rate));
        self
    }

    /// Add an endpoint with distinct egress/ingress capacities in bytes/s.
    pub fn endpoint_asym(mut self, node: NodeId, egress: f64, ingress: f64) -> Self {
        self.endpoints.insert(node, (egress, ingress));
        self
    }

    /// Materialise the emulated network.
    /// Materialise the emulated network over the in-process transport.
    pub fn build(self) -> EmuNet {
        self.build_over(Arc::new(ChannelTransport::new()))
    }

    /// Materialise the emulated network over any inner transport (e.g.
    /// real TCP loopback sockets with emulated link capacities on top).
    pub fn build_over(self, inner: Arc<dyn Transport>) -> EmuNet {
        let nics = self
            .endpoints
            .into_iter()
            .map(|(node, (eg, ing))| {
                (
                    node,
                    Nic {
                        egress: Arc::new(TokenBucket::for_link(eg * self.scale)),
                        ingress: Arc::new(TokenBucket::for_link(ing * self.scale)),
                    },
                )
            })
            .collect();
        EmuNet {
            inner,
            nics: Arc::new(RwLock::new(nics)),
            latency: self.latency,
        }
    }
}

/// A transport with emulated per-endpoint link capacities. Cheap to clone.
#[derive(Clone)]
pub struct EmuNet {
    inner: Arc<dyn Transport>,
    nics: Arc<RwLock<HashMap<NodeId, Nic>>>,
    latency: Duration,
}

impl EmuNet {
    /// Builder for a new emulated network.
    pub fn builder() -> EmuNetBuilder {
        EmuNetBuilder::new()
    }

    /// Make `node` share the NIC (both token buckets) of `existing`,
    /// modelling several logical listeners on one physical server.
    pub fn alias(&self, node: NodeId, existing: NodeId) -> Result<(), NetError> {
        let nic = self.nic(existing)?;
        self.nics.write().insert(node, nic);
        Ok(())
    }

    /// Register or replace an endpoint after construction.
    pub fn add_endpoint(&self, node: NodeId, egress: f64, ingress: f64) {
        self.nics.write().insert(
            node,
            Nic {
                egress: Arc::new(TokenBucket::for_link(egress)),
                ingress: Arc::new(TokenBucket::for_link(ingress)),
            },
        );
    }

    fn nic(&self, node: NodeId) -> Result<Nic, NetError> {
        self.nics
            .read()
            .get(&node)
            .cloned()
            .ok_or(NetError::NotFound(node))
    }
}

impl Transport for EmuNet {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        self.nic(local)?; // endpoints must be declared
        let inner = self.inner.bind(local)?;
        Ok(Box::new(EmuListener {
            inner,
            net: self.clone(),
            local,
        }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        let local_nic = self.nic(local)?;
        let peer_nic = self.nic(peer)?;
        let inner = self.inner.connect(local, peer)?;
        Ok(Box::new(EmuConnection {
            inner,
            egress: local_nic.egress,
            peer_ingress: peer_nic.ingress,
            latency: self.latency,
        }))
    }

    fn attach_obs(&self, obs: &netagg_obs::MetricsRegistry) {
        self.inner.attach_obs(obs);
    }
}

struct EmuListener {
    inner: Box<dyn Listener>,
    net: EmuNet,
    local: NodeId,
}

impl EmuListener {
    fn wrap(&self, conn: Box<dyn Connection>) -> Result<Box<dyn Connection>, NetError> {
        let peer = conn.peer();
        let peer_nic = self.net.nic(peer)?;
        let local_nic = self.net.nic(self.local)?;
        Ok(Box::new(EmuConnection {
            inner: conn,
            egress: local_nic.egress,
            peer_ingress: peer_nic.ingress,
            latency: self.net.latency,
        }))
    }
}

impl Listener for EmuListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept()?;
        self.wrap(c)
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept_timeout(timeout)?;
        self.wrap(c)
    }

    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept_cancellable(cancel)?;
        self.wrap(c)
    }
}

struct EmuConnection {
    inner: Box<dyn Connection>,
    egress: Arc<TokenBucket>,
    peer_ingress: Arc<TokenBucket>,
    latency: Duration,
}

impl EmuConnection {
    /// With latency enabled, payloads carry an 8-byte departure timestamp
    /// (nanos since the shared epoch); the receiver sleeps out the
    /// remaining propagation time without throttling the sender.
    fn unwrap_latency(&self, mut b: Bytes) -> Bytes {
        if self.latency.is_zero() || b.len() < 8 {
            return b;
        }
        let sent_nanos = b.get_u64();
        let deliver_at = epoch() + Duration::from_nanos(sent_nanos) + self.latency;
        let now = Instant::now();
        if deliver_at > now {
            std::thread::sleep(deliver_at - now);
        }
        b
    }
}

impl Connection for EmuConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        // Sending a message serialises it through the local egress link and
        // the peer's ingress link; both charge before delivery, so
        // many-to-one senders contend on the receiver's NIC (incast).
        let n = payload.len() as f64;
        self.egress.acquire(n);
        self.peer_ingress.acquire(n);
        if self.latency.is_zero() {
            return self.inner.send(payload);
        }
        let mut framed = BytesMut::with_capacity(payload.len() + 8);
        framed.put_u64(epoch().elapsed().as_nanos() as u64);
        framed.extend_from_slice(&payload);
        self.inner.send(framed.freeze())
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        let b = self.inner.recv()?;
        Ok(self.unwrap_latency(b))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        let b = self.inner.recv_timeout(timeout)?;
        Ok(self.unwrap_latency(b))
    }

    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        let b = self.inner.recv_cancellable(cancel)?;
        Ok(self.unwrap_latency(b))
    }

    fn peer(&self) -> NodeId {
        self.inner.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    /// 1 "Gbps" scaled down for test speed: 1 MB/s.
    const EDGE: f64 = 125e6;
    const SCALE: f64 = 1e-2; // -> 1.25 MB/s

    fn two_node_net() -> EmuNet {
        EmuNet::builder()
            .bandwidth_scale(SCALE)
            .endpoint(1, EDGE)
            .endpoint(2, EDGE)
            .endpoint(3, EDGE * 10.0) // "10 Gbps" box
            .build()
    }

    #[test]
    fn transfer_takes_link_serialisation_time() {
        let net = two_node_net();
        let mut l = net.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the emulated link is what is under test
        let h = thread::spawn({
            let net = net.clone();
            move || {
                let mut c = net.connect(2, 1).unwrap();
                let t0 = Instant::now();
                let chunk = Bytes::from(vec![0u8; 64 * 1024]);
                // 1 MB total over a 1.25 MB/s link: ~0.8 s.
                for _ in 0..16 {
                    c.send(chunk.clone()).unwrap();
                }
                t0.elapsed()
            }
        });
        let mut server = l.accept().unwrap();
        for _ in 0..16 {
            server.recv().unwrap();
        }
        let elapsed = h.join().unwrap();
        assert!(
            elapsed.as_secs_f64() > 0.4,
            "1 MB over an emulated 1.25 MB/s link took only {elapsed:?}"
        );
    }

    #[test]
    fn fast_endpoint_is_not_limited_by_its_own_nic() {
        // Node 3 has 10x the capacity: sending to it is limited by the
        // sender's egress only, so two senders together get ~2x throughput.
        let net = two_node_net();
        let mut l = net.bind(3).unwrap();
        let senders: Vec<_> = [1u32, 2u32]
            .into_iter()
            .map(|id| {
                let net = net.clone();
                // netagg-lint: allow(no-raw-spawn) test fan-in senders; plain threads keep the timing honest
                thread::spawn(move || {
                    let mut c = net.connect(id, 3).unwrap();
                    let chunk = Bytes::from(vec![0u8; 64 * 1024]);
                    let t0 = Instant::now();
                    for _ in 0..8 {
                        c.send(chunk.clone()).unwrap();
                    }
                    t0.elapsed()
                })
            })
            .collect();
        let mut conns = Vec::new();
        for _ in 0..2 {
            conns.push(l.accept().unwrap());
        }
        let mut handles = Vec::new();
        for mut c in conns {
            // netagg-lint: allow(no-raw-spawn) test fan-in receivers; plain threads keep the timing honest
            handles.push(thread::spawn(move || {
                for _ in 0..8 {
                    c.recv().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for s in senders {
            let elapsed = s.join().unwrap().as_secs_f64();
            // 512 KB over 1.25 MB/s ~ 0.41 s; allow slack but require that
            // the two senders ran in parallel (not serialised to ~0.8 s).
            assert!(elapsed < 0.75, "sender took {elapsed}s: not parallel");
        }
    }

    #[test]
    fn incast_contends_on_receiver_ingress() {
        // Two 10x-fast senders into one slow receiver: aggregate limited by
        // the receiver's ingress.
        let net = EmuNet::builder()
            .bandwidth_scale(SCALE)
            .endpoint(1, EDGE * 10.0)
            .endpoint(2, EDGE * 10.0)
            .endpoint(9, EDGE)
            .build();
        let mut l = net.bind(9).unwrap();
        let t0 = Instant::now();
        let senders: Vec<_> = [1u32, 2]
            .into_iter()
            .map(|id| {
                let net = net.clone();
                // netagg-lint: allow(no-raw-spawn) test fan-in senders; plain threads keep the timing honest
                thread::spawn(move || {
                    let mut c = net.connect(id, 9).unwrap();
                    let chunk = Bytes::from(vec![0u8; 64 * 1024]);
                    for _ in 0..8 {
                        c.send(chunk.clone()).unwrap();
                    }
                })
            })
            .collect();
        let mut conns = Vec::new();
        for _ in 0..2 {
            conns.push(l.accept().unwrap());
        }
        let mut handles = Vec::new();
        for mut c in conns {
            // netagg-lint: allow(no-raw-spawn) test fan-in receivers; plain threads keep the timing honest
            handles.push(thread::spawn(move || {
                for _ in 0..8 {
                    c.recv().unwrap();
                }
            }));
        }
        for h in senders.into_iter().chain(handles) {
            h.join().unwrap();
        }
        // 1 MB total into a 1.25 MB/s ingress: >= ~0.6 s.
        assert!(t0.elapsed().as_secs_f64() > 0.5, "{:?}", t0.elapsed());
    }

    #[test]
    fn aliased_endpoints_share_the_nic() {
        let net = two_node_net();
        net.alias(100, 1).unwrap();
        let mut l = net.bind(100).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the alias routing is what is under test
        let h = thread::spawn({
            let net = net.clone();
            move || {
                let mut c = net.connect(2, 100).unwrap();
                let t0 = Instant::now();
                let chunk = Bytes::from(vec![0u8; 64 * 1024]);
                for _ in 0..8 {
                    c.send(chunk.clone()).unwrap();
                }
                t0.elapsed()
            }
        });
        let mut server = l.accept().unwrap();
        for _ in 0..8 {
            server.recv().unwrap();
        }
        // 512 KB over endpoint 1's shared 1.25 MB/s ingress: not instant.
        assert!(h.join().unwrap().as_secs_f64() > 0.2);
        assert!(net.alias(101, 999).is_err());
    }

    #[test]
    fn emulation_composes_over_tcp() {
        // Emulated 1.25 MB/s links over REAL loopback sockets.
        let tcp: Arc<dyn Transport> = Arc::new(crate::tcp::TcpTransport::new());
        let net = EmuNet::builder()
            .bandwidth_scale(SCALE)
            .endpoint(1, EDGE)
            .endpoint(2, EDGE)
            .build_over(tcp);
        let mut l = net.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the TCP-backed emulation is under test
        let h = thread::spawn({
            let net = net.clone();
            move || {
                let mut c = net.connect(2, 1).unwrap();
                let t0 = Instant::now();
                let chunk = Bytes::from(vec![0u8; 64 * 1024]);
                for _ in 0..8 {
                    c.send(chunk.clone()).unwrap();
                }
                t0.elapsed()
            }
        });
        let mut server = l.accept().unwrap();
        for _ in 0..8 {
            assert_eq!(server.recv().unwrap().len(), 64 * 1024);
        }
        // 512 KB over 1.25 MB/s: rate limiting applies on top of TCP.
        assert!(h.join().unwrap().as_secs_f64() > 0.25);
    }

    #[test]
    fn latency_adds_one_way_delay_without_throttling() {
        let net = EmuNet::builder()
            .bandwidth_scale(1.0) // fast links: isolate propagation delay
            .latency(Duration::from_millis(25))
            .endpoint(1, EDGE)
            .endpoint(2, EDGE)
            .build();
        let mut l = net.bind(1).unwrap();
        // netagg-lint: allow(no-raw-spawn) test harness thread; the serialisation model is under test
        let h = thread::spawn({
            let net = net.clone();
            move || {
                let mut c = net.connect(2, 1).unwrap();
                // Two back-to-back sends: latency is per-message pipeline
                // delay, not per-message serialisation.
                let t0 = Instant::now();
                c.send(Bytes::from_static(b"a")).unwrap();
                c.send(Bytes::from_static(b"b")).unwrap();
                assert!(
                    t0.elapsed() < Duration::from_millis(20),
                    "send not throttled"
                );
                c.recv().unwrap();
            }
        });
        let mut server = l.accept().unwrap();
        let t0 = Instant::now();
        server.recv().unwrap();
        let first = t0.elapsed();
        assert!(
            first >= Duration::from_millis(20),
            "one-way delay applied: {first:?}"
        );
        // The second message was in flight concurrently: it arrives
        // almost immediately after the first.
        let t1 = Instant::now();
        server.recv().unwrap();
        assert!(
            t1.elapsed() < Duration::from_millis(20),
            "pipelined delivery"
        );
        server.send(Bytes::from_static(b"ok")).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn undeclared_endpoint_is_rejected() {
        let net = two_node_net();
        assert!(matches!(net.bind(42), Err(NetError::NotFound(42))));
        assert!(net.connect(1, 42).is_err());
    }
}
