//! Unified lifecycle and backpressure runtime.
//!
//! Every threaded layer of the stack (scheduler pools, agg-box pumps, shim
//! listeners, the failure detector) used to hand-roll the same three
//! fragments: an `AtomicBool` shutdown flag, a 100 ms `recv_timeout` poll
//! loop that noticed the flag eventually, and an unbounded or ad-hoc
//! channel in between. This module replaces all three with one set of
//! primitives (see DESIGN.md §9 for the system-wide inventory):
//!
//! * [`CancelToken`] — a cloneable cancellation flag whose [`cancel`]
//!   *wakes* blocked waiters immediately (condition-variable notify plus
//!   registered wakers) instead of being observed by polling.
//! * [`Mailbox`] — a bounded MPMC queue with an explicit
//!   [`OverflowPolicy`] (`Block`, `DropOldest`, `Reject`) and
//!   shutdown-aware send/recv: a cancelled token or a closed queue turns
//!   every blocked operation into a prompt, typed error.
//! * [`JoinScope`] — an owner for named threads
//!   (`std::thread::Builder`) that joins with a deadline and propagates
//!   worker panics, so a hung thread becomes a loud error instead of a
//!   silent futex park.
//!
//! [`cancel`]: CancelToken::cancel
//!
//! # Lock ordering
//!
//! `CancelToken::cancel` runs registered wakers while holding the token's
//! waker-table lock; a waker may take its own queue lock and notify
//! condvars, but must never call [`CancelToken::register_waker`] or
//! [`CancelToken::cancel`] itself. All wakers installed by this module
//! obey that rule. Unregistration ([`WakerGuard`] drop) moves the waker
//! out of the table and drops it *outside* the lock, because dropping a
//! waker closure can cascade into further unregistrations on the same
//! token — a mailbox queue may hold items that themselves own mailboxes
//! (the TCP reactor's accept queue holds connections owning inboxes).

use crate::lock_order::LockRank;
use netagg_obs::{names, Counter, Gauge, MetricsRegistry};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default deadline a [`JoinScope`] grants its threads to exit after
/// cancellation before declaring them hung.
pub const DEFAULT_JOIN_DEADLINE: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

type Waker = Box<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct WakerTable {
    next_id: u64,
    wakers: Vec<(u64, Waker)>,
}

struct TokenInner {
    cancelled: AtomicBool,
    table: Mutex<WakerTable>,
    cv: Condvar,
    // Dedicated mutex for `wait_timeout` (parking_lot condvars pair with a
    // specific mutex; the waker table lock must not double as the wait
    // lock, or a slow waker would stall waiters).
    wait_lock: Mutex<()>,
}

/// A cloneable cancellation token: one `cancel()` call wakes every blocked
/// receiver, sleeper and waiter attached to any clone, immediately.
///
/// Cancellation is one-way and permanent. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                table: Mutex::new(WakerTable::default()),
                cv: Condvar::new(),
                wait_lock: Mutex::new(()),
            }),
        }
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Cancel: set the flag, then wake every waiter. Safe to call from any
    /// thread, any number of times.
    pub fn cancel(&self) {
        if self.inner.cancelled.swap(true, Ordering::SeqCst) {
            return;
        }
        // Take and release the wait lock so a waiter that checked the flag
        // but has not yet parked cannot miss the notify.
        drop(self.inner.wait_lock.lock());
        self.inner.cv.notify_all();
        let table = self.inner.table.lock();
        for (_, w) in table.wakers.iter() {
            w();
        }
    }

    /// Sleep for up to `d`, waking early on cancellation. Returns `true`
    /// when the token is cancelled (the interruptible-sleep idiom:
    /// `if cancel.wait_timeout(tick) { return; }`).
    pub fn wait_timeout(&self, d: Duration) -> bool {
        let deadline = Instant::now() + d;
        let mut g = self.inner.wait_lock.lock();
        loop {
            if self.is_cancelled() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.cv.wait_for(&mut g, deadline - now);
        }
    }

    /// Register a waker closure to run (once) on cancellation; dropping
    /// the returned guard unregisters it. If the token is already
    /// cancelled the waker runs immediately.
    ///
    /// The waker must not call back into this token (see module docs).
    pub fn register_waker(&self, waker: impl Fn() + Send + Sync + 'static) -> WakerGuard {
        let id = {
            let mut table = self.inner.table.lock();
            let id = table.next_id;
            table.next_id += 1;
            table.wakers.push((id, Box::new(waker)));
            id
        };
        let guard = WakerGuard {
            token: self.clone(),
            id,
        };
        if self.is_cancelled() {
            // Cancellation may have raced ahead of registration; run the
            // waker now so the caller cannot block forever.
            let table = self.inner.table.lock();
            if let Some((_, w)) = table.wakers.iter().find(|(i, _)| *i == id) {
                w();
            }
        }
        guard
    }

    /// Whether two handles refer to the same underlying token.
    pub fn same(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// RAII registration handle from [`CancelToken::register_waker`];
/// dropping it removes the waker.
pub struct WakerGuard {
    token: CancelToken,
    id: u64,
}

impl Drop for WakerGuard {
    fn drop(&mut self) {
        // Extract under the lock, drop outside it: a waker closure can own
        // state (e.g. a mailbox queue) whose drop unregisters further
        // wakers on this same token, and the table lock is not reentrant.
        let removed = {
            let mut table = self.token.inner.table.lock();
            table
                .wakers
                .iter()
                .position(|(i, _)| *i == self.id)
                .map(|idx| table.wakers.swap_remove(idx).1)
        };
        drop(removed);
    }
}

impl fmt::Debug for WakerGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WakerGuard").field("id", &self.id).finish()
    }
}

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

/// What a bounded [`Mailbox`] does when a send finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the sender until space frees up (backpressure).
    Block,
    /// Evict the oldest queued item, count it dropped, enqueue the new one.
    DropOldest,
    /// Refuse the new item ([`MailboxSendError::Full`]), counting it dropped.
    Reject,
}

impl OverflowPolicy {
    /// Stable lowercase label used in metric names (`mailbox.dropped.*`).
    pub fn label(&self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropOldest => "drop_oldest",
            OverflowPolicy::Reject => "reject",
        }
    }
}

/// Send failed; the rejected value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum MailboxSendError<T> {
    /// The mailbox is full and its policy is [`OverflowPolicy::Reject`].
    Full(T),
    /// The mailbox was closed.
    Closed(T),
    /// The mailbox's cancel token fired.
    Cancelled(T),
}

/// Blocking receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxRecvError {
    /// The mailbox was closed and drained.
    Closed,
    /// A cancel token fired.
    Cancelled,
}

/// Receive with a timeout failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxRecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The mailbox was closed and drained.
    Closed,
    /// A cancel token fired.
    Cancelled,
}

/// Non-blocking receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxTryRecvError {
    /// The mailbox is currently empty.
    Empty,
    /// The mailbox was closed and drained.
    Closed,
    /// A cancel token fired.
    Cancelled,
}

impl<T> fmt::Display for MailboxSendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MailboxSendError::Full(_) => write!(f, "mailbox full"),
            MailboxSendError::Closed(_) => write!(f, "mailbox closed"),
            MailboxSendError::Cancelled(_) => write!(f, "mailbox cancelled"),
        }
    }
}

struct MailboxState<T> {
    queue: VecDeque<T>,
    closed: bool,
    dropped: u64,
}

/// Condvar pair + state, split into its own `Arc` so the cancel waker can
/// capture it without keeping the whole mailbox (and through it the waker
/// guard, and through that the token) alive in a cycle.
struct MailboxShared<T> {
    state: Mutex<MailboxState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct MailboxObs {
    depth: Arc<Gauge>,
    dropped: Arc<Counter>,
    dropped_policy: Arc<Counter>,
}

struct MailboxInner<T> {
    name: String,
    capacity: usize,
    policy: OverflowPolicy,
    cancel: CancelToken,
    shared: Arc<MailboxShared<T>>,
    obs: Option<MailboxObs>,
    // Keeps the bound token's waker registered for the mailbox's lifetime;
    // dropping the last mailbox handle unregisters it.
    _waker: WakerGuard,
}

/// A bounded multi-producer multi-consumer queue with an explicit
/// [`OverflowPolicy`] and shutdown-aware blocking operations.
///
/// Every mailbox is bound to a [`CancelToken`] at construction: once that
/// token cancels, blocked senders and receivers wake immediately and all
/// subsequent operations fail with a `Cancelled` error. Cancellation wins
/// over queued data — a receiver observing a cancelled token returns
/// promptly even when items remain, because shutdown must not depend on
/// draining.
///
/// Cloning shares the queue (an `Arc`).
pub struct Mailbox<T> {
    inner: Arc<MailboxInner<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mailbox")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("policy", &self.inner.policy)
            .finish()
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// A bounded mailbox named `name` (metric key suffix), holding at most
    /// `capacity` items, overflowing per `policy`, bound to `cancel`.
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        policy: OverflowPolicy,
        cancel: CancelToken,
    ) -> Self {
        Self::build(name.into(), capacity, policy, cancel, None)
    }

    /// Like [`Mailbox::new`], additionally publishing `mailbox.depth.<name>`,
    /// `mailbox.dropped.<name>` and `mailbox.dropped.<policy>` into `obs`
    /// (the DESIGN.md §7 contract).
    pub fn with_obs(
        name: impl Into<String>,
        capacity: usize,
        policy: OverflowPolicy,
        cancel: CancelToken,
        obs: &MetricsRegistry,
    ) -> Self {
        let name = name.into();
        let mobs = MailboxObs {
            depth: obs.gauge(&names::mailbox_depth(&name)),
            dropped: obs.counter(&names::mailbox_dropped(&name)),
            dropped_policy: obs.counter(&names::mailbox_dropped_policy(policy.label())),
        };
        Self::build(name, capacity, policy, cancel, Some(mobs))
    }

    fn build(
        name: String,
        capacity: usize,
        policy: OverflowPolicy,
        cancel: CancelToken,
        obs: Option<MailboxObs>,
    ) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        let shared = Arc::new(MailboxShared {
            state: Mutex::new(MailboxState {
                queue: VecDeque::new(),
                closed: false,
                dropped: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let wake = shared.clone();
        let waker = cancel.register_waker(move || {
            // Take the state lock so a blocked thread between its cancel
            // check and its park cannot miss the notify.
            drop(wake.state.lock());
            wake.not_empty.notify_all();
            wake.not_full.notify_all();
        });
        Self {
            inner: Arc::new(MailboxInner {
                name,
                capacity,
                policy,
                cancel,
                shared,
                obs,
                _waker: waker,
            }),
        }
    }

    /// Like [`Mailbox::recv`], additionally waking on `extra` (a caller's
    /// own token, e.g. a per-connection cancel distinct from the queue's).
    ///
    /// Registers a waker on `extra` for the duration of the call.
    pub fn recv_cancellable(&self, extra: &CancelToken) -> Result<T, MailboxRecvError> {
        // Fast path: same token as the one bound at construction — its
        // waker is already registered.
        let _guard = if extra.same(&self.inner.cancel) {
            None
        } else {
            let wake = self.inner.shared.clone();
            Some(extra.register_waker(move || {
                drop(wake.state.lock());
                wake.not_empty.notify_all();
                wake.not_full.notify_all();
            }))
        };
        match self.recv_inner(None, Some(extra)) {
            Ok(v) => Ok(v),
            Err(MailboxRecvTimeoutError::Closed) => Err(MailboxRecvError::Closed),
            Err(_) => Err(MailboxRecvError::Cancelled),
        }
    }
}

impl<T> Mailbox<T> {
    fn note_depth(&self, depth: usize) {
        if let Some(o) = &self.inner.obs {
            o.depth.set(depth as f64);
        }
    }

    fn note_drop(&self) {
        if let Some(o) = &self.inner.obs {
            o.dropped.inc();
            o.dropped_policy.inc();
        }
    }

    /// Enqueue `v`, applying the overflow policy when full. `Block`
    /// senders wake on space, close or cancellation.
    pub fn send(&self, v: T) -> Result<(), MailboxSendError<T>> {
        let sh = &self.inner.shared;
        let mut s = sh.state.lock();
        loop {
            if self.inner.cancel.is_cancelled() {
                return Err(MailboxSendError::Cancelled(v));
            }
            if s.closed {
                return Err(MailboxSendError::Closed(v));
            }
            if s.queue.len() < self.inner.capacity {
                s.queue.push_back(v);
                self.note_depth(s.queue.len());
                sh.not_empty.notify_one();
                return Ok(());
            }
            match self.inner.policy {
                OverflowPolicy::Block => sh.not_full.wait(&mut s),
                OverflowPolicy::DropOldest => {
                    s.queue.pop_front();
                    s.dropped += 1;
                    self.note_drop();
                    s.queue.push_back(v);
                    self.note_depth(s.queue.len());
                    sh.not_empty.notify_one();
                    return Ok(());
                }
                OverflowPolicy::Reject => {
                    s.dropped += 1;
                    self.note_drop();
                    return Err(MailboxSendError::Full(v));
                }
            }
        }
    }

    /// Enqueue `v` without ever blocking, regardless of the overflow
    /// policy: a full mailbox returns [`MailboxSendError::Full`] even under
    /// [`OverflowPolicy::Block`], and the caller keeps the item (it is not
    /// counted as dropped — the caller is expected to retry or shed).
    ///
    /// This exists for producers that must never park, such as the TCP
    /// reactor delivering inbound frames (§12): a full inbox becomes
    /// kernel-level backpressure on the link instead of a blocked reactor.
    pub fn try_send(&self, v: T) -> Result<(), MailboxSendError<T>> {
        let sh = &self.inner.shared;
        let mut s = sh.state.lock();
        if self.inner.cancel.is_cancelled() {
            return Err(MailboxSendError::Cancelled(v));
        }
        if s.closed {
            return Err(MailboxSendError::Closed(v));
        }
        if s.queue.len() < self.inner.capacity {
            s.queue.push_back(v);
            self.note_depth(s.queue.len());
            sh.not_empty.notify_one();
            Ok(())
        } else {
            Err(MailboxSendError::Full(v))
        }
    }

    fn recv_inner(
        &self,
        deadline: Option<Instant>,
        extra: Option<&CancelToken>,
    ) -> Result<T, MailboxRecvTimeoutError> {
        let sh = &self.inner.shared;
        let mut s = sh.state.lock();
        loop {
            if self.inner.cancel.is_cancelled() || extra.is_some_and(|c| c.is_cancelled()) {
                return Err(MailboxRecvTimeoutError::Cancelled);
            }
            if let Some(v) = s.queue.pop_front() {
                self.note_depth(s.queue.len());
                sh.not_full.notify_one();
                return Ok(v);
            }
            if s.closed {
                return Err(MailboxRecvTimeoutError::Closed);
            }
            match deadline {
                None => sh.not_empty.wait(&mut s),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(MailboxRecvTimeoutError::Timeout);
                    }
                    sh.not_empty.wait_for(&mut s, d - now);
                }
            }
        }
    }

    /// Block until an item arrives, the mailbox closes, or the bound
    /// token cancels.
    pub fn recv(&self) -> Result<T, MailboxRecvError> {
        match self.recv_inner(None, None) {
            Ok(v) => Ok(v),
            Err(MailboxRecvTimeoutError::Closed) => Err(MailboxRecvError::Closed),
            Err(_) => Err(MailboxRecvError::Cancelled),
        }
    }

    /// Like [`Mailbox::recv`] with a timeout.
    pub fn recv_timeout(&self, d: Duration) -> Result<T, MailboxRecvTimeoutError> {
        self.recv_inner(Some(Instant::now() + d), None)
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, MailboxTryRecvError> {
        let sh = &self.inner.shared;
        let mut s = sh.state.lock();
        if self.inner.cancel.is_cancelled() {
            return Err(MailboxTryRecvError::Cancelled);
        }
        if let Some(v) = s.queue.pop_front() {
            self.note_depth(s.queue.len());
            sh.not_full.notify_one();
            return Ok(v);
        }
        if s.closed {
            Err(MailboxTryRecvError::Closed)
        } else {
            Err(MailboxTryRecvError::Empty)
        }
    }

    /// Close the mailbox: senders fail immediately; receivers drain the
    /// remaining items, then observe `Closed` (mpsc disconnect semantics).
    pub fn close(&self) {
        let sh = &self.inner.shared;
        {
            let mut s = sh.state.lock();
            s.closed = true;
        }
        sh.not_empty.notify_all();
        sh.not_full.notify_all();
    }

    /// Whether [`Mailbox::close`] has been called on any handle.
    pub fn is_closed(&self) -> bool {
        self.inner.shared.state.lock().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.shared.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.inner.policy
    }

    /// Items discarded so far by `DropOldest` eviction or `Reject` refusal.
    pub fn dropped(&self) -> u64 {
        self.inner.shared.state.lock().dropped
    }

    /// The mailbox's metric-key name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The cancel token the mailbox was bound to at construction.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.inner.cancel
    }
}

// ---------------------------------------------------------------------------
// JoinScope
// ---------------------------------------------------------------------------

struct DoneFlag {
    done: Mutex<bool>,
    cv: Condvar,
}

impl DoneFlag {
    fn set(&self) {
        let mut g = self.done.lock();
        *g = true;
        self.cv.notify_all();
    }

    /// Wait until set or `deadline`; `true` when set.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut g = self.done.lock();
        loop {
            if *g {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cv.wait_for(&mut g, deadline - now);
        }
    }
}

struct ThreadSlot {
    name: String,
    done: Arc<DoneFlag>,
    handle: std::thread::JoinHandle<()>,
}

/// What went wrong while joining a scope: threads that outlived the
/// deadline, and panics harvested from threads that did exit.
#[derive(Debug)]
pub struct ScopeError {
    /// The scope's name.
    pub scope: String,
    /// Names of threads still running when the join deadline expired.
    pub hung: Vec<String>,
    /// `(thread name, panic message)` for every propagated panic.
    pub panics: Vec<(String, String)>,
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "join scope '{}' failed:", self.scope)?;
        if !self.hung.is_empty() {
            write!(f, " hung threads past deadline: {:?};", self.hung)?;
        }
        for (name, msg) in &self.panics {
            write!(f, " thread '{name}' panicked: {msg};")?;
        }
        Ok(())
    }
}

impl std::error::Error for ScopeError {}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ScopeObs {
    threads_active: Arc<Gauge>,
}

/// Owns a set of named threads tied to one [`CancelToken`].
///
/// [`JoinScope::join_all`] cancels the token, grants every thread a shared
/// deadline to exit, joins the finished ones (harvesting panics), and
/// reports the rest as hung — so a stuck thread is a loud [`ScopeError`],
/// never a silent futex park. Dropping the scope joins too, panicking on
/// error unless already unwinding.
pub struct JoinScope {
    name: String,
    cancel: CancelToken,
    deadline: Duration,
    slots: Mutex<Vec<ThreadSlot>>,
    obs: Option<ScopeObs>,
}

impl fmt::Debug for JoinScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinScope")
            .field("name", &self.name)
            .field("threads", &self.slots.lock().len())
            .finish()
    }
}

impl JoinScope {
    /// A scope named `name` (error messages only), cancelling via `cancel`,
    /// granting `deadline` for threads to exit at join time.
    pub fn new(name: impl Into<String>, cancel: CancelToken, deadline: Duration) -> Self {
        Self {
            name: name.into(),
            cancel,
            deadline,
            slots: Mutex::new(Vec::new()),
            obs: None,
        }
    }

    /// Like [`JoinScope::new`], additionally maintaining the
    /// `runtime.threads_active` gauge in `obs` (DESIGN.md §7). Pass the
    /// deployment registry so every scope shares one gauge.
    pub fn with_obs(
        name: impl Into<String>,
        cancel: CancelToken,
        deadline: Duration,
        obs: Option<&MetricsRegistry>,
    ) -> Self {
        let mut s = Self::new(name, cancel, deadline);
        s.obs = obs.map(|o| ScopeObs {
            threads_active: o.gauge(names::RUNTIME_THREADS_ACTIVE),
        });
        s
    }

    /// The scope's cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Threads currently owned (spawned and not yet joined).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the scope currently owns no threads.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Spawn a named thread into the scope. Returns an error only if the
    /// OS refuses to spawn. Spawning after cancellation is a no-op (the
    /// closure is dropped): the scope is already shutting down.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> std::io::Result<()> {
        let name = name.into();
        if self.cancel.is_cancelled() {
            return Ok(());
        }
        let done = Arc::new(DoneFlag {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let gauge = self.obs.as_ref().map(|o| o.threads_active.clone());
        if let Some(g) = &gauge {
            g.add(1.0);
        }
        let done2 = done.clone();
        let handle = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                // Runs even when `f` panics: keep the gauge honest and set the
                // done flag last, so a joiner observing it sees final state.
                struct Exit {
                    done: Arc<DoneFlag>,
                    gauge: Option<Arc<Gauge>>,
                }
                impl Drop for Exit {
                    fn drop(&mut self) {
                        if let Some(g) = &self.gauge {
                            g.add(-1.0);
                        }
                        self.done.set();
                    }
                }
                let _exit = Exit { done: done2, gauge };
                f();
            })?;
        self.slots.lock().push(ThreadSlot { name, done, handle });
        Ok(())
    }

    /// Cancel the token and join every owned thread: wait out the shared
    /// deadline, join finished threads (collecting panic payloads), and
    /// report the rest as hung. Idempotent; a join requested from inside
    /// one of the scope's own threads skips (detaches) the calling thread.
    pub fn join_all(&self) -> Result<(), ScopeError> {
        self.cancel.cancel();
        let slots: Vec<ThreadSlot> = std::mem::take(&mut *self.slots.lock());
        if slots.is_empty() {
            return Ok(());
        }
        let deadline = Instant::now() + self.deadline;
        let current = std::thread::current().id();
        let mut hung = Vec::new();
        let mut panics = Vec::new();
        for slot in slots {
            if slot.handle.thread().id() == current {
                // Shutdown invoked from one of our own threads (e.g. the
                // last task on a pool): it cannot join itself; detach.
                continue;
            }
            if slot.done.wait_until(deadline) {
                if let Err(p) = slot.handle.join() {
                    panics.push((slot.name, panic_message(p.as_ref())));
                }
            } else {
                hung.push(slot.name);
            }
        }
        if hung.is_empty() && panics.is_empty() {
            Ok(())
        } else {
            Err(ScopeError {
                scope: self.name.clone(),
                hung,
                panics,
            })
        }
    }

    /// [`JoinScope::join_all`], escalating any [`ScopeError`] into a panic
    /// — unless the thread is already unwinding, in which case the error
    /// is printed to stderr (a double panic would abort).
    pub fn finish(&self) {
        if let Err(e) = self.join_all() {
            if std::thread::panicking() {
                eprintln!("lifecycle: {e}");
            } else {
                panic!("{e}");
            }
        }
    }
}

impl Drop for JoinScope {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Ordered locks & the lock-order witness (DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Debug-build runtime witness backing the static lock-acquisition graph
/// (DESIGN.md §15).
///
/// Every [`OrderedMutex`] / [`OrderedRwLock`] acquisition consults a
/// thread-local stack of held ranks: acquiring a lock whose rank is not
/// strictly greater than every rank already held panics immediately —
/// *before* blocking, so the offending stack is the one reported — and
/// every `(held, acquired)` pair is recorded into a process-wide edge set
/// that the soak test diffs against `netagg-lint`'s static graph. In
/// release builds the wrappers compile down to the plain `parking_lot`
/// shims: no thread-local, no edge set, no rank check.
#[cfg(debug_assertions)]
mod witness {
    use crate::lock_order::LockRank;
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    struct Held {
        rank: u16,
        name: &'static str,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

    type EdgeSet = BTreeSet<(&'static str, &'static str)>;

    fn edges() -> &'static StdMutex<EdgeSet> {
        static EDGES: OnceLock<StdMutex<EdgeSet>> = OnceLock::new();
        EDGES.get_or_init(|| StdMutex::new(BTreeSet::new()))
    }

    fn poisoned() -> &'static StdMutex<Vec<&'static str>> {
        static POISONED: OnceLock<StdMutex<Vec<&'static str>>> = OnceLock::new();
        POISONED.get_or_init(|| StdMutex::new(Vec::new()))
    }

    pub(super) fn sink() -> &'static StdMutex<Option<netagg_obs::MetricsRegistry>> {
        static SINK: OnceLock<StdMutex<Option<netagg_obs::MetricsRegistry>>> = OnceLock::new();
        SINK.get_or_init(|| StdMutex::new(None))
    }

    /// Record the acquisition edges `held → rank` and enforce rank
    /// monotonicity. Runs *before* the real lock operation so a would-be
    /// deadlock panics with the offending stack instead of hanging.
    /// Non-blocking attempts (`try_lock`) record their edges but are
    /// exempt from the rank check — they cannot complete a deadlock cycle.
    pub(super) fn check(rank: LockRank, non_blocking: bool) {
        HELD.with(|h| {
            let h = h.borrow();
            if h.is_empty() {
                return;
            }
            {
                let mut e = edges().lock().unwrap_or_else(PoisonError::into_inner);
                for held in h.iter() {
                    e.insert((held.name, rank.name));
                }
            }
            if non_blocking || std::thread::panicking() {
                return;
            }
            if let Some(max) = h.iter().max_by_key(|x| x.rank) {
                if rank.rank <= max.rank {
                    let stack: Vec<&str> = h.iter().map(|x| x.name).collect();
                    panic!(
                        "lock-order violation: acquiring '{}' (rank {}) while \
                         holding '{}' (rank {}); held stack: {:?} — the \
                         acquisition order is DESIGN.md §15's rank order",
                        rank.name, rank.rank, max.name, max.rank, stack
                    );
                }
            }
        });
    }

    /// Push a successfully acquired lock onto the held stack; the
    /// returned token pops it (in any order — guards may outlive
    /// later-acquired ones) when dropped.
    pub(super) fn acquired(rank: LockRank) -> HeldToken {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| {
            h.borrow_mut().push(Held {
                rank: rank.rank,
                name: rank.name,
                token,
            })
        });
        HeldToken {
            token,
            name: rank.name,
        }
    }

    /// RAII member of every ordered guard; declared *after* the inner
    /// guard so the real lock is released before the stack pops.
    pub(super) struct HeldToken {
        token: u64,
        name: &'static str,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(i) = h.iter().rposition(|x| x.token == self.token) {
                    h.remove(i);
                }
            });
            if std::thread::panicking() {
                // The holder is unwinding: the shim lock never poisons
                // (§15 witness protocol), so surface the event for the
                // observability plane instead of cascading the panic.
                poisoned()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(self.name);
                let sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(obs) = sink.as_ref() {
                    obs.emit(
                        netagg_obs::names::EVENT_LOCK_POISON,
                        format!(
                            "lock '{}' released during a panic unwind; \
                             state may be mid-update",
                            self.name
                        ),
                    );
                }
            }
        }
    }

    pub(super) fn snapshot_edges() -> Vec<(String, String)> {
        edges()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    pub(super) fn reset() {
        edges()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        poisoned()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    pub(super) fn snapshot_poisoned() -> Vec<String> {
        poisoned()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

/// Release-build witness: zero-cost no-ops so [`OrderedMutex`] and
/// [`OrderedRwLock`] are exactly the `parking_lot` shims.
#[cfg(not(debug_assertions))]
mod witness {
    use crate::lock_order::LockRank;

    #[inline(always)]
    pub(super) fn check(_rank: LockRank, _non_blocking: bool) {}

    pub(super) struct HeldToken;

    #[inline(always)]
    pub(super) fn acquired(_rank: LockRank) -> HeldToken {
        HeldToken
    }
}

/// Every `(held, acquired)` lock pair observed by the witness since
/// process start (or the last [`witness_reset`]). Debug builds only;
/// release builds return an empty set.
pub fn witness_edges() -> Vec<(String, String)> {
    #[cfg(debug_assertions)]
    {
        witness::snapshot_edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Clear the witness edge set and poison log (test isolation).
pub fn witness_reset() {
    #[cfg(debug_assertions)]
    witness::reset();
}

/// Registry names of locks whose holder panicked while the guard was
/// live. Debug builds only.
pub fn poisoned_locks() -> Vec<String> {
    #[cfg(debug_assertions)]
    {
        witness::snapshot_poisoned()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Attach the registry that receives a `lock_poison` structured event
/// (§7) whenever an ordered guard is dropped during a panic unwind.
/// No-op in release builds.
pub fn set_poison_sink(obs: &MetricsRegistry) {
    #[cfg(debug_assertions)]
    {
        use std::sync::PoisonError;
        *witness::sink()
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(obs.clone());
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = obs;
    }
}

/// A [`Mutex`] with a static position in the global acquisition order
/// (DESIGN.md §15).
///
/// Debug builds enforce the order at runtime via the witness; release
/// builds are a zero-cost wrapper. Like the `parking_lot` shim it never
/// poisons — a panicked holder's partial update stays visible, surfaced
/// as a `lock_poison` event rather than a poisoned `Result`.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create an ordered mutex at `rank` protecting `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire the lock. Debug builds panic on a rank inversion *before*
    /// blocking.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        witness::check(self.rank, false);
        let guard = self.inner.lock();
        OrderedMutexGuard {
            guard,
            _held: witness::acquired(self.rank),
        }
    }

    /// Try to acquire the lock without blocking. Exempt from the rank
    /// check (a non-blocking attempt cannot complete a deadlock cycle),
    /// but the attempted edge is still recorded.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        witness::check(self.rank, true);
        let guard = self.inner.try_lock()?;
        Some(OrderedMutexGuard {
            guard,
            _held: witness::acquired(self.rank),
        })
    }

    /// This lock's static rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`OrderedMutex::lock`]. Field order matters:
/// the inner guard releases the lock before `_held` pops the witness
/// stack.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: parking_lot::MutexGuard<'a, T>,
    _held: witness::HeldToken,
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    /// The underlying shim guard, for [`Condvar`] waits
    /// (`cv.wait(guard.inner())`). The wait releases and reacquires the
    /// same lock, so the witness stack entry stays valid across it.
    pub fn inner(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An [`RwLock`](parking_lot::RwLock) with a static position in the
/// global acquisition order (DESIGN.md §15). Readers and writers share
/// one rank: even a shared read must respect the global order, because a
/// blocked writer makes readers wait on each other transitively.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create an ordered rwlock at `rank` protecting `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquire a shared read guard (rank-checked like a write).
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        witness::check(self.rank, false);
        let guard = self.inner.read();
        OrderedRwLockReadGuard {
            guard,
            _held: witness::acquired(self.rank),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        witness::check(self.rank, false);
        let guard = self.inner.write();
        OrderedRwLockWriteGuard {
            guard,
            _held: witness::acquired(self.rank),
        }
    }

    /// This lock's static rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared-read guard returned by [`OrderedRwLock::read`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockReadGuard<'a, T>,
    _held: witness::HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII exclusive-write guard returned by [`OrderedRwLock::write`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    _held: witness::HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn cancel_wakes_blocked_recv_immediately() {
        let cancel = CancelToken::new();
        let mb: Mailbox<u32> = Mailbox::new("t", 4, OverflowPolicy::Block, cancel.clone());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            let r = mb2.recv();
            (r, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        cancel.cancel();
        let (r, _) = h.join().unwrap();
        assert_eq!(r, Err(MailboxRecvError::Cancelled));
        assert!(
            t0.elapsed() < Duration::from_millis(80),
            "cancel must wake the receiver, not wait for a poll tick"
        );
    }

    #[test]
    fn cancel_wins_over_queued_data() {
        let cancel = CancelToken::new();
        let mb: Mailbox<u32> = Mailbox::new("t", 4, OverflowPolicy::Block, cancel.clone());
        mb.send(1).unwrap();
        cancel.cancel();
        assert_eq!(mb.recv(), Err(MailboxRecvError::Cancelled));
    }

    #[test]
    fn drop_oldest_keeps_exactly_the_last_capacity_items() {
        let mb: Mailbox<u32> = Mailbox::new("t", 8, OverflowPolicy::DropOldest, CancelToken::new());
        for i in 0..20 {
            mb.send(i).unwrap();
        }
        assert_eq!(mb.dropped(), 12);
        let got: Vec<u32> = std::iter::from_fn(|| mb.try_recv().ok()).collect();
        assert_eq!(got, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn reject_refuses_and_counts() {
        let mb: Mailbox<u32> = Mailbox::new("t", 2, OverflowPolicy::Reject, CancelToken::new());
        mb.send(1).unwrap();
        mb.send(2).unwrap();
        assert_eq!(mb.send(3), Err(MailboxSendError::Full(3)));
        assert_eq!(mb.dropped(), 1);
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn try_send_never_blocks_and_keeps_the_item() {
        let mb: Mailbox<u32> = Mailbox::new("t", 2, OverflowPolicy::Block, CancelToken::new());
        mb.try_send(1).unwrap();
        mb.try_send(2).unwrap();
        // Block policy would park here; try_send must hand the item back.
        assert_eq!(mb.try_send(3), Err(MailboxSendError::Full(3)));
        assert_eq!(mb.dropped(), 0, "a refused try_send is not a drop");
        mb.close();
        assert_eq!(mb.try_send(4), Err(MailboxSendError::Closed(4)));
        assert_eq!(mb.recv().unwrap(), 1);
    }

    #[test]
    fn nested_mailbox_drop_does_not_deadlock_the_waker_table() {
        // A queued item that itself owns a mailbox on the same token:
        // dropping the outer mailbox's last handle drops the queue from
        // inside WakerGuard teardown, which unregisters the inner
        // mailbox's waker on the same (non-reentrant) table lock. This
        // deadlocked before unregistration moved the waker drop outside
        // the lock — the TCP reactor's accept queue has exactly this
        // shape (queued connections own their inbox mailboxes).
        let cancel = CancelToken::new();
        let outer: Mailbox<Mailbox<u32>> =
            Mailbox::new("outer", 4, OverflowPolicy::Block, cancel.clone());
        let inner: Mailbox<u32> = Mailbox::new("inner", 4, OverflowPolicy::Block, cancel.clone());
        outer.send(inner).unwrap();
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        let h = std::thread::spawn(move || {
            drop(outer); // last handle: queue (and inner mailbox) drop here
            flag.store(true, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(2);
        while !done.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "nested mailbox drop deadlocked");
            std::thread::sleep(Duration::from_millis(5));
        }
        h.join().unwrap();
    }

    #[test]
    fn block_sender_unblocks_on_recv_and_fails_on_close() {
        let mb: Mailbox<u32> = Mailbox::new("t", 1, OverflowPolicy::Block, CancelToken::new());
        mb.send(1).unwrap();
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || mb2.send(2));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mb.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), Ok(()));
        // A sender blocked on a full mailbox observes close promptly.
        let mb3 = mb.clone();
        let h = std::thread::spawn(move || mb3.send(3));
        std::thread::sleep(Duration::from_millis(30));
        mb.close();
        assert!(matches!(
            h.join().unwrap(),
            Err(MailboxSendError::Closed(3))
        ));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let mb: Mailbox<u32> = Mailbox::new("t", 4, OverflowPolicy::Block, CancelToken::new());
        mb.send(7).unwrap();
        mb.close();
        assert_eq!(mb.recv(), Ok(7));
        assert_eq!(mb.recv(), Err(MailboxRecvError::Closed));
    }

    #[test]
    fn recv_cancellable_wakes_on_foreign_token() {
        let mb: Mailbox<u32> = Mailbox::new("t", 4, OverflowPolicy::Block, CancelToken::new());
        let conn_cancel = CancelToken::new();
        let mb2 = mb.clone();
        let c2 = conn_cancel.clone();
        let h = std::thread::spawn(move || mb2.recv_cancellable(&c2));
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        conn_cancel.cancel();
        assert_eq!(h.join().unwrap(), Err(MailboxRecvError::Cancelled));
        assert!(t0.elapsed() < Duration::from_millis(80));
    }

    #[test]
    fn wait_timeout_wakes_early_on_cancel() {
        let cancel = CancelToken::new();
        let c2 = cancel.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            let cancelled = c2.wait_timeout(Duration::from_secs(10));
            (cancelled, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        cancel.cancel();
        let (cancelled, waited) = h.join().unwrap();
        assert!(cancelled);
        assert!(waited < Duration::from_millis(500));
    }

    #[test]
    fn join_scope_joins_and_propagates_panics() {
        let scope = JoinScope::new("test", CancelToken::new(), Duration::from_secs(2));
        let n = Arc::new(AtomicUsize::new(0));
        for i in 0..3 {
            let n2 = n.clone();
            scope
                .spawn(format!("worker-{i}"), move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        scope
            .spawn("boom", || panic!("deliberate test panic"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let err = scope.join_all().expect_err("panic must propagate");
        assert_eq!(n.load(Ordering::SeqCst), 3);
        assert!(err.hung.is_empty());
        assert_eq!(err.panics.len(), 1);
        assert_eq!(err.panics[0].0, "boom");
        assert!(err.panics[0].1.contains("deliberate test panic"));
        // Idempotent: slots were drained, second join is clean.
        assert!(scope.join_all().is_ok());
    }

    #[test]
    fn join_scope_flags_hung_threads_at_deadline() {
        let scope = JoinScope::new("test", CancelToken::new(), Duration::from_millis(100));
        scope
            .spawn("sleeper", || std::thread::sleep(Duration::from_millis(600)))
            .unwrap();
        let t0 = Instant::now();
        let err = scope.join_all().expect_err("sleeper outlives deadline");
        assert!(t0.elapsed() < Duration::from_millis(500));
        assert_eq!(err.hung, vec!["sleeper".to_string()]);
        // Let the detached sleeper finish before the test process exits.
        std::thread::sleep(Duration::from_millis(600));
    }

    #[test]
    fn join_scope_cancel_token_stops_workers() {
        let cancel = CancelToken::new();
        let scope = JoinScope::new("test", cancel.clone(), Duration::from_secs(2));
        let mb: Mailbox<u32> = Mailbox::new("t", 4, OverflowPolicy::Block, cancel.clone());
        let mb2 = mb.clone();
        scope
            .spawn("pump", move || while mb2.recv().is_ok() {})
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        scope.join_all().unwrap();
    }

    #[test]
    fn spawn_after_cancel_is_a_noop() {
        let cancel = CancelToken::new();
        let scope = JoinScope::new("test", cancel.clone(), Duration::from_secs(1));
        cancel.cancel();
        scope.spawn("late", || {}).unwrap();
        assert!(scope.is_empty());
    }

    #[test]
    fn mailbox_obs_publishes_depth_and_drops() {
        let obs = MetricsRegistry::new();
        let cancel = CancelToken::new();
        let mb: Mailbox<u32> =
            Mailbox::with_obs("egress", 2, OverflowPolicy::DropOldest, cancel, &obs);
        mb.send(1).unwrap();
        mb.send(2).unwrap();
        mb.send(3).unwrap();
        assert_eq!(obs.gauge("mailbox.depth.egress").get(), 2.0);
        assert_eq!(obs.counter("mailbox.dropped.egress").get(), 1);
        assert_eq!(obs.counter("mailbox.dropped.drop_oldest").get(), 1);
    }
}
