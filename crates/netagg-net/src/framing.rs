//! Length-prefixed binary framing over zero-copy byte chunks.
//!
//! Frames are `u32` big-endian length followed by the payload. The decoder
//! is an incremental state machine: feed it arbitrary byte chunks, pull
//! complete frames out. This is the role KryoNet's framing plays in the
//! paper's Java prototype.
//!
//! Buffering is a deque of shared [`Bytes`] chunks rather than one
//! contiguous buffer: [`FrameDecoder::feed_bytes`] takes ownership of a
//! chunk without copying, and a frame that lies wholly inside one chunk is
//! returned as a [`Bytes::slice`] window of it — the common case for the
//! TCP reactor (§12), which reads many coalesced frames per syscall into
//! one chunk and hands each out as a view. Only frames spanning a chunk
//! boundary are reassembled by copying.

use crate::transport::NetError;
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::VecDeque;

/// Maximum payload size of one frame (64 MiB). Larger application payloads
/// must be chunked (the shim layers chunk partial results anyway).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Append one frame (length prefix + payload) to `dst`.
pub fn encode_frame(payload: &[u8], dst: &mut BytesMut) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge(payload.len()));
    }
    dst.reserve(4 + payload.len());
    dst.put_u32(payload.len() as u32);
    dst.put_slice(payload);
    Ok(())
}

/// Incremental frame decoder over shared byte chunks.
#[derive(Debug)]
pub struct FrameDecoder {
    chunks: VecDeque<Bytes>,
    buffered: usize,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::with_max(MAX_FRAME)
    }
}

impl FrameDecoder {
    /// Create an empty decoder enforcing [`MAX_FRAME`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty decoder with a custom frame-size limit. The TCP
    /// reactor uses this to grant its mux records a few bytes of header
    /// headroom above the application's [`MAX_FRAME`] payload bound.
    pub fn with_max(max_frame: usize) -> Self {
        Self {
            chunks: VecDeque::new(),
            buffered: 0,
            max_frame,
        }
    }

    /// Append raw bytes received from the wire (copies once into a fresh
    /// chunk; prefer [`FrameDecoder::feed_bytes`] when a [`Bytes`] is
    /// already at hand).
    pub fn feed(&mut self, data: &[u8]) {
        if !data.is_empty() {
            self.feed_bytes(Bytes::copy_from_slice(data));
        }
    }

    /// Append an owned chunk without copying.
    pub fn feed_bytes(&mut self, data: Bytes) {
        if !data.is_empty() {
            self.buffered += data.len();
            self.chunks.push_back(data);
        }
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buffered
    }

    /// Pop the next complete frame, if any.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, NetError> {
        if self.buffered < 4 {
            return Ok(None);
        }
        let mut hdr = [0u8; 4];
        self.peek(&mut hdr);
        let len = u32::from_be_bytes(hdr) as usize;
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge(len));
        }
        if self.buffered < 4 + len {
            return Ok(None);
        }
        self.discard(4);
        Ok(Some(self.take(len)))
    }

    /// Copy the first `out.len()` buffered bytes into `out` without
    /// consuming them. Caller guarantees enough bytes are buffered.
    fn peek(&self, out: &mut [u8]) {
        let mut filled = 0;
        for chunk in &self.chunks {
            if filled == out.len() {
                break;
            }
            let n = (out.len() - filled).min(chunk.len());
            out[filled..filled + n].copy_from_slice(&chunk[..n]);
            filled += n;
        }
        debug_assert_eq!(filled, out.len());
    }

    /// Drop `n` buffered bytes. Caller guarantees they are present.
    fn discard(&mut self, mut n: usize) {
        self.buffered -= n;
        while n > 0 {
            let front = self.chunks.front_mut().expect("discard past buffer");
            if front.len() > n {
                let _ = front.split_to(n);
                return;
            }
            n -= front.len();
            self.chunks.pop_front();
        }
    }

    /// Consume `n` buffered bytes as one frame. Zero-copy when the frame
    /// lies inside the front chunk; reassembled otherwise.
    fn take(&mut self, n: usize) -> Bytes {
        if n == 0 {
            return Bytes::new();
        }
        self.buffered -= n;
        let front = self.chunks.front_mut().expect("take past buffer");
        if front.len() >= n {
            let out = front.split_to(n);
            if front.is_empty() {
                self.chunks.pop_front();
            }
            return out;
        }
        // Spans chunks: reassemble by copying.
        let mut buf = BytesMut::with_capacity(n);
        let mut need = n;
        while need > 0 {
            let front = self.chunks.front_mut().expect("take past buffer");
            if front.len() > need {
                buf.extend_from_slice(&front.split_to(need));
                need = 0;
            } else {
                need -= front.len();
                buf.extend_from_slice(front);
                self.chunks.pop_front();
            }
        }
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = BytesMut::new();
        encode_frame(b"hello", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn handles_fragmented_input() {
        let mut buf = BytesMut::new();
        encode_frame(b"fragmented-payload", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time.
        for b in buf.iter() {
            dec.feed(&[*b]);
        }
        assert_eq!(
            dec.next_frame().unwrap().unwrap().as_ref(),
            b"fragmented-payload"
        );
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut buf = BytesMut::new();
        for i in 0..10u8 {
            encode_frame(&[i; 3], &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        for i in 0..10u8 {
            assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &[i; 3]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut buf = BytesMut::new();
        encode_frame(b"", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_on_encode() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut buf = BytesMut::new();
        assert!(matches!(
            encode_frame(&huge, &mut buf),
            Err(NetError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_on_decode() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(NetError::FrameTooLarge(_))));
    }

    #[test]
    fn custom_limit_grants_header_headroom() {
        let mut dec = FrameDecoder::with_max(MAX_FRAME + 16);
        dec.feed(&(MAX_FRAME as u32 + 16).to_be_bytes());
        // Within the raised limit: incomplete, not an error.
        assert!(dec.next_frame().unwrap().is_none());
        let mut dec = FrameDecoder::with_max(MAX_FRAME + 16);
        dec.feed(&(MAX_FRAME as u32 + 17).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(NetError::FrameTooLarge(_))));
    }

    #[test]
    fn frame_within_one_chunk_shares_the_allocation() {
        // Two frames coalesced into one fed chunk: both must come back as
        // windows of that chunk (zero-copy), which the shim Bytes exposes
        // as pointer-equal backing slices.
        let mut buf = BytesMut::new();
        encode_frame(b"first", &mut buf).unwrap();
        encode_frame(b"second", &mut buf).unwrap();
        let chunk = buf.freeze();
        let backing = chunk.as_ref().as_ptr() as usize;
        let mut dec = FrameDecoder::new();
        dec.feed_bytes(chunk);
        let f1 = dec.next_frame().unwrap().unwrap();
        let f2 = dec.next_frame().unwrap().unwrap();
        assert_eq!(f1.as_ref(), b"first");
        assert_eq!(f2.as_ref(), b"second");
        let inside = |b: &Bytes| {
            let p = b.as_ref().as_ptr() as usize;
            p >= backing && p < backing + 4 + 5 + 4 + 6
        };
        assert!(
            inside(&f1) && inside(&f2),
            "frames must share the fed chunk"
        );
    }

    #[test]
    fn frame_spanning_chunks_reassembles() {
        let mut buf = BytesMut::new();
        let payload: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        encode_frame(&payload, &mut buf).unwrap();
        let whole = buf.freeze();
        let mut dec = FrameDecoder::new();
        // Split mid-payload into three owned chunks.
        dec.feed_bytes(whole.slice(..300));
        dec.feed_bytes(whole.slice(300..700));
        assert!(dec.next_frame().unwrap().is_none());
        dec.feed_bytes(whole.slice(700..));
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &payload[..]);
        assert_eq!(dec.pending(), 0);
    }
}
