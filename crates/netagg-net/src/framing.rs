//! Length-prefixed binary framing.
//!
//! Frames are `u32` big-endian length followed by the payload. The decoder
//! is an incremental state machine: feed it arbitrary byte chunks, pull
//! complete frames out. This is the role KryoNet's framing plays in the
//! paper's Java prototype.

use crate::transport::NetError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum payload size of one frame (64 MiB). Larger application payloads
/// must be chunked (the shim layers chunk partial results anyway).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Append one frame (length prefix + payload) to `dst`.
pub fn encode_frame(payload: &[u8], dst: &mut BytesMut) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME {
        return Err(NetError::FrameTooLarge(payload.len()));
    }
    dst.reserve(4 + payload.len());
    dst.put_u32(payload.len() as u32);
    dst.put_slice(payload);
    Ok(())
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes received from the wire.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if any.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = BytesMut::new();
        encode_frame(b"hello", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn handles_fragmented_input() {
        let mut buf = BytesMut::new();
        encode_frame(b"fragmented-payload", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time.
        for b in buf.iter() {
            dec.feed(&[*b]);
        }
        assert_eq!(
            dec.next_frame().unwrap().unwrap().as_ref(),
            b"fragmented-payload"
        );
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut buf = BytesMut::new();
        for i in 0..10u8 {
            encode_frame(&[i; 3], &mut buf).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        for i in 0..10u8 {
            assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &[i; 3]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut buf = BytesMut::new();
        encode_frame(b"", &mut buf).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&buf);
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_on_encode() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut buf = BytesMut::new();
        assert!(matches!(
            encode_frame(&huge, &mut buf),
            Err(NetError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn oversized_frame_is_rejected_on_decode() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(dec.next_frame(), Err(NetError::FrameTooLarge(_))));
    }
}
