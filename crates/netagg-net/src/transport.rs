//! Transport abstraction: blocking, message-oriented connections between
//! logical nodes.
//!
//! All higher layers (agg boxes, shim layers, the applications) are written
//! against these traits, so the same deployment runs unchanged over the
//! in-process channel transport, the rate-limited emulated network, or real
//! TCP loopback sockets.

use crate::lifecycle::CancelToken;
use bytes::Bytes;
use netagg_obs::MetricsRegistry;
use std::fmt;
use std::time::Duration;

/// Poll granularity of the default `*_cancellable` implementations, for
/// transports without a wakeable queue. Both built-in transports override
/// it with a true wakeup: the channel transport blocks on mailboxes, and
/// the TCP transport's reactor (DESIGN.md §12) delivers inbound frames
/// into per-connection mailboxes, so its receives are wakeable too.
pub const CANCEL_POLL: Duration = Duration::from_millis(20);

/// Logical address of a node (server, agg box, client).
pub type NodeId = u32;

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer closed the connection or is gone.
    Closed,
    /// A timed receive elapsed without a message.
    Timeout,
    /// No node is bound at the address.
    NotFound(NodeId),
    /// The address is already bound.
    AlreadyBound(NodeId),
    /// Underlying I/O error (TCP transport).
    Io(String),
    /// A frame exceeded [`crate::framing::MAX_FRAME`].
    FrameTooLarge(usize),
    /// Malformed bytes on the wire.
    Corrupt(String),
    /// A fault injector rejected the operation.
    Injected(&'static str),
    /// A [`CancelToken`] fired while the operation was blocked (shutdown).
    Cancelled,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::NotFound(n) => write!(f, "no node bound at address {n}"),
            NetError::AlreadyBound(n) => write!(f, "address {n} already bound"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            NetError::Injected(what) => write!(f, "injected fault: {what}"),
            NetError::Cancelled => write!(f, "operation cancelled by shutdown"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io(e.to_string()),
        }
    }
}

/// A bidirectional, message-oriented connection. `send` may block for
/// back-pressure or rate limiting; `recv` blocks until a message arrives or
/// the peer closes.
pub trait Connection: Send {
    /// Send one message (may block for back-pressure or rate limiting).
    fn send(&mut self, payload: Bytes) -> Result<(), NetError>;
    /// Receive the next message, blocking until one arrives.
    fn recv(&mut self) -> Result<Bytes, NetError>;
    /// Receive with a deadline; [`NetError::Timeout`] when it elapses.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError>;
    /// Receive, returning [`NetError::Cancelled`] promptly once `cancel`
    /// fires. The default implementation polls at [`CANCEL_POLL`];
    /// transports with wakeable queues override it with a true wakeup.
    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        loop {
            if cancel.is_cancelled() {
                return Err(NetError::Cancelled);
            }
            // netagg-lint: allow(no-poll-shutdown) documented 20 ms fallback for transports without native wakeups (§9 invariant 1)
            match self.recv_timeout(CANCEL_POLL) {
                Err(NetError::Timeout) => continue,
                other => return other,
            }
        }
    }
    /// Address of the remote end.
    fn peer(&self) -> NodeId;
}

/// Accepts inbound connections at a bound address.
pub trait Listener: Send {
    /// Accept the next inbound connection, blocking until one arrives.
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError>;
    /// Accept with a deadline; [`NetError::Timeout`] when it elapses.
    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError>;
    /// Accept, returning [`NetError::Cancelled`] promptly once `cancel`
    /// fires. Default implementation polls at [`CANCEL_POLL`].
    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        loop {
            if cancel.is_cancelled() {
                return Err(NetError::Cancelled);
            }
            // netagg-lint: allow(no-poll-shutdown) documented 20 ms fallback for transports without native wakeups (§9 invariant 1)
            match self.accept_timeout(CANCEL_POLL) {
                Err(NetError::Timeout) => continue,
                other => return other,
            }
        }
    }
}

/// A factory for listeners and outbound connections.
pub trait Transport: Send + Sync {
    /// Bind a listener at `local`. Each address may be bound once.
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError>;
    /// Open a connection from `local` to `peer` (which must be bound).
    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError>;
    /// Attach a metrics registry for transport-internal instrumentation
    /// (reactor thread counts, batching counters — DESIGN.md §7
    /// `net.tcp.*`). The runtime calls this once, before the first
    /// `bind`/`connect`; transports without internal threads ignore it.
    /// Decorator transports forward it to their inner transport.
    fn attach_obs(&self, _obs: &MetricsRegistry) {}
}

/// A shared transport is itself a transport, so decorators written over a
/// generic `T: Transport` (fault injection, metering) compose with the
/// type-erased `Arc<dyn Transport>` handles that scenario providers and
/// deployments pass around.
impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        (**self).bind(local)
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        (**self).connect(local, peer)
    }

    fn attach_obs(&self, obs: &MetricsRegistry) {
        (**self).attach_obs(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(NetError::NotFound(7).to_string().contains('7'));
        assert!(NetError::FrameTooLarge(99).to_string().contains("99"));
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, "x");
        assert_eq!(NetError::from(io), NetError::Timeout);
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "x");
        assert_eq!(NetError::from(eof), NetError::Closed);
    }
}
