//! Fault injection: kill endpoints and delay messages.
//!
//! Wraps any [`Transport`]. Killing a node makes every connection touching
//! it fail with [`NetError::Injected`], which is how the failure-recovery
//! experiments simulate an agg-box crash; per-node delays simulate
//! stragglers.

use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Shared controller used to inject faults at runtime.
#[derive(Clone, Default)]
pub struct FaultController {
    dead: Arc<RwLock<HashSet<NodeId>>>,
    delay: Arc<RwLock<HashMap<NodeId, Duration>>>,
}

impl FaultController {
    /// Create a controller with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill a node: all of its present and future traffic fails.
    pub fn kill(&self, node: NodeId) {
        self.dead.write().insert(node);
    }

    /// Revive a previously killed node (new connections succeed again).
    pub fn revive(&self, node: NodeId) {
        self.dead.write().remove(&node);
    }

    /// Whether `node` is currently killed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.read().contains(&node)
    }

    /// Add a fixed per-message send delay for a node (straggler injection).
    pub fn delay(&self, node: NodeId, d: Duration) {
        self.delay.write().insert(node, d);
    }

    /// Remove a node's send delay.
    pub fn clear_delay(&self, node: NodeId) {
        self.delay.write().remove(&node);
    }

    fn delay_of(&self, node: NodeId) -> Option<Duration> {
        self.delay.read().get(&node).copied()
    }
}

/// A transport wrapper that consults a [`FaultController`].
pub struct FaultTransport<T: Transport> {
    inner: T,
    ctl: FaultController,
}

impl<T: Transport> FaultTransport<T> {
    /// Wrap `inner` so it consults `ctl` on every operation.
    pub fn new(inner: T, ctl: FaultController) -> Self {
        Self { inner, ctl }
    }

    /// Handle for injecting faults at runtime.
    pub fn controller(&self) -> FaultController {
        self.ctl.clone()
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        if self.ctl.is_dead(local) {
            return Err(NetError::Injected("bind on dead node"));
        }
        let inner = self.inner.bind(local)?;
        Ok(Box::new(FaultListener {
            inner,
            local,
            ctl: self.ctl.clone(),
        }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        if self.ctl.is_dead(local) || self.ctl.is_dead(peer) {
            return Err(NetError::Injected("connect to/from dead node"));
        }
        let inner = self.inner.connect(local, peer)?;
        Ok(Box::new(FaultConnection {
            inner,
            local,
            ctl: self.ctl.clone(),
        }))
    }
}

struct FaultListener {
    inner: Box<dyn Listener>,
    local: NodeId,
    ctl: FaultController,
}

impl FaultListener {
    fn wrap(&self, c: Box<dyn Connection>) -> Result<Box<dyn Connection>, NetError> {
        if self.ctl.is_dead(self.local) {
            return Err(NetError::Injected("accept on dead node"));
        }
        Ok(Box::new(FaultConnection {
            inner: c,
            local: self.local,
            ctl: self.ctl.clone(),
        }))
    }
}

impl Listener for FaultListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept()?;
        self.wrap(c)
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept_timeout(timeout)?;
        self.wrap(c)
    }
}

struct FaultConnection {
    inner: Box<dyn Connection>,
    local: NodeId,
    ctl: FaultController,
}

impl FaultConnection {
    fn check(&self) -> Result<(), NetError> {
        if self.ctl.is_dead(self.local) || self.ctl.is_dead(self.inner.peer()) {
            Err(NetError::Injected("endpoint dead"))
        } else {
            Ok(())
        }
    }
}

impl Connection for FaultConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        self.check()?;
        if let Some(d) = self.ctl.delay_of(self.local) {
            std::thread::sleep(d);
        }
        self.inner.send(payload)
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        // Poll so a node killed mid-recv unblocks promptly.
        loop {
            self.check()?;
            match self.inner.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        self.check()?;
        let r = self.inner.recv_timeout(timeout);
        self.check()?;
        r
    }

    fn peer(&self) -> NodeId {
        self.inner.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelTransport;
    use std::thread;

    fn setup() -> (FaultTransport<ChannelTransport>, FaultController) {
        let ctl = FaultController::new();
        let t = FaultTransport::new(ChannelTransport::new(), ctl.clone());
        (t, ctl)
    }

    #[test]
    fn kill_blocks_new_connections() {
        let (t, ctl) = setup();
        let _l = t.bind(1).unwrap();
        ctl.kill(1);
        assert!(matches!(t.connect(2, 1), Err(NetError::Injected(_))));
        ctl.revive(1);
        assert!(t.connect(2, 1).is_ok());
    }

    #[test]
    fn kill_fails_existing_connections() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        c.send(Bytes::from_static(b"ok")).unwrap();
        server.recv().unwrap();
        ctl.kill(1);
        assert!(matches!(c.send(Bytes::from_static(b"x")), Err(NetError::Injected(_))));
    }

    #[test]
    fn kill_unblocks_pending_recv() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let _c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        let h = thread::spawn(move || server.recv());
        thread::sleep(Duration::from_millis(30));
        ctl.kill(2);
        let r = h.join().unwrap();
        assert!(matches!(r, Err(NetError::Injected(_))), "{r:?}");
    }

    #[test]
    fn delay_slows_sends() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        ctl.delay(2, Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        c.send(Bytes::from_static(b"slow")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        ctl.clear_delay(2);
        let t1 = std::time::Instant::now();
        c.send(Bytes::from_static(b"fast")).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(20));
    }
}
