//! Fault injection: kill endpoints, delay messages, and fire
//! deterministic fault schedules.
//!
//! Wraps any [`Transport`]. Killing a node makes every connection touching
//! it fail with [`NetError::Injected`], which is how the failure-recovery
//! experiments simulate an agg-box crash; per-node delays simulate
//! stragglers. A [`FaultStep`] schedule kills a node at an exact point in
//! the message flow (after the Nth frame delivered to a watched node), so
//! recovery tests can reproduce precise kill timings from a seed instead
//! of relying on sleeps.

use crate::lifecycle::CancelToken;
use crate::transport::{Connection, Listener, NetError, NodeId, Transport};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// One step of a deterministic fault schedule: once `after_frames` frames
/// have been delivered to `watch` (across all connections of the wrapping
/// [`FaultTransport`]), kill `kill_target`. The kill fires *after* the
/// Nth frame is through, so the frame itself is delivered.
///
/// Frame counts include every message type on the wire — heartbeats,
/// redirects and replays as well as data — which is exactly the point:
/// sweeping `after_frames` from a seeded RNG exercises kills at arbitrary
/// protocol moments, and recovery must be correct for all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStep {
    /// Node whose delivered-frame count triggers the step.
    pub watch: NodeId,
    /// Fire after this many frames have been delivered to `watch`.
    pub after_frames: u64,
    /// Node to kill when the step fires.
    pub kill_target: NodeId,
}

/// Shared controller used to inject faults at runtime.
#[derive(Clone, Default)]
pub struct FaultController {
    dead: Arc<RwLock<HashSet<NodeId>>>,
    delay: Arc<RwLock<HashMap<NodeId, Duration>>>,
    frames: Arc<RwLock<HashMap<NodeId, u64>>>,
    schedule: Arc<RwLock<Vec<FaultStep>>>,
}

impl FaultController {
    /// Create a controller with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill a node: all of its present and future traffic fails.
    pub fn kill(&self, node: NodeId) {
        self.dead.write().insert(node);
    }

    /// Revive a previously killed node (new connections succeed again).
    pub fn revive(&self, node: NodeId) {
        self.dead.write().remove(&node);
    }

    /// Whether `node` is currently killed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.read().contains(&node)
    }

    /// Add a fixed per-message send delay for a node (straggler injection).
    pub fn delay(&self, node: NodeId, d: Duration) {
        self.delay.write().insert(node, d);
    }

    /// Remove a node's send delay.
    pub fn clear_delay(&self, node: NodeId) {
        self.delay.write().remove(&node);
    }

    fn delay_of(&self, node: NodeId) -> Option<Duration> {
        self.delay.read().get(&node).copied()
    }

    /// Arm a deterministic fault step (see [`FaultStep`]). Steps are
    /// independent; several can watch the same node.
    pub fn schedule(&self, step: FaultStep) {
        self.schedule.write().push(step);
    }

    /// Drop all armed fault steps (delivered-frame counts are kept).
    pub fn clear_schedule(&self) {
        self.schedule.write().clear();
    }

    /// Total frames successfully delivered to `node` so far.
    pub fn frames_delivered(&self, node: NodeId) -> u64 {
        self.frames.read().get(&node).copied().unwrap_or(0)
    }

    /// Record a successful delivery to `peer` and fire any armed fault
    /// steps it satisfies.
    fn note_delivery(&self, peer: NodeId) {
        let count = {
            let mut frames = self.frames.write();
            let c = frames.entry(peer).or_insert(0);
            *c += 1;
            *c
        };
        let fired: Vec<NodeId> = {
            let mut sched = self.schedule.write();
            let mut fired = Vec::new();
            sched.retain(|s| {
                if s.watch == peer && count >= s.after_frames {
                    fired.push(s.kill_target);
                    false
                } else {
                    true
                }
            });
            fired
        };
        for target in fired {
            self.kill(target);
        }
    }
}

/// A transport wrapper that consults a [`FaultController`].
pub struct FaultTransport<T: Transport> {
    inner: T,
    ctl: FaultController,
}

impl<T: Transport> FaultTransport<T> {
    /// Wrap `inner` so it consults `ctl` on every operation.
    pub fn new(inner: T, ctl: FaultController) -> Self {
        Self { inner, ctl }
    }

    /// Handle for injecting faults at runtime.
    pub fn controller(&self) -> FaultController {
        self.ctl.clone()
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn bind(&self, local: NodeId) -> Result<Box<dyn Listener>, NetError> {
        if self.ctl.is_dead(local) {
            return Err(NetError::Injected("bind on dead node"));
        }
        let inner = self.inner.bind(local)?;
        Ok(Box::new(FaultListener {
            inner,
            local,
            ctl: self.ctl.clone(),
        }))
    }

    fn connect(&self, local: NodeId, peer: NodeId) -> Result<Box<dyn Connection>, NetError> {
        if self.ctl.is_dead(local) || self.ctl.is_dead(peer) {
            return Err(NetError::Injected("connect to/from dead node"));
        }
        let inner = self.inner.connect(local, peer)?;
        Ok(Box::new(FaultConnection {
            inner,
            local,
            ctl: self.ctl.clone(),
        }))
    }

    fn attach_obs(&self, obs: &netagg_obs::MetricsRegistry) {
        self.inner.attach_obs(obs);
    }
}

struct FaultListener {
    inner: Box<dyn Listener>,
    local: NodeId,
    ctl: FaultController,
}

impl FaultListener {
    fn wrap(&self, c: Box<dyn Connection>) -> Result<Box<dyn Connection>, NetError> {
        if self.ctl.is_dead(self.local) {
            return Err(NetError::Injected("accept on dead node"));
        }
        Ok(Box::new(FaultConnection {
            inner: c,
            local: self.local,
            ctl: self.ctl.clone(),
        }))
    }
}

impl Listener for FaultListener {
    fn accept(&mut self) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept()?;
        self.wrap(c)
    }

    fn accept_timeout(&mut self, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept_timeout(timeout)?;
        self.wrap(c)
    }

    fn accept_cancellable(
        &mut self,
        cancel: &CancelToken,
    ) -> Result<Box<dyn Connection>, NetError> {
        let c = self.inner.accept_cancellable(cancel)?;
        self.wrap(c)
    }
}

struct FaultConnection {
    inner: Box<dyn Connection>,
    local: NodeId,
    ctl: FaultController,
}

impl FaultConnection {
    fn check(&self) -> Result<(), NetError> {
        if self.ctl.is_dead(self.local) || self.ctl.is_dead(self.inner.peer()) {
            Err(NetError::Injected("endpoint dead"))
        } else {
            Ok(())
        }
    }
}

impl Connection for FaultConnection {
    fn send(&mut self, payload: Bytes) -> Result<(), NetError> {
        self.check()?;
        // Sleep out the configured delay in slices, re-reading it each
        // slice so `clear_delay` releases an in-flight delayed send
        // promptly (a 30 s straggler delay must not pin a shutdown).
        let t0 = std::time::Instant::now();
        while let Some(d) = self.ctl.delay_of(self.local) {
            let elapsed = t0.elapsed();
            if elapsed >= d {
                break;
            }
            std::thread::sleep((d - elapsed).min(Duration::from_millis(20)));
        }
        self.inner.send(payload)?;
        self.ctl.note_delivery(self.inner.peer());
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, NetError> {
        // Poll so a node killed mid-recv unblocks promptly.
        loop {
            self.check()?;
            match self.inner.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Bytes, NetError> {
        self.check()?;
        let r = self.inner.recv_timeout(timeout);
        self.check()?;
        r
    }

    fn recv_cancellable(&mut self, cancel: &CancelToken) -> Result<Bytes, NetError> {
        // Poll so both cancellation and a node killed mid-recv unblock
        // promptly (a kill is not a cancel, so the inner transport's
        // wakeup alone does not cover it).
        loop {
            self.check()?;
            if cancel.is_cancelled() {
                return Err(NetError::Cancelled);
            }
            // netagg-lint: allow(no-poll-shutdown) a kill must interrupt a blocked recv even when the inner transport never wakes; documented carve-out of §9 invariant 1
            match self.inner.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Timeout) => continue,
                other => return other,
            }
        }
    }

    fn peer(&self) -> NodeId {
        self.inner.peer()
    }
}

/// A tiny deterministic RNG (splitmix64) for seeded fault schedules.
/// Not cryptographic; its only job is to make a recovery test's kill
/// timings reproducible from a printed seed.
#[derive(Debug, Clone)]
pub struct DetRng(u64);

impl DetRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelTransport;
    use std::thread;

    fn setup() -> (FaultTransport<ChannelTransport>, FaultController) {
        let ctl = FaultController::new();
        let t = FaultTransport::new(ChannelTransport::new(), ctl.clone());
        (t, ctl)
    }

    #[test]
    fn kill_blocks_new_connections() {
        let (t, ctl) = setup();
        let _l = t.bind(1).unwrap();
        ctl.kill(1);
        assert!(matches!(t.connect(2, 1), Err(NetError::Injected(_))));
        ctl.revive(1);
        assert!(t.connect(2, 1).is_ok());
    }

    #[test]
    fn kill_fails_existing_connections() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        c.send(Bytes::from_static(b"ok")).unwrap();
        server.recv().unwrap();
        ctl.kill(1);
        assert!(matches!(
            c.send(Bytes::from_static(b"x")),
            Err(NetError::Injected(_))
        ));
    }

    #[test]
    fn kill_unblocks_pending_recv() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let _c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        // netagg-lint: allow(no-raw-spawn) test parks a receiver to observe the injected kill
        let h = thread::spawn(move || server.recv());
        thread::sleep(Duration::from_millis(30));
        ctl.kill(2);
        let r = h.join().unwrap();
        assert!(matches!(r, Err(NetError::Injected(_))), "{r:?}");
    }

    #[test]
    fn schedule_kills_after_nth_delivered_frame() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let mut server = l.accept().unwrap();
        ctl.schedule(FaultStep {
            watch: 1,
            after_frames: 3,
            kill_target: 9,
        });
        for _ in 0..2 {
            c.send(Bytes::from_static(b"x")).unwrap();
            server.recv().unwrap();
        }
        assert!(!ctl.is_dead(9), "step must not fire before frame 3");
        // The third frame is still delivered; the kill lands after it.
        c.send(Bytes::from_static(b"x")).unwrap();
        server.recv().unwrap();
        assert!(ctl.is_dead(9));
        assert_eq!(ctl.frames_delivered(1), 3);
        // The step is consumed: further traffic does not re-fire it.
        ctl.revive(9);
        c.send(Bytes::from_static(b"x")).unwrap();
        assert!(!ctl.is_dead(9));
    }

    #[test]
    fn clear_schedule_disarms_steps() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        ctl.schedule(FaultStep {
            watch: 1,
            after_frames: 1,
            kill_target: 9,
        });
        ctl.clear_schedule();
        c.send(Bytes::from_static(b"x")).unwrap();
        assert!(!ctl.is_dead(9));
    }

    #[test]
    fn det_rng_is_deterministic_per_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(1, 100)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(1, 100)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().all(|v| (1..100).contains(v)));
        let mut c = DetRng::new(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(1, 100)).collect();
        assert_ne!(va, vc, "different seeds should diverge");
    }

    #[test]
    fn delay_slows_sends() {
        let (t, ctl) = setup();
        let mut l = t.bind(1).unwrap();
        let mut c = t.connect(2, 1).unwrap();
        let _server = l.accept().unwrap();
        ctl.delay(2, Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        c.send(Bytes::from_static(b"slow")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        ctl.clear_delay(2);
        let t1 = std::time::Instant::now();
        c.send(Bytes::from_static(b"fast")).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(20));
    }
}
