//! Smoke tests of the `repro` harness binary: the quick targets must run
//! to completion and print their tables.

use std::process::Command;

fn run(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn tab1_prints_code_inventory() {
    let out = run(&["tab1"]);
    assert!(out.contains("Table 1"));
    assert!(out.contains("minisearch"));
    assert!(out.contains("minimr"));
}

#[test]
fn fig25_and_fig26_print_share_series() {
    let out = run(&["fig25", "--quick"]);
    assert!(out.contains("fixed weights"));
    assert!(out.contains("solr share"));
    let out = run(&["fig26", "--quick"]);
    assert!(out.contains("adaptive weights"));
}

#[test]
fn unknown_target_exits_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fig999")
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn csv_export_writes_files() {
    let dir = std::env::temp_dir().join(format!("netagg-smoke-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["tab1"])
        .env("NETAGG_CSV_DIR", &dir)
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 1, "one CSV per table");
    let _ = std::fs::remove_dir_all(dir);
}
