//! `repro sim-perf` — the fluid-simulator scaling baseline
//! (`BENCH_sim.json`).
//!
//! All runs use the 10,240-server `scale10x` fabric (32 pods × 10 ToRs ×
//! 32 servers, 1:4 over-subscription) under the NetAgg strategy:
//!
//! 1. **Reference point** — one fixed workload run by *both* engines: the
//!    incremental certificate-repair solver and the naive global
//!    per-event re-solver. The headline `events_per_sec` (and the
//!    `speedup` over naive) come from this point; the acceptance bar is
//!    incremental ≥ 10× naive on this topology. The flow count is capped
//!    so the quadratic naive leg finishes in seconds — the same events,
//!    the same fabric, an honest like-for-like ratio.
//! 2. **Sweep** — edge-load × α grid plus a boxes-per-switch column,
//!    incremental engine only, recording events/sec, wall-clock and the
//!    engine's re-solve counters per point.
//!
//! `--quick` (the CI configuration, also used for the committed baseline
//! so the regression gate compares like with like) shrinks the reference
//! cap and drops the most expensive sweep points; `--paper` extends the
//! sweep to edge load 0.5 (~42 k concurrent-arrival flows).

use crate::Options;
use netagg_bench::sim::SimScale;
use netagg_sim::{
    run_experiment_stats, Deployment, EngineKind, ExperimentConfig, Strategy, TopologyConfig,
    WorkloadConfig,
};
use std::time::Instant;

/// One measured sweep point.
struct Point {
    edge_load: f64,
    alpha: f64,
    boxes_per_switch: u32,
    flows: usize,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    makespan_s: f64,
    resolves: u64,
    avg_scope: f64,
    fallbacks: u64,
}

/// The common `scale10x` NetAgg configuration for every leg.
fn base_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    cfg.topology = TopologyConfig::scale10x();
    cfg.strategy = Strategy::NetAgg;
    cfg
}

/// Run `cfg` once, timing the simulation proper (topology and workload
/// generation excluded — the engines share them and the gate measures
/// solver throughput).
fn run_point(cfg: &ExperimentConfig) -> (Point, u64) {
    let t0 = Instant::now();
    let (result, stats) = run_experiment_stats(cfg);
    let wall = t0.elapsed().as_secs_f64();
    // The reference engine does not track events; both engines process one
    // start and one completion per simulated flow, so the flow count gives
    // a comparable event total.
    let events = if stats.events() > 0 {
        stats.events()
    } else {
        2 * result.records.len() as u64
    };
    let per_switch = match cfg.deployment {
        Deployment::All { per_switch } => per_switch,
        _ => 0,
    };
    (
        Point {
            edge_load: 0.0,
            alpha: cfg.workload.alpha,
            boxes_per_switch: per_switch,
            flows: result.records.len(),
            events,
            wall_secs: wall,
            events_per_sec: events as f64 / wall.max(1e-9),
            makespan_s: result.makespan,
            resolves: stats.resolves,
            avg_scope: stats.resolved_flows as f64 / stats.resolves.max(1) as f64,
            fallbacks: stats.fallbacks,
        },
        events,
    )
}

pub fn sim_perf(opts: &Options) {
    // Reference-point flow cap: sized so the quadratic naive engine
    // finishes in seconds at --quick (CI) and minutes at larger scales.
    let (ref_flows, loads, alphas): (usize, &[f64], &[f64]) = match opts.scale {
        SimScale::Quick => (2_000, &[0.125], &[0.1, 1.0]),
        SimScale::Default => (4_000, &[0.125, 0.25], &[0.1, 1.0]),
        SimScale::Paper => (8_000, &[0.125, 0.25, 0.5], &[0.1, 1.0]),
    };

    println!("# sim-perf: scale10x (10240 servers), NetAgg strategy");
    println!("## reference point: both engines, {ref_flows} flows");
    let mut ref_cfg = base_config();
    ref_cfg.workload.num_flows = ref_flows;
    ref_cfg.engine = EngineKind::Incremental;
    let (inc, _) = run_point(&ref_cfg);
    ref_cfg.engine = EngineKind::Reference;
    let (naive, _) = run_point(&ref_cfg);
    let speedup = inc.events_per_sec / naive.events_per_sec.max(1e-9);
    println!(
        "  incremental {:>10.0} events/s   ({} events in {:.2}s)",
        inc.events_per_sec, inc.events, inc.wall_secs
    );
    println!(
        "  naive       {:>10.0} events/s   ({} events in {:.2}s)",
        naive.events_per_sec, naive.events, naive.wall_secs
    );
    println!("  speedup     {speedup:>10.1}x");

    println!("## sweep: edge load x alpha (+ boxes-per-switch), incremental engine");
    let mut points: Vec<Point> = Vec::new();
    let mut sweep_one = |edge_load: f64, alpha: f64, per_switch: u32| {
        let mut cfg = base_config();
        cfg.workload = WorkloadConfig::for_edge_load(&cfg.topology, edge_load);
        cfg.workload.alpha = alpha;
        cfg.deployment = Deployment::All { per_switch };
        let (mut p, _) = run_point(&cfg);
        p.edge_load = edge_load;
        println!(
            "  load {:>5.3}  alpha {:>4.2}  boxes {}  {:>6} flows  {:>9.0} events/s  \
             {:>8.2}s wall  (re-solves {}, avg scope {:.1}, fallbacks {})",
            p.edge_load,
            p.alpha,
            p.boxes_per_switch,
            p.flows,
            p.events_per_sec,
            p.wall_secs,
            p.resolves,
            p.avg_scope,
            p.fallbacks,
        );
        points.push(p);
    };
    for &load in loads {
        for &alpha in alphas {
            sweep_one(load, alpha, 1);
        }
    }
    // Boxes-per-switch column at the lightest load: more boxes per switch
    // spread the box-processing bottleneck without changing the fabric.
    for per_switch in [2u32, 4] {
        sweep_one(loads[0], alphas[0], per_switch);
    }

    let mut json = String::from("{\n  \"bench\": \"sim-perf\",\n");
    json.push_str("  \"topology\": \"scale10x(10240 servers)\",\n");
    json.push_str("  \"strategy\": \"netagg\",\n");
    json.push_str(&format!(
        "  \"events_per_sec\": {:.1},\n  \"naive_events_per_sec\": {:.1},\n  \
         \"speedup_over_naive\": {:.1},\n",
        inc.events_per_sec, naive.events_per_sec, speedup
    ));
    json.push_str(&format!(
        "  \"reference_point\": {{\"flows\": {}, \"events\": {}, \
         \"incremental_wall_secs\": {:.3}, \"naive_wall_secs\": {:.3}}},\n",
        inc.flows, inc.events, inc.wall_secs, naive.wall_secs
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"edge_load\": {}, \"alpha\": {}, \"boxes_per_switch\": {}, \
             \"flows\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"wall_secs\": {:.3}, \"makespan_s\": {:.6}, \"resolves\": {}, \
             \"avg_scope\": {:.1}, \"fallbacks\": {}}}",
            p.edge_load,
            p.alpha,
            p.boxes_per_switch,
            p.flows,
            p.events,
            p.events_per_sec,
            p.wall_secs,
            p.makespan_s,
            p.resolves,
            p.avg_scope,
            p.fallbacks,
        ));
    }
    json.push_str("\n  ]\n}\n");
    let path = "BENCH_sim.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: writing {path}: {e}"),
    }
    if speedup < 10.0 {
        eprintln!("warning: incremental speedup {speedup:.1}x is below the 10x acceptance bar");
    }
}
