//! Micro-benchmarks and platform figures: local aggregation tree
//! throughput (Fig. 15), scheduler fairness (Figs. 25/26), Table 1's code
//! inventory, and the back-pressure ablation.

use crate::Options;
use bytes::Bytes;
use minimr::jobs::WordCount;
use minimr::netagg::CombinerAgg;
use minimr::seqfile;
use minimr::types::{u64_value, Pair};
use netagg_bench::table::{f, rate, Table};
use netagg_core::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use netagg_core::aggbox::tree::LocalAggTree;
use netagg_core::protocol::AppId;
use netagg_core::{AggWrapper, DynAggregator};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A WordCount-style batch of serialised pairs whose combine reduces to
/// roughly `alpha` of the input (distinct keys = alpha x pairs).
fn wc_batch(pairs: usize, alpha: f64, seed: u64) -> Bytes {
    let distinct = ((pairs as f64 * alpha) as usize).max(1);
    let items: Vec<Pair> = (0..pairs)
        .map(|i| {
            let k = (seed as usize + i) % distinct;
            Pair::new(format!("word{k:06}"), u64_value(1))
        })
        .collect();
    seqfile::encode(&items)
}

fn wc_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(CombinerAgg::new(Arc::new(WordCount))))
}

/// Measure the in-memory local-tree aggregation rate: `leaves` feeder
/// threads push batches into a binary tree executed by `threads` scheduler
/// threads.
fn tree_rate(
    leaves: usize,
    threads: usize,
    batches_per_leaf: usize,
    batch_bytes_hint: usize,
) -> f64 {
    tree_rate_fanin(leaves, threads, batches_per_leaf, batch_bytes_hint, 2).0
}

/// Like [`tree_rate`] with an explicit tree fan-in; also returns the number
/// of combine tasks executed (higher fan-in = fewer, larger combines).
fn tree_rate_fanin(
    leaves: usize,
    threads: usize,
    batches_per_leaf: usize,
    batch_bytes_hint: usize,
    fanin: usize,
) -> (f64, u64) {
    let sched = Arc::new(TaskScheduler::new(SchedulerConfig {
        threads,
        adaptive: true,
        ema_alpha: 0.2,
        seed: 1,
    }));
    sched.register_app(AppId(1), 1.0);
    let agg = wc_agg();
    let tree = LocalAggTree::new(agg, fanin);
    // Pre-serialise the batches outside the measured window.
    let batch = wc_batch(batch_bytes_hint / 16, 0.10, 7);
    let total_bytes = (batch.len() * leaves * batches_per_leaf) as f64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..leaves {
            let tree = tree.clone();
            let sched = sched.clone();
            let batch = batch.clone();
            s.spawn(move || {
                for _ in 0..batches_per_leaf {
                    tree.push(&sched, AppId(1), batch.clone());
                }
            });
        }
    });
    tree.end_input(&sched, AppId(1));
    tree.wait_complete(Duration::from_secs(120))
        .expect("tree completes");
    let tasks = sched
        .cpu_times()
        .iter()
        .find(|c| c.app == AppId(1))
        .map(|c| c.tasks_run)
        .unwrap_or(0);
    (total_bytes / t0.elapsed().as_secs_f64(), tasks)
}

/// Ablation: local-tree fan-in. Small fan-in pipelines aggressively (many
/// small combines start as soon as two inputs exist) but pays per-task
/// overhead; large fan-in batches more per combine but delays work. The
/// platform default of 8 sits on the flat part of this curve.
pub fn ablate_fanin(opts: &Options) {
    let quick = matches!(opts.scale, netagg_bench::sim::SimScale::Quick);
    let batches = if quick { 24 } else { 64 };
    let leaves = if quick { 8 } else { 16 };
    let mut t = Table::new(
        "Ablation: local aggregation tree fan-in (WordCount, alpha=10%)",
        &["fan-in", "throughput", "combine tasks"],
    );
    for fanin in [2usize, 4, 8, 16, 32] {
        let (thr, tasks) = tree_rate_fanin(leaves, 4, batches, 64 * 1024, fanin);
        t.row(vec![fanin.to_string(), rate(thr), tasks.to_string()]);
    }
    t.print();
}

/// Fig. 15: local aggregation tree processing rate vs leaves and thread
/// pool size (WordCount items, alpha = 10 %).
pub fn fig15(opts: &Options) {
    print_core_note();
    let quick = matches!(opts.scale, netagg_bench::sim::SimScale::Quick);
    let threads_sweep: Vec<usize> = if quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let leaves_sweep: Vec<usize> = if quick {
        vec![4, 16, 64]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128]
    };
    let mut header: Vec<String> = vec!["leaves".to_string()];
    header.extend(threads_sweep.iter().map(|t| format!("{t} thr")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig 15: local aggregation tree rate (WordCount, alpha=10%)",
        &header_refs,
    );
    let batches = if quick { 24 } else { 64 };
    for leaves in leaves_sweep {
        let mut cells = vec![leaves.to_string()];
        for &threads in &threads_sweep {
            cells.push(rate(tree_rate(leaves, threads, batches, 64 * 1024)));
        }
        t.row(cells);
    }
    t.print();
}

/// Scale-up and parallelism figures depend on physical cores; on a
/// single-core host every thread count collapses to the same rate.
pub(crate) fn print_core_note() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores <= 2 {
        println!(
            "
note: host has {cores} core(s); thread-scaling results are flat by construction"
        );
    }
}

/// Drive two applications with different task costs on one scheduler and
/// print the CPU-share time series (Figs. 25 and 26).
fn fairness(adaptive: bool, opts: &Options) {
    let quick = matches!(opts.scale, netagg_bench::sim::SimScale::Quick);
    let window = if quick { 1.2f64 } else { 4.0 };
    let mut sched = TaskScheduler::new(SchedulerConfig {
        threads: 2,
        adaptive,
        ema_alpha: 0.2,
        seed: 3,
    });
    // "Solr" tasks take ~3 ms, "Hadoop" tasks ~1 ms (Section 4.2.3), both
    // with equal 50 % target shares.
    let solr = AppId(1);
    let hadoop = AppId(2);
    sched.register_app(solr, 1.0);
    sched.register_app(hadoop, 1.0);
    let n = (window * 3000.0) as usize;
    for _ in 0..n {
        sched.submit(
            solr,
            Box::new(|| std::thread::sleep(Duration::from_millis(3))),
        );
        sched.submit(
            hadoop,
            Box::new(|| std::thread::sleep(Duration::from_millis(1))),
        );
    }
    let mut t = Table::new(
        &format!(
            "Fig {}: CPU shares over time, {} weights (target 50/50)",
            if adaptive { 26 } else { 25 },
            if adaptive { "adaptive" } else { "fixed" }
        ),
        &["t (ms)", "solr share", "hadoop share"],
    );
    let t0 = Instant::now();
    let mut prev = (0.0, 0.0);
    let step = Duration::from_secs_f64(window / 8.0);
    for _ in 0..8 {
        std::thread::sleep(step);
        let cpu = sched.cpu_times();
        let s = cpu.iter().find(|c| c.app == solr).unwrap().cpu_seconds;
        let h = cpu.iter().find(|c| c.app == hadoop).unwrap().cpu_seconds;
        let (ds, dh) = (s - prev.0, h - prev.1);
        prev = (s, h);
        let total = (ds + dh).max(1e-9);
        t.row(vec![
            format!("{:.0}", t0.elapsed().as_secs_f64() * 1e3),
            f(ds / total),
            f(dh / total),
        ]);
    }
    sched.shutdown();
    t.print();
}

/// Fig. 25: fixed-weight WFQ starves the short-task application.
pub fn fig25(opts: &Options) {
    fairness(false, opts);
}

/// Fig. 26: adaptive WFQ equalises the achieved CPU shares.
pub fn fig26(opts: &Options) {
    fairness(true, opts);
}

/// Table 1: lines of application-specific NetAgg code, counted from the
/// actual adapter sources (serialiser, aggregation wrapper, shim glue).
pub fn tab1() {
    let count = |src: &str| {
        src.lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count()
    };
    let search_serde = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minisearch/src/score.rs"
    )));
    let search_wrapper = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minisearch/src/aggfn.rs"
    )));
    let search_shim = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minisearch/src/netagg.rs"
    )));
    let mr_serde = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minimr/src/seqfile.rs"
    )));
    let mr_wrapper = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minimr/src/netagg.rs"
    )));
    let mr_shim = count(include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../minimr/src/cluster.rs"
    )));
    let mut t = Table::new(
        "Table 1: lines of application-specific NetAgg code (incl. tests)",
        &["component", "minisearch", "minimr"],
    );
    t.row(vec![
        "serialisation".into(),
        search_serde.to_string(),
        mr_serde.to_string(),
    ]);
    t.row(vec![
        "aggregation wrapper".into(),
        search_wrapper.to_string(),
        mr_wrapper.to_string(),
    ]);
    t.row(vec![
        "shim / driver glue".into(),
        search_shim.to_string(),
        mr_shim.to_string(),
    ]);
    t.row(vec![
        "total".into(),
        (search_serde + search_wrapper + search_shim).to_string(),
        (mr_serde + mr_wrapper + mr_shim).to_string(),
    ]);
    t.print();
}

/// Extension experiment (paper Section 5): one-to-many distribution down
/// the aggregation tree vs direct unicast from the master. The master's
/// 1 Gbps egress serialises N copies under unicast; with on-path
/// replication it sends one copy per root box and the 10 Gbps boxes fan
/// out. (The emulator charges the receiver's ingress on the sender's
/// thread, so the box's single egress thread under-states the tree's
/// speedup; the master-egress copy count shows the real saving.)
pub fn ext_broadcast(opts: &Options) {
    use netagg_bench::emu::{build_emu, TestbedConfig};
    use netagg_core::prelude::*;
    use netagg_core::runtime::NetAggDeployment;
    use netagg_net::Transport;

    struct Opaque;
    impl netagg_core::AggregationFunction for Opaque {
        type Item = Bytes;
        fn deserialize(&self, b: &Bytes) -> Result<Bytes, netagg_core::AggError> {
            Ok(b.clone())
        }
        fn serialize(&self, item: &Bytes) -> Bytes {
            item.clone()
        }
        fn aggregate(&self, mut items: Vec<Bytes>) -> Bytes {
            items.pop().unwrap_or_default()
        }
        fn empty(&self) -> Bytes {
            Bytes::new()
        }
    }

    let quick = matches!(opts.scale, netagg_bench::sim::SimScale::Quick);
    let workers = if quick { 6 } else { 10 };
    let payload = Bytes::from(vec![0u8; 256 * 1024]); // 256 KB model/update
    let mut t = Table::new(
        "Extension: broadcast 256 KB to all workers, unicast vs on-path tree",
        &["mode", "wall time (ms)", "master egress"],
    );
    for (label, boxes) in [("unicast (no boxes)", 0u32), ("tree (1 box)", 1u32)] {
        let cfg = TestbedConfig {
            workers_per_rack: workers,
            boxes_per_rack: boxes,
            ..TestbedConfig::default()
        };
        let emu = build_emu(&cfg, &[AppId(0)]);
        let transport: std::sync::Arc<dyn Transport> = std::sync::Arc::new(emu);
        let mut dep = NetAggDeployment::launch(transport, &cfg.cluster_spec()).expect("launch");
        let app = dep.register_app(
            "bcast",
            std::sync::Arc::new(netagg_core::AggWrapper::new(Opaque)),
            1.0,
        );
        let master = dep.master_shim(app);
        let shims: Vec<_> = (0..workers).map(|w| dep.worker_shim(app, w)).collect();
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        master.broadcast(1, payload.clone()).expect("broadcast");
        // Wall time until every worker holds the payload.
        std::thread::scope(|s| {
            for shim in &shims {
                s.spawn(move || {
                    let (_, p) = shim
                        .recv_broadcast(Duration::from_secs(60))
                        .expect("delivered");
                    assert_eq!(p.len(), 256 * 1024);
                });
            }
        });
        let elapsed = t0.elapsed();
        let copies = if boxes == 0 { workers as usize } else { 1 };
        t.row(vec![
            label.into(),
            f(elapsed.as_secs_f64() * 1e3),
            format!("{} copies", copies),
        ]);
        dep.shutdown();
    }
    t.print();
}

/// Ablation: back-pressure on vs off. With bounded channels (the
/// platform's back-pressure), a slow aggregation function slows producers
/// instead of ballooning memory; we measure the tree's buffered backlog
/// with fast vs slow consumers.
pub fn ablate_backpressure(opts: &Options) {
    let quick = matches!(opts.scale, netagg_bench::sim::SimScale::Quick);
    let batches = if quick { 200 } else { 800 };
    // Slow aggregator: each combine burns CPU.
    struct SlowAgg(Arc<dyn DynAggregator>);
    impl DynAggregator for SlowAgg {
        fn aggregate_serialized(&self, inputs: Vec<Bytes>) -> Result<Bytes, netagg_core::AggError> {
            std::thread::sleep(Duration::from_micros(500));
            self.0.aggregate_serialized(inputs)
        }
        fn empty_serialized(&self) -> Bytes {
            self.0.empty_serialized()
        }
    }
    let mut t = Table::new(
        "Ablation: pipelined tree keeps buffering bounded under a slow function",
        &["consumer", "peak buffered items", "throughput"],
    );
    for (label, slow) in [("fast combine", false), ("slow combine", true)] {
        let sched = Arc::new(TaskScheduler::new(SchedulerConfig {
            threads: 4,
            ..SchedulerConfig::default()
        }));
        sched.register_app(AppId(1), 1.0);
        let agg: Arc<dyn DynAggregator> = if slow {
            Arc::new(SlowAgg(wc_agg()))
        } else {
            wc_agg()
        };
        let tree = LocalAggTree::new(agg, 8);
        let batch = wc_batch(256, 0.1, 3);
        let total = (batch.len() * batches) as f64;
        let mut peak = 0usize;
        let t0 = Instant::now();
        for _ in 0..batches {
            tree.push(&sched, AppId(1), batch.clone());
            let (pending, _) = tree.load();
            peak = peak.max(pending);
        }
        tree.end_input(&sched, AppId(1));
        tree.wait_complete(Duration::from_secs(120)).unwrap();
        let thr = total / t0.elapsed().as_secs_f64();
        t.row(vec![label.into(), peak.to_string(), rate(thr)]);
    }
    t.print();
}
