//! Search-engine testbed figures (Fig. 16–21): the emulated counterpart of
//! the paper's Solr evaluation.

use crate::Options;
use minisearch::corpus::CorpusConfig;
use minisearch::netagg::SearchFunction;
use netagg_bench::emu::{drive_search, search_testbed, SearchTestbed, TestbedConfig};
use netagg_bench::table::{f, rate, Table};
use std::time::Duration;

fn corpus() -> CorpusConfig {
    CorpusConfig {
        num_docs: 1_500,
        vocabulary: 5_000,
        mean_words: 80,
        markers_per_doc: 4,
        seed: 2012,
    }
}

/// Backends return generous partial lists so result traffic dominates.
const BACKEND_K: u32 = 400;

fn drive(tb: &SearchTestbed, clients: u32, opts: &Options) -> netagg_bench::emu::LoadResult {
    drive_search(tb, clients, Duration::from_secs_f64(opts.drive_secs))
}

fn with_testbed<T>(
    cfg: TestbedConfig,
    function: SearchFunction,
    run: impl FnOnce(&SearchTestbed) -> T,
) -> T {
    let mut tb = search_testbed(cfg, &corpus(), function, BACKEND_K);
    let out = run(&tb);
    tb.cluster.shutdown();
    tb.deployment.shutdown();
    out
}

fn client_sweep(opts: &Options) -> Vec<u32> {
    match opts.scale {
        netagg_bench::sim::SimScale::Quick => vec![1, 4, 8],
        _ => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Fig. 16: throughput vs number of clients, plain vs NetAgg (sample,
/// alpha = 5 %).
pub fn fig16(opts: &Options) {
    let mut t = Table::new(
        "Fig 16: search throughput vs clients (sample, alpha=5%)",
        &["clients", "plain", "netagg", "speedup"],
    );
    let function = SearchFunction::Sample { alpha: 0.05 };
    for clients in client_sweep(opts) {
        let plain = with_testbed(
            TestbedConfig {
                boxes_per_rack: 0,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        let netagg = with_testbed(TestbedConfig::default(), function, |tb| {
            drive(tb, clients, opts)
        });
        t.row(vec![
            clients.to_string(),
            rate(plain.throughput),
            rate(netagg.throughput),
            f(netagg.throughput / plain.throughput.max(1.0)),
        ]);
    }
    t.print();
}

/// Fig. 17: 99th-percentile query latency vs number of clients.
pub fn fig17(opts: &Options) {
    let mut t = Table::new(
        "Fig 17: 99th percentile query latency vs clients (sample, alpha=5%)",
        &["clients", "plain p99 (ms)", "netagg p99 (ms)"],
    );
    let function = SearchFunction::Sample { alpha: 0.05 };
    for clients in client_sweep(opts) {
        let plain = with_testbed(
            TestbedConfig {
                boxes_per_rack: 0,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        let netagg = with_testbed(TestbedConfig::default(), function, |tb| {
            drive(tb, clients, opts)
        });
        t.row(vec![
            clients.to_string(),
            f(plain.p99_latency.as_secs_f64() * 1e3),
            f(netagg.p99_latency.as_secs_f64() * 1e3),
        ]);
    }
    t.print();
}

/// Fig. 18: throughput vs output ratio alpha at a fixed client load.
pub fn fig18(opts: &Options) {
    let mut t = Table::new(
        "Fig 18: search throughput vs output ratio (fixed client load)",
        &["alpha", "plain", "netagg"],
    );
    let clients = *client_sweep(opts).last().unwrap();
    for alpha in [0.05, 0.10, 0.25, 0.50, 1.00] {
        let function = SearchFunction::Sample { alpha };
        let plain = with_testbed(
            TestbedConfig {
                boxes_per_rack: 0,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        let netagg = with_testbed(TestbedConfig::default(), function, |tb| {
            drive(tb, clients, opts)
        });
        t.row(vec![
            format!("{alpha:.2}"),
            rate(plain.throughput),
            rate(netagg.throughput),
        ]);
    }
    t.print();
}

/// Fig. 19: throughput vs backends per rack, one rack vs two racks.
pub fn fig19(opts: &Options) {
    let mut t = Table::new(
        "Fig 19: aggregate throughput vs backends per rack (1 vs 2 racks)",
        &["backends/rack", "1 rack", "2 racks"],
    );
    let clients = *client_sweep(opts).last().unwrap();
    let function = SearchFunction::Sample { alpha: 0.05 };
    let sweep: Vec<u32> = match opts.scale {
        netagg_bench::sim::SimScale::Quick => vec![2, 4],
        _ => vec![2, 4, 6, 8],
    };
    for backends in sweep {
        let one = with_testbed(
            TestbedConfig {
                racks: 1,
                workers_per_rack: backends,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        let two = with_testbed(
            TestbedConfig {
                racks: 2,
                workers_per_rack: backends,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        t.row(vec![
            backends.to_string(),
            rate(one.throughput),
            rate(two.throughput),
        ]);
    }
    t.print();
}

/// Fig. 20: agg-box scale-out under the CPU-intensive categorise function.
pub fn fig20(opts: &Options) {
    crate::micro_figs::print_core_note();
    let mut t = Table::new(
        "Fig 20: box scale-out, CPU-intensive categorise (2 threads/box)",
        &["clients", "1 box", "2 boxes"],
    );
    let function = SearchFunction::Categorise { k_per_category: 20 };
    for clients in client_sweep(opts) {
        let one = with_testbed(
            TestbedConfig {
                box_threads: 2,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        let two = with_testbed(
            TestbedConfig {
                box_threads: 2,
                boxes_per_rack: 2,
                num_trees: 2,
                ..TestbedConfig::default()
            },
            function,
            |tb| drive(tb, clients, opts),
        );
        t.row(vec![
            clients.to_string(),
            rate(one.throughput),
            rate(two.throughput),
        ]);
    }
    t.print();
}

/// Fig. 21: agg-box scale-up — throughput vs CPU cores (scheduler
/// threads), cheap sample vs CPU-intensive categorise.
pub fn fig21(opts: &Options) {
    crate::micro_figs::print_core_note();
    let mut t = Table::new(
        "Fig 21: box throughput vs scheduler threads (sample vs categorise)",
        &["threads", "sample", "categorise"],
    );
    let clients = *client_sweep(opts).last().unwrap();
    let threads_sweep: Vec<usize> = match opts.scale {
        netagg_bench::sim::SimScale::Quick => vec![1, 4],
        _ => vec![1, 2, 4, 8],
    };
    for threads in threads_sweep {
        let sample = with_testbed(
            TestbedConfig {
                box_threads: threads,
                ..TestbedConfig::default()
            },
            SearchFunction::Sample { alpha: 0.05 },
            |tb| drive(tb, clients, opts),
        );
        let categorise = with_testbed(
            TestbedConfig {
                box_threads: threads,
                ..TestbedConfig::default()
            },
            SearchFunction::Categorise { k_per_category: 20 },
            |tb| drive(tb, clients, opts),
        );
        t.row(vec![
            threads.to_string(),
            rate(sample.throughput),
            rate(categorise.throughput),
        ]);
    }
    t.print();
}
