//! `repro soak` — the long-haul scenario drive and its committed baseline
//! (`BENCH_soak.json`).
//!
//! The soak runs the standard multi-app scenario (three synthetic
//! workloads, minisearch, minimr; seeded box kill + request-indexed kill +
//! straggler storm) from `netagg_scenarios::soak` on *both* transport
//! providers, asserting the DESIGN.md §7 metrics contract end-to-end:
//! bounded mailbox depths, `runtime.threads_active == 0` after teardown,
//! drained fan-in ledgers, and zero duplicate deliveries. Any violation,
//! failure or exactness mismatch is fatal.
//!
//! Scale selects the section(s) written to `BENCH_soak.json`:
//! `--quick` runs only the ~8k-request quick soak (the CI configuration,
//! gated at 0.8x the committed quick requests/sec); the default and
//! `--paper` scales run the quick soak *and* the million-request full
//! soak, producing the complete committed baseline.

use crate::Options;
use netagg_bench::sim::SimScale;
use netagg_scenarios::{builtin_providers, ScenarioReport, ScenarioSpec};

fn run_section(spec: &ScenarioSpec) -> Vec<ScenarioReport> {
    println!(
        "# soak [{}]: {} requests over {} apps, {} impairments, both transports",
        spec.name,
        spec.total_requests(),
        spec.apps.len(),
        spec.impairments.len()
    );
    let mut reports = Vec::new();
    for provider in builtin_providers() {
        let report = match netagg_scenarios::run_soak(spec, provider.as_ref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("soak [{}] on {} FAILED: {e}", spec.name, provider.label());
                std::process::exit(1);
            }
        };
        println!("  {}", report.summary());
        reports.push(report);
    }
    reports
}

fn report_json(out: &mut String, r: &ScenarioReport) {
    out.push_str(&format!(
        "        \"{}\": {{\n          \"requests_completed\": {},\n          \
         \"elapsed_secs\": {:.6},\n          \"requests_per_sec\": {:.1},\n          \
         \"p50_wait_us\": {},\n          \"p99_wait_us\": {},\n          \
         \"detections\": {},\n          \"repoints\": {},\n          \
         \"failures\": {},\n          \"mismatches\": {},\n          \
         \"violations\": {}\n        }}",
        r.provider,
        r.requests_completed,
        r.elapsed.as_secs_f64(),
        r.requests_per_sec,
        r.p50_wait_us,
        r.p99_wait_us,
        r.detections,
        r.repoints,
        r.failures,
        r.mismatches,
        r.violations.len(),
    ));
}

fn section_json(out: &mut String, name: &str, spec: &ScenarioSpec, reports: &[ScenarioReport]) {
    out.push_str(&format!(
        "    \"{}\": {{\n      \"scenario\": \"{}\",\n      \"requests\": {},\n      \
         \"apps\": {},\n      \"impairments\": {},\n      \"transports\": {{\n",
        name,
        spec.name,
        spec.total_requests(),
        spec.apps.len(),
        spec.impairments.len(),
    ));
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        report_json(out, r);
    }
    out.push_str("\n      }\n    }");
}

/// `repro soak` — run the soak scenario(s) for the selected scale and
/// write `BENCH_soak.json`.
pub fn soak(opts: &Options) {
    let quick_spec = netagg_scenarios::quick_soak_spec();
    let quick_reports = run_section(&quick_spec);

    let full = match opts.scale {
        SimScale::Quick => None,
        _ => {
            let spec = netagg_scenarios::full_soak_spec();
            let reports = run_section(&spec);
            Some((spec, reports))
        }
    };

    let mut json =
        String::from("{\n  \"bench\": \"soak\",\n  \"topology\": \"multi_rack(2,3,1)\",\n");
    json.push_str("  \"sections\": {\n");
    section_json(&mut json, "quick", &quick_spec, &quick_reports);
    if let Some((spec, reports)) = &full {
        json.push_str(",\n");
        section_json(&mut json, "full", spec, reports);
    }
    json.push_str("\n  }\n}\n");
    let path = "BENCH_soak.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: writing {path}: {e}"),
    }
}
