//! Simulation figures (Fig. 2–14 of the paper) plus design-choice
//! ablations.

use crate::Options;
use netagg_bench::sim::{mean_p99, single_run, SimScale};
use netagg_bench::table::{f, Table};
use netagg_sim::aggregation::TreePolicy;
use netagg_sim::deployment::BudgetSpread;
use netagg_sim::metrics::{self, FlowClass};
use netagg_sim::topology::Tier;
use netagg_sim::workload::ArrivalProcess;
use netagg_sim::{CostModel, Deployment, ExperimentConfig, Strategy, UpgradeOption, GBPS};

fn base(opts: &Options) -> ExperimentConfig {
    opts.scale.base_config()
}

/// The four strategies every comparison figure reports.
const STRATEGIES: [Strategy; 4] = [
    Strategy::RackLevel,
    Strategy::DAry(2),
    Strategy::DAry(1),
    Strategy::NetAgg,
];

/// 99th FCT of each strategy for a config, normalised to rack-level.
fn relative_row(cfg: &ExperimentConfig, class: FlowClass, seeds: u64) -> Vec<f64> {
    let mut rack_cfg = cfg.clone();
    rack_cfg.strategy = Strategy::RackLevel;
    let rack = mean_p99(&rack_cfg, class, seeds);
    STRATEGIES
        .iter()
        .map(|s| {
            let mut c = cfg.clone();
            c.strategy = *s;
            mean_p99(&c, class, seeds) / rack
        })
        .collect()
}

/// Fig. 2: feasibility — 99th FCT vs agg-box processing rate, for 1:1 and
/// 1:4 over-subscription, relative to rack-level aggregation.
pub fn fig2(opts: &Options) {
    let mut t = Table::new(
        "Fig 2: 99th FCT vs agg-box processing rate R (relative to rack-level)",
        &["oversub", "R=2G", "R=4G", "R=6G", "R=8G", "R=10G"],
    );
    for oversub in [1.0, 4.0] {
        let mut cells = vec![format!("1:{oversub:.0}")];
        for r in [2.0, 4.0, 6.0, 8.0, 10.0] {
            let mut cfg = base(opts);
            cfg.topology.oversub = oversub;
            cfg.strategy = Strategy::NetAgg;
            cfg.box_rate = r * GBPS;
            let mut rack = cfg.clone();
            rack.strategy = Strategy::RackLevel;
            let rel = mean_p99(&cfg, FlowClass::All, opts.seeds())
                / mean_p99(&rack, FlowClass::All, opts.seeds());
            cells.push(f(rel));
        }
        t.row(cells);
    }
    t.print();
}

/// Fig. 3: performance and upgrade cost of the DC configurations.
pub fn fig3(opts: &Options) {
    let prices = CostModel::default();
    let base_cfg = base(opts);
    let mut rack = base_cfg.clone();
    rack.strategy = Strategy::RackLevel;
    let rack_p99 = mean_p99(&rack, FlowClass::All, opts.seeds());
    let mut t = Table::new(
        "Fig 3: FCT (relative to Base-1G rack) and upgrade cost",
        &["configuration", "rel 99th FCT", "upgrade cost ($M)"],
    );
    for opt in UpgradeOption::ALL {
        let cfg = opt.experiment(&base_cfg);
        let p99 = mean_p99(&cfg, FlowClass::All, opts.seeds());
        let cost = opt.upgrade_cost(&base_cfg.topology, &prices) / 1e6;
        t.row(vec![opt.label().to_string(), f(p99 / rack_p99), f(cost)]);
    }
    t.print();
}

fn cdf_table(title: &str, class: FlowClass, opts: &Options) {
    let mut t = Table::new(
        title,
        &[
            "percentile",
            "rack (ms)",
            "binary (ms)",
            "chain (ms)",
            "netagg (ms)",
        ],
    );
    let mut series: Vec<Vec<f64>> = Vec::new();
    for s in STRATEGIES {
        let mut cfg = base(opts);
        cfg.strategy = s;
        let result = single_run(&cfg);
        series.push(result.fcts(class));
    }
    for p in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        let mut cells = vec![format!("p{:02.0}", p * 100.0)];
        for fcts in &series {
            cells.push(f(metrics::percentile(fcts, p) * 1e3));
        }
        t.row(cells);
    }
    t.print();
}

/// Fig. 6: CDF of FCT of all traffic.
pub fn fig6(opts: &Options) {
    cdf_table("Fig 6: FCT distribution, all flows", FlowClass::All, opts);
}

/// Fig. 7: CDF of FCT of non-aggregatable traffic.
pub fn fig7(opts: &Options) {
    cdf_table(
        "Fig 7: FCT distribution, non-aggregatable (background) flows",
        FlowClass::Background,
        opts,
    );
}

/// Fig. 8: relative 99th FCT vs aggregation output ratio alpha.
pub fn fig8(opts: &Options) {
    let mut t = Table::new(
        "Fig 8: 99th FCT relative to rack vs output ratio alpha",
        &["alpha", "rack", "binary", "chain", "netagg"],
    );
    for alpha in [0.05, 0.10, 0.25, 0.50, 0.75, 1.00] {
        let mut cfg = base(opts);
        cfg.workload.alpha = alpha;
        let rel = relative_row(&cfg, FlowClass::All, opts.seeds());
        let mut cells = vec![format!("{alpha:.2}")];
        cells.extend(rel.iter().map(|v| f(*v)));
        t.row(cells);
    }
    t.print();
}

/// Fig. 9: distribution of per-link carried bytes (alpha = 10 %).
pub fn fig9(opts: &Options) {
    let mut t = Table::new(
        "Fig 9: link traffic distribution (MB per link, alpha=10%)",
        &["percentile", "rack", "binary", "chain", "netagg"],
    );
    let mut series = Vec::new();
    for s in STRATEGIES {
        let mut cfg = base(opts);
        cfg.strategy = s;
        let result = single_run(&cfg);
        series.push(metrics::link_traffic_sorted(&result));
    }
    for p in [0.25, 0.50, 0.75, 0.90, 0.99] {
        let mut cells = vec![format!("p{:02.0}", p * 100.0)];
        for lt in &series {
            cells.push(f(metrics::percentile(lt, p) / 1e6));
        }
        t.row(cells);
    }
    t.print();
}

/// Fig. 10: relative 99th FCT vs fraction of aggregatable flows.
pub fn fig10(opts: &Options) {
    let mut t = Table::new(
        "Fig 10: 99th FCT relative to rack vs fraction of aggregatable flows",
        &["fraction", "rack", "binary", "chain", "netagg"],
    );
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut cfg = base(opts);
        cfg.workload.frac_aggregatable = frac;
        let rel = relative_row(&cfg, FlowClass::All, opts.seeds());
        let mut cells = vec![format!("{frac:.1}")];
        cells.extend(rel.iter().map(|v| f(*v)));
        t.row(cells);
    }
    t.print();
}

/// Fig. 11: relative 99th FCT vs over-subscription.
pub fn fig11(opts: &Options) {
    let mut t = Table::new(
        "Fig 11: 99th FCT relative to rack vs over-subscription (alpha=10%)",
        &["oversub", "rack", "binary", "chain", "netagg"],
    );
    for ov in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let mut cfg = base(opts);
        cfg.topology.oversub = ov;
        let rel = relative_row(&cfg, FlowClass::All, opts.seeds());
        let mut cells = vec![format!("1:{ov:.0}")];
        cells.extend(rel.iter().map(|v| f(*v)));
        t.row(cells);
    }
    t.print();
}

/// Fig. 12: partial deployments — tiers, and a fixed box budget.
pub fn fig12(opts: &Options) {
    let cfg0 = base(opts);
    let mut rack = cfg0.clone();
    rack.strategy = Strategy::RackLevel;
    let rack_p99 = mean_p99(&rack, FlowClass::All, opts.seeds());
    let rel = |dep: Deployment| -> f64 {
        let mut cfg = cfg0.clone();
        cfg.strategy = Strategy::NetAgg;
        cfg.deployment = dep;
        mean_p99(&cfg, FlowClass::All, opts.seeds()) / rack_p99
    };
    let mut t = Table::new(
        "Fig 12: partial deployments, 99th FCT relative to rack",
        &["deployment", "rel 99th FCT"],
    );
    t.row(vec![
        "ToR tier only".into(),
        f(rel(Deployment::Tiers {
            tiers: vec![Tier::Tor],
            per_switch: 1,
        })),
    ]);
    t.row(vec![
        "Aggr tier only".into(),
        f(rel(Deployment::Tiers {
            tiers: vec![Tier::Aggregation],
            per_switch: 1,
        })),
    ]);
    t.row(vec![
        "Core tier only".into(),
        f(rel(Deployment::Tiers {
            tiers: vec![Tier::Core],
            per_switch: 1,
        })),
    ]);
    t.row(vec!["Full".into(), f(rel(Deployment::all()))]);
    // Fixed budget: one box per core switch.
    let budget = cfg0.topology.cores;
    t.row(vec![
        format!("budget {budget} @ core"),
        f(rel(Deployment::Budget {
            count: budget,
            spread: BudgetSpread::CoreOnly,
        })),
    ]);
    t.row(vec![
        format!("budget {budget} @ aggr"),
        f(rel(Deployment::Budget {
            count: budget,
            spread: BudgetSpread::AggrUniform,
        })),
    ]);
    t.row(vec![
        format!("budget {budget} @ aggr+core"),
        f(rel(Deployment::Budget {
            count: budget,
            spread: BudgetSpread::CoreAndAggr,
        })),
    ]);
    t.print();
}

/// Fig. 13: 10 Gbps edge network with box scale-out.
pub fn fig13(opts: &Options) {
    let mut t = Table::new(
        "Fig 13: 10G network, 99th FCT relative to rack, scale-out boxes",
        &["oversub", "1x box", "2x box", "4x box"],
    );
    for ov in [1.0, 2.0, 4.0, 8.0] {
        let mut cells = vec![format!("1:{ov:.0}")];
        for per_switch in [1u32, 2, 4] {
            let mut cfg = base(opts);
            cfg.topology.edge_capacity = 10.0 * GBPS;
            cfg.topology.oversub = ov;
            cfg.strategy = Strategy::NetAgg;
            cfg.deployment = Deployment::All { per_switch };
            let mut rack = cfg.clone();
            rack.strategy = Strategy::RackLevel;
            let rel = mean_p99(&cfg, FlowClass::All, opts.seeds())
                / mean_p99(&rack, FlowClass::All, opts.seeds());
            cells.push(f(rel));
        }
        t.row(cells);
    }
    t.print();
}

/// Fig. 14: stragglers.
pub fn fig14(opts: &Options) {
    let mut t = Table::new(
        "Fig 14: 99th FCT relative to rack vs straggler ratio",
        &["straggler ratio", "rack", "binary", "chain", "netagg"],
    );
    for ratio in [0.0, 0.1, 0.2, 0.3, 0.5] {
        let mut cfg = base(opts);
        cfg.workload.straggler_frac = ratio;
        cfg.workload.straggler_delay = 0.05; // 50 ms vs ~ms-scale FCTs
        let rel = relative_row(&cfg, FlowClass::All, opts.seeds());
        let mut cells = vec![format!("{ratio:.1}")];
        cells.extend(rel.iter().map(|v| f(*v)));
        t.row(cells);
    }
    t.print();
}

/// Ablation: multiple trees per application (ECMP per request) vs a single
/// shared tree.
pub fn ablate_trees(opts: &Options) {
    let mut t = Table::new(
        "Ablation: per-request trees vs single tree (99th FCT rel. to rack)",
        &["policy", "rel 99th FCT"],
    );
    for (label, strategy) in [
        (
            "per-request trees",
            Strategy::NetAggWith(TreePolicy::PerRequest),
        ),
        ("single tree", Strategy::NetAggWith(TreePolicy::Single)),
    ] {
        let mut cfg = base(opts);
        cfg.strategy = strategy;
        let mut rack = cfg.clone();
        rack.strategy = Strategy::RackLevel;
        let rel = mean_p99(&cfg, FlowClass::All, opts.seeds())
            / mean_p99(&rack, FlowClass::All, opts.seeds());
        t.row(vec![label.to_string(), f(rel)]);
    }
    t.print();
}

/// Ablation: locality-aware vs random worker placement.
pub fn ablate_placement(opts: &Options) {
    // Random placement is emulated by shuffling worker positions: we use a
    // much larger consecutive span (workers_max) so requests spread racks.
    let mut t = Table::new(
        "Ablation: locality-aware vs scattered placement (netagg rel. to its rack baseline)",
        &["placement", "rel 99th FCT"],
    );
    for (label, scatter) in [("locality-aware", false), ("scattered", true)] {
        let mut cfg = base(opts);
        if scatter {
            // Spreading fan-in over the whole fabric: emulate by a larger
            // minimum fan-in so consecutive placement spans many racks.
            cfg.workload.workers_min = cfg.topology.servers_per_tor;
            cfg.workload.workers_exp = 1.2;
        }
        cfg.strategy = Strategy::NetAgg;
        let mut rack = cfg.clone();
        rack.strategy = Strategy::RackLevel;
        let rel = mean_p99(&cfg, FlowClass::All, opts.seeds())
            / mean_p99(&rack, FlowClass::All, opts.seeds());
        t.row(vec![label.to_string(), f(rel)]);
    }
    t.print();
}

/// Ablation: worst-case simultaneous arrivals vs dynamic (Poisson /
/// uniform) arrivals — the paper reports the dynamic patterns give results
/// within a few percent of the worst case.
pub fn ablate_arrivals(opts: &Options) {
    let mut t = Table::new(
        "Ablation: arrival process (netagg 99th FCT relative to rack)",
        &["arrivals", "rel 99th FCT"],
    );
    let arrivals = [
        ("all at once (paper default)", ArrivalProcess::AllAtOnce),
        ("poisson 50k/s", ArrivalProcess::Poisson { rate: 50_000.0 }),
        (
            "poisson 200k/s",
            ArrivalProcess::Poisson { rate: 200_000.0 },
        ),
        (
            "uniform over 20 ms",
            ArrivalProcess::Uniform { window: 0.02 },
        ),
    ];
    for (label, a) in arrivals {
        let mut cfg = base(opts);
        cfg.workload.arrivals = a;
        cfg.strategy = Strategy::NetAgg;
        let mut rack = cfg.clone();
        rack.strategy = Strategy::RackLevel;
        let rel = mean_p99(&cfg, FlowClass::All, opts.seeds())
            / mean_p99(&rack, FlowClass::All, opts.seeds());
        t.row(vec![label.to_string(), f(rel)]);
    }
    t.print();
}

#[allow(dead_code)]
pub fn scale_of(opts: &Options) -> SimScale {
    opts.scale
}
