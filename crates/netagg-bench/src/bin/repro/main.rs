//! `repro` — regenerate every table and figure of the NetAgg paper.
//!
//! Usage:
//! ```text
//! repro <target> [--quick|--paper] [--seeds N] [--metrics] [--trace OUT.json]
//! targets: fig2 fig3 tab1 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!          fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23
//!          fig24 fig25 fig26
//!          ablate-trees ablate-placement ablate-arrivals
//!          ablate-backpressure ablate-fanin ext-broadcast
//!          quick (trace-friendly smoke drive)   perf (BENCH_perf.json)
//!          sim-perf (BENCH_sim.json — 10,240-server simulator scaling)
//!          soak (BENCH_soak.json — §7-contract scenario soak; --quick
//!                runs the CI-sized section only)
//!          sim (fig2..fig14)   testbed (fig15..fig26)   all
//! ```
//!
//! `--trace OUT.json` enables the §11 causal tracer for the run and writes
//! Chrome trace-event JSON (plus per-request critical paths on stdout)
//! after the target completes.
//!
//! Absolute numbers differ from the paper (our substrate is an emulator on
//! one machine); the *shape* of each exhibit — who wins, by what factor,
//! where the crossovers fall — is the reproduction target. See
//! EXPERIMENTS.md for the paper-vs-measured record.

mod micro_figs;
mod mr_figs;
mod perf_figs;
mod search_figs;
mod sim_figs;
mod sim_perf;
mod soak;

use netagg_bench::sim::SimScale;

#[derive(Debug, Clone)]
pub struct Options {
    pub scale: SimScale,
    pub seeds: Option<u64>,
    /// Seconds per load point in testbed drives.
    pub drive_secs: f64,
    /// Dump the process-global metrics snapshot as JSON after the run.
    pub metrics: bool,
    /// Enable the §11 causal tracer and write Chrome trace JSON here.
    pub trace: Option<String>,
}

impl Options {
    pub fn seeds(&self) -> u64 {
        self.seeds.unwrap_or_else(|| self.scale.seeds())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut opts = Options {
        scale: SimScale::Default,
        seeds: None,
        drive_secs: 2.0,
        metrics: false,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                opts.scale = SimScale::Quick;
                opts.drive_secs = 0.8;
            }
            "--paper" => opts.scale = SimScale::Paper,
            "--metrics" => opts.metrics = true,
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.seeds = Some(n),
                None => usage("--seeds needs a number"),
            },
            "--drive-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.drive_secs = s,
                None => usage("--drive-secs needs a number"),
            },
            "--trace" => match it.next() {
                Some(p) => opts.trace = Some(p.clone()),
                None => usage("--trace needs an output path"),
            },
            t if !t.starts_with('-') && target.is_none() => target = Some(t.to_string()),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let Some(target) = target else {
        usage("missing target");
    };

    if opts.trace.is_some() {
        // Trace every request: a figure run is short enough that the
        // bounded span buffer is the backstop, not sampling.
        netagg_bench::obs::global().tracer().enable(1);
    }

    let sim_targets: &[&str] = &[
        "fig2",
        "fig3",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "ablate-trees",
        "ablate-placement",
        "ablate-arrivals",
    ];
    let testbed_targets: &[&str] = &[
        "tab1",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "fig23",
        "fig24",
        "fig25",
        "fig26",
        "ablate-backpressure",
        "ablate-fanin",
        "ext-broadcast",
    ];

    let run_one = |t: &str| match t {
        "fig2" => sim_figs::fig2(&opts),
        "fig3" => sim_figs::fig3(&opts),
        "fig6" => sim_figs::fig6(&opts),
        "fig7" => sim_figs::fig7(&opts),
        "fig8" => sim_figs::fig8(&opts),
        "fig9" => sim_figs::fig9(&opts),
        "fig10" => sim_figs::fig10(&opts),
        "fig11" => sim_figs::fig11(&opts),
        "fig12" => sim_figs::fig12(&opts),
        "fig13" => sim_figs::fig13(&opts),
        "fig14" => sim_figs::fig14(&opts),
        "ablate-trees" => sim_figs::ablate_trees(&opts),
        "ablate-placement" => sim_figs::ablate_placement(&opts),
        "ablate-arrivals" => sim_figs::ablate_arrivals(&opts),
        "ablate-backpressure" => micro_figs::ablate_backpressure(&opts),
        "ablate-fanin" => micro_figs::ablate_fanin(&opts),
        "ext-broadcast" => micro_figs::ext_broadcast(&opts),
        "tab1" => micro_figs::tab1(),
        "fig15" => micro_figs::fig15(&opts),
        "fig16" => search_figs::fig16(&opts),
        "fig17" => search_figs::fig17(&opts),
        "fig18" => search_figs::fig18(&opts),
        "fig19" => search_figs::fig19(&opts),
        "fig20" => search_figs::fig20(&opts),
        "fig21" => search_figs::fig21(&opts),
        "fig22" => mr_figs::fig22(&opts),
        "fig23" => mr_figs::fig23(&opts),
        "fig24" => mr_figs::fig24(&opts),
        "fig25" => micro_figs::fig25(&opts),
        "fig26" => micro_figs::fig26(&opts),
        "quick" => perf_figs::quick(&opts),
        "perf" => perf_figs::perf(&opts),
        "sim-perf" => sim_perf::sim_perf(&opts),
        "soak" => soak::soak(&opts),
        other => usage(&format!("unknown target {other}")),
    };

    match target.as_str() {
        "sim" => {
            for t in sim_targets {
                run_one(t);
            }
        }
        "testbed" => {
            for t in testbed_targets {
                run_one(t);
            }
        }
        "all" => {
            for t in sim_targets.iter().chain(testbed_targets) {
                run_one(t);
            }
        }
        t => run_one(t),
    }

    if opts.metrics {
        // Everything the figures built — emulated deployments, shims,
        // transports, simulation sweeps — publishes into this registry.
        println!("\n{}", netagg_bench::obs::global().snapshot().to_json());
    }

    if let Some(path) = &opts.trace {
        // `perf` drives private per-transport registries and exports its
        // own merged spans; every other target publishes into the global
        // registry, whose tracer we drain here.
        if target != "perf" {
            let tracer = netagg_bench::obs::global().tracer();
            perf_figs::write_trace(path, &tracer.spans());
            if tracer.dropped() > 0 {
                eprintln!(
                    "note: {} spans dropped at the {}-span buffer cap",
                    tracer.dropped(),
                    tracer.capacity()
                );
            }
        }
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: repro <fig2..fig26|tab1|ablate-*|quick|perf|sim-perf|soak|sim|testbed|all> [--quick|--paper] [--seeds N] [--drive-secs S] [--metrics] [--trace OUT.json]"
    );
    std::process::exit(2);
}
