//! `repro quick` / `repro perf` — the cross-transport trace drive and the
//! first workspace perf baseline (`BENCH_perf.json`).
//!
//! Both targets run the same closed-loop drive — the crate-level quick
//! topology (one rack, four workers, one box, max aggregation) — once per
//! transport: the in-process `ChannelTransport` and the loopback
//! `TcpTransport`. `quick` publishes into the process-global registry so
//! `--trace` exports a stitched causal tree per request (DESIGN.md §11);
//! `perf` runs each transport against its *own* registry so the reported
//! percentiles never mix transports, then writes `BENCH_perf.json`.

use crate::Options;
use netagg_bench::sim::SimScale;
use netagg_core::prelude::*;
use netagg_obs::trace::{self, SpanRecord};
use netagg_obs::MetricsRegistry;
use netagg_scenarios::{
    builtin_providers, ScenarioHarness, ScenarioSpec, SyntheticKind, TopologySpec,
    TransportProvider,
};
use std::time::Duration;

const WORKERS: u32 = 4;

/// One closed-loop drive: `requests` max-aggregations of `WORKERS`
/// partials each, through a single-rack deployment on a fresh transport
/// from `provider`, publishing into `registry`. Request ids start at
/// `base` so legs sharing one registry (the `quick` target) keep disjoint
/// trace ids. Returns the wall-clock elapsed time of the drive phase.
fn drive(
    provider: &dyn TransportProvider,
    registry: MetricsRegistry,
    base: u64,
    requests: u64,
) -> Result<Duration, AggError> {
    let spec = ScenarioSpec::new("perf-closed-loop", TopologySpec::single_rack(WORKERS, 1))
        .synthetic("max", SyntheticKind::Max, requests, 1.0)
        .with_request_base(base);
    let mut harness = ScenarioHarness::build_with_obs(&spec, provider, registry)?;
    harness.drive();
    let report = harness.finish();
    if !report.passed() {
        return Err(AggError::Corrupt(format!(
            "perf drive: {} failures, {} mismatches, violations {:?}",
            report.failures, report.mismatches, report.violations
        )));
    }
    Ok(report.elapsed)
}

/// `repro quick` — a short drive on both transports through the
/// process-global registry, so `--metrics` and `--trace` see everything.
pub fn quick(opts: &Options) {
    let requests = match opts.scale {
        SimScale::Quick => 3,
        _ => 10,
    };
    println!("# quick: {requests} aggregated requests per transport (quick topology)");
    for (i, provider) in builtin_providers().iter().enumerate() {
        let label = provider.label();
        let registry = netagg_bench::obs::global().clone();
        match drive(provider.as_ref(), registry, i as u64 * 1_000_000, requests) {
            Ok(elapsed) => println!(
                "  {label:<8} {requests} requests in {:.1} ms",
                elapsed.as_secs_f64() * 1e3
            ),
            Err(e) => println!("  {label:<8} FAILED: {e}"),
        }
    }
}

/// p-th percentile of an unsorted duration sample, in microseconds.
fn pctile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Per-transport measurements of one `perf` leg.
struct PerfLeg {
    label: &'static str,
    requests: u64,
    elapsed: Duration,
    frames_per_sec: f64,
    /// End-to-end request wait percentiles (µs), from
    /// `shim.master.request_wait_us`.
    e2e_us: (u64, u64, u64),
    /// Traced per-stage p99 (stage name → µs), sorted by name.
    stage_p99_us: Vec<(&'static str, f64)>,
}

fn run_leg(
    label: &'static str,
    provider: &dyn TransportProvider,
    base: u64,
    requests: u64,
) -> Result<(PerfLeg, Vec<SpanRecord>), AggError> {
    // A private registry per leg: percentiles and frame counts must not
    // bleed across transports (or in from other figures).
    let registry = MetricsRegistry::new();
    registry.tracer().enable(1);
    let elapsed = drive(provider, registry.clone(), base, requests)?;
    let snap = registry.snapshot();
    let wait = snap
        .histogram(netagg_obs::names::SHIM_MASTER_REQUEST_WAIT_US)
        .map(|h| (h.p50, h.p95, h.p99))
        .unwrap_or((0, 0, 0));
    let frames = snap
        .counter(netagg_obs::names::NET_FRAMES_SENT)
        .unwrap_or(0);
    let spans = registry.tracer().spans();
    let mut by_stage: std::collections::BTreeMap<&'static str, Vec<u64>> = Default::default();
    for s in &spans {
        by_stage.entry(s.name).or_default().push(s.dur_ns);
    }
    let stage_p99_us = by_stage
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            (name, pctile_us(&durs, 0.99))
        })
        .collect();
    Ok((
        PerfLeg {
            label,
            requests,
            elapsed,
            frames_per_sec: frames as f64 / elapsed.as_secs_f64().max(1e-9),
            e2e_us: wait,
            stage_p99_us,
        },
        spans,
    ))
}

/// One transport leg of the `BENCH_perf.json` object.
fn leg_json(out: &mut String, leg: &PerfLeg) {
    out.push_str(&format!(
        "    \"{}\": {{\n      \"requests\": {},\n      \"elapsed_secs\": {:.6},\n      \
         \"frames_per_sec\": {:.1},\n      \"e2e_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},\n      \
         \"stage_p99_us\": {{",
        leg.label,
        leg.requests,
        leg.elapsed.as_secs_f64(),
        leg.frames_per_sec,
        leg.e2e_us.0,
        leg.e2e_us.1,
        leg.e2e_us.2,
    ));
    for (i, (name, us)) in leg.stage_p99_us.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {us:.3}"));
    }
    out.push_str("}\n    }");
}

/// `repro perf` — the perf baseline: the quick topology driven closed-loop
/// on both transports, written to `BENCH_perf.json` (and stdout).
pub fn perf(opts: &Options) {
    let requests = match opts.scale {
        SimScale::Quick => 100,
        SimScale::Default => 500,
        SimScale::Paper => 2000,
    };
    println!("# perf: {requests} requests per transport, quick topology, {WORKERS} workers");
    let mut legs: Vec<PerfLeg> = Vec::new();
    let mut traced: Vec<SpanRecord> = Vec::new();
    for (i, provider) in builtin_providers().iter().enumerate() {
        let label = provider.label();
        match run_leg(label, provider.as_ref(), i as u64 * 1_000_000, requests) {
            Ok((leg, spans)) => {
                println!(
                    "  {:<8} {:>8.0} frames/s   e2e µs p50 {:>6} p95 {:>6} p99 {:>6}",
                    leg.label, leg.frames_per_sec, leg.e2e_us.0, leg.e2e_us.1, leg.e2e_us.2
                );
                for (name, us) in &leg.stage_p99_us {
                    println!("    {name:<24} p99 {us:>10.1} µs");
                }
                legs.push(leg);
                traced.extend(spans);
            }
            Err(e) => println!("  {label:<8} FAILED: {e}"),
        }
    }
    let mut json =
        String::from("{\n  \"bench\": \"perf\",\n  \"topology\": \"single_rack(4,1)\",\n");
    json.push_str(&format!("  \"requests_per_transport\": {requests},\n"));
    json.push_str("  \"transports\": {\n");
    for (i, leg) in legs.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        leg_json(&mut json, leg);
    }
    json.push_str("\n  }\n}\n");
    let path = "BENCH_perf.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("error: writing {path}: {e}"),
    }
    // `--trace` on the perf target exports the legs' private recorders
    // (main.rs skips its global-registry export for this target).
    if let Some(trace_path) = &opts.trace {
        write_trace(trace_path, &traced);
    }
}

/// Write spans as Chrome trace JSON and print the per-request critical
/// paths (a handful at most — dumps stay readable).
pub fn write_trace(path: &str, spans: &[SpanRecord]) {
    match std::fs::write(path, trace::chrome_trace_json(spans)) {
        Ok(()) => println!("wrote {path} ({} spans)", spans.len()),
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            return;
        }
    }
    let paths = trace::critical_paths(spans);
    for p in paths.iter().take(4) {
        print!("{}", p.to_text());
    }
    if paths.len() > 4 {
        println!("… and {} more traced requests", paths.len() - 4);
    }
}
