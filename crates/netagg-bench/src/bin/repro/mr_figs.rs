//! Map/reduce testbed figures (Fig. 22–24): the emulated counterpart of
//! the paper's Hadoop evaluation. The paper's setup: 10 mappers, one
//! reducer, one aggregation tree, shuffle+reduce time measured.

use crate::Options;
use minimr::cluster::{JobConfig, MRCluster};
use minimr::jobs::{wordcount_input, Benchmark, WordCount};
use netagg_bench::emu::{mr_deployment, TestbedConfig};
use netagg_bench::table::{f, rate, Table};
use netagg_core::shim::TreeSelection;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn testbed_cfg(boxes: u32, opts: &Options) -> TestbedConfig {
    TestbedConfig {
        workers_per_rack: match opts.scale {
            netagg_bench::sim::SimScale::Quick => 4,
            _ => 10,
        },
        boxes_per_rack: boxes,
        ..TestbedConfig::default()
    }
}

struct MrRun {
    shuffle_reduce: Duration,
    box_rate: f64,
    result: minimr::JobResult,
}

fn run_job_on(
    boxes: u32,
    job: Arc<dyn minimr::Job>,
    inputs: Vec<Vec<bytes::Bytes>>,
    opts: &Options,
) -> MrRun {
    let cfg = testbed_cfg(boxes, opts);
    let (mut dep, _transport) = mr_deployment(&cfg);
    let cluster = MRCluster::launch(&mut dep, job, TreeSelection::PerRequest, 1.0);
    let before: u64 = dep
        .boxes()
        .iter()
        .map(|b| b.stats().bytes_in.load(Ordering::Relaxed))
        .sum();
    let result = cluster
        .run(
            inputs,
            &JobConfig {
                request_id: 1,
                timeout: Duration::from_secs(300),
                ..JobConfig::default()
            },
        )
        .expect("job runs");
    let after: u64 = dep
        .boxes()
        .iter()
        .map(|b| b.stats().bytes_in.load(Ordering::Relaxed))
        .sum();
    let box_rate =
        (after - before) as f64 / result.shuffle_reduce_time.as_secs_f64().max(1e-9) / cfg.bw_scale;
    let out = MrRun {
        shuffle_reduce: result.shuffle_reduce_time,
        box_rate,
        result,
    };
    dep.shutdown();
    out
}

fn total_bytes(opts: &Options) -> usize {
    match opts.scale {
        netagg_bench::sim::SimScale::Quick => 300_000,
        _ => 2_000_000,
    }
}

fn mappers(opts: &Options) -> usize {
    testbed_cfg(0, opts).workers_per_rack as usize
}

/// Fig. 22: the five benchmarks — shuffle+reduce time of NetAgg relative
/// to plain, plus the agg-box processing rate.
pub fn fig22(opts: &Options) {
    let mut t = Table::new(
        "Fig 22: Hadoop benchmarks, shuffle+reduce time and box rate",
        &[
            "job",
            "plain SRT (s)",
            "netagg SRT (s)",
            "netagg/plain",
            "box rate",
        ],
    );
    for bench in Benchmark::ALL {
        let inputs = bench.input(mappers(opts), total_bytes(opts), 42);
        let plain = run_job_on(0, bench.job(), inputs.clone(), opts);
        let netagg = run_job_on(1, bench.job(), inputs, opts);
        assert!(
            minimr::types::outputs_equivalent(&plain.result.output, &netagg.result.output),
            "{}: outputs must agree (up to float rounding)",
            bench.label()
        );
        t.row(vec![
            bench.label().to_string(),
            f(plain.shuffle_reduce.as_secs_f64()),
            f(netagg.shuffle_reduce.as_secs_f64()),
            f(netagg.shuffle_reduce.as_secs_f64() / plain.shuffle_reduce.as_secs_f64()),
            rate(netagg.box_rate),
        ]);
    }
    t.print();
}

/// Fig. 23: WordCount shuffle+reduce time vs output ratio, controlled by
/// the input's word repetition.
pub fn fig23(opts: &Options) {
    let mut t = Table::new(
        "Fig 23: WordCount SRT vs output ratio (word repetition)",
        &[
            "distinct words",
            "achieved alpha",
            "plain SRT (s)",
            "netagg SRT (s)",
            "netagg/plain",
        ],
    );
    let m = mappers(opts);
    let bytes = total_bytes(opts);
    for distinct in [50usize, 500, 5_000, 50_000] {
        let inputs = wordcount_input(m, bytes / m, distinct, 42);
        let plain = run_job_on(0, Arc::new(WordCount), inputs.clone(), opts);
        let netagg = run_job_on(1, Arc::new(WordCount), inputs, opts);
        t.row(vec![
            distinct.to_string(),
            f(netagg.result.reduction_ratio()),
            f(plain.shuffle_reduce.as_secs_f64()),
            f(netagg.shuffle_reduce.as_secs_f64()),
            f(netagg.shuffle_reduce.as_secs_f64() / plain.shuffle_reduce.as_secs_f64()),
        ]);
    }
    t.print();
}

/// Fig. 24: absolute shuffle+reduce time vs intermediate data size
/// (alpha fixed around 10 %).
pub fn fig24(opts: &Options) {
    let mut t = Table::new(
        "Fig 24: WordCount SRT vs intermediate data size (alpha ~ 10%)",
        &["input (MB)", "plain SRT (s)", "netagg SRT (s)", "speedup"],
    );
    let m = mappers(opts);
    let sizes: Vec<usize> = match opts.scale {
        netagg_bench::sim::SimScale::Quick => vec![200_000, 400_000],
        _ => vec![500_000, 1_000_000, 2_000_000, 4_000_000],
    };
    for bytes in sizes {
        let inputs = wordcount_input(m, bytes / m, 2_000, 42);
        let plain = run_job_on(0, Arc::new(WordCount), inputs.clone(), opts);
        let netagg = run_job_on(1, Arc::new(WordCount), inputs, opts);
        t.row(vec![
            f(bytes as f64 / 1e6),
            f(plain.shuffle_reduce.as_secs_f64()),
            f(netagg.shuffle_reduce.as_secs_f64()),
            f(plain.shuffle_reduce.as_secs_f64() / netagg.shuffle_reduce.as_secs_f64()),
        ]);
    }
    t.print();
}
