//! Minimal aligned-column table printer for harness output.

/// A printable table: header plus rows of strings.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
        // Optional machine-readable export for plotting: set NETAGG_CSV_DIR
        // to also write each table as a CSV file named after its title.
        if let Ok(dir) = std::env::var("NETAGG_CSV_DIR") {
            if let Err(e) = self.write_csv(std::path::Path::new(&dir)) {
                eprintln!("warning: CSV export failed: {e}");
            }
        }
    }

    /// Slug of the title usable as a file name.
    fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-")
    }

    pub fn to_csv(&self) -> String {
        let escape = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the table as `<dir>/<slug>.csv`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.slug())), self.to_csv())
    }
}

/// Format a float with 3 significant decimals.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format bytes/s as human-readable Mbps/Gbps (of the *emulated* network
/// when multiplied back by the bandwidth scale).
pub fn rate(bytes_per_sec: f64) -> String {
    let bits = bytes_per_sec * 8.0;
    if bits >= 1e9 {
        format!("{:.2} Gbps", bits / 1e9)
    } else if bits >= 1e6 {
        format!("{:.1} Mbps", bits / 1e6)
    } else {
        format!("{:.0} kbps", bits / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_export_roundtrips_structure() {
        let mut t = Table::new("Fig 99: demo, with comma", &["a", "b"]);
        t.row(vec!["1".into(), "two, three".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "a,b");
        assert!(lines[1].contains("\"two, three\""));
        assert_eq!(t.slug(), "fig-99-demo-with-comma");
        let dir = std::env::temp_dir().join(format!("netagg-csv-test-{}", std::process::id()));
        t.write_csv(&dir).unwrap();
        let written = std::fs::read_to_string(dir.join("fig-99-demo-with-comma.csv")).unwrap();
        assert_eq!(written, csv);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(42.0), "42.0");
        assert_eq!(f(1234.0), "1234");
        assert!(rate(125e6).contains("Gbps"));
        assert!(rate(125e3).contains("Mbps"));
    }
}
