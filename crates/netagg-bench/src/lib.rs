//! Shared harness utilities for regenerating the paper's tables and
//! figures: simulation sweep helpers, emulated-testbed builders and a
//! plain-text table printer.

pub mod emu;
pub mod obs;
pub mod sim;
pub mod table;

/// Default bandwidth scale of the emulated testbed: a "1 Gbps" edge link
/// becomes 1.25 MB/s so experiments finish in seconds while every capacity
/// ratio (edge : box = 1 : 10) is preserved.
pub const DEFAULT_BW_SCALE: f64 = 1e-2;

/// Emulated "1 Gbps" in bytes/s (before scaling).
pub const GBPS: f64 = 1e9 / 8.0;
