//! Emulated-testbed builders: wire search / map-reduce clusters over an
//! [`EmuNet`] with the paper's link capacities (1 Gbps edge servers,
//! 10 Gbps agg boxes), scaled down uniformly for wall-clock speed.

use crate::{DEFAULT_BW_SCALE, GBPS};
use minisearch::corpus::CorpusConfig;
use minisearch::frontend::{frontend_service_addr, Client, FrontendConfig};
use minisearch::netagg::{SearchCluster, SearchFunction};
use netagg_core::aggbox::scheduler::SchedulerConfig;
use netagg_core::prelude::*;
use netagg_core::runtime::{DeploymentConfig, NetAggDeployment};
use netagg_core::shim::TreeSelection;
use netagg_core::tree;
use netagg_net::{EmuNet, Transport};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Testbed sizing and options.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    pub racks: u32,
    pub workers_per_rack: u32,
    pub boxes_per_rack: u32,
    pub num_trees: u32,
    /// Scheduler threads per box (the paper's scale-up knob, Fig. 21).
    pub box_threads: usize,
    pub bw_scale: f64,
    /// How many client NICs to declare.
    pub max_clients: u32,
    pub selection: TreeSelection,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            racks: 1,
            workers_per_rack: 10,
            boxes_per_rack: 1,
            num_trees: 1,
            box_threads: 8,
            bw_scale: DEFAULT_BW_SCALE,
            max_clients: 64,
            selection: TreeSelection::PerRequest,
        }
    }
}

impl TestbedConfig {
    pub fn cluster_spec(&self) -> ClusterSpec {
        ClusterSpec::multi_rack(self.racks, self.workers_per_rack, self.boxes_per_rack)
            .with_trees(self.num_trees)
    }
}

/// Build the emulated network for up to two applications sharing the
/// physical cluster: servers at 1 Gbps, boxes at 10 Gbps, clients at
/// 1 Gbps, all scaled by `bw_scale`. Shim and service addresses of the
/// same physical server share one NIC.
pub fn build_emu(cfg: &TestbedConfig, apps: &[AppId]) -> EmuNet {
    let spec = cfg.cluster_spec();
    let mut builder = EmuNet::builder().bandwidth_scale(cfg.bw_scale);
    for b in 0..spec.total_boxes() {
        builder = builder.endpoint(tree::box_addr(b), 10.0 * GBPS);
    }
    for &app in apps {
        builder = builder.endpoint(tree::master_addr(app), GBPS);
        for w in spec.all_workers() {
            builder = builder.endpoint(tree::worker_addr(app, w), GBPS);
        }
        for c in 0..cfg.max_clients {
            builder = builder.endpoint(tree::client_addr(app, c), GBPS);
        }
    }
    let emu = builder.build();
    for &app in apps {
        // The frontend listener shares the master server's NIC; backend
        // query listeners share their worker server's NIC.
        emu.alias(frontend_service_addr(app), tree::master_addr(app))
            .expect("master NIC declared");
        for w in spec.all_workers() {
            emu.alias(tree::service_addr(app, w), tree::worker_addr(app, w))
                .expect("worker NIC declared");
        }
    }
    emu
}

/// A fully wired emulated search testbed.
pub struct SearchTestbed {
    pub deployment: NetAggDeployment,
    pub cluster: SearchCluster,
    pub transport: Arc<dyn Transport>,
    pub cfg: TestbedConfig,
}

/// Launch a search cluster on an emulated testbed.
pub fn search_testbed(
    cfg: TestbedConfig,
    corpus: &CorpusConfig,
    function: SearchFunction,
    backend_k: u32,
) -> SearchTestbed {
    // The search app will be AppId(0): endpoints are declared up front.
    let emu = build_emu(&cfg, &[AppId(0)]);
    let transport: Arc<dyn Transport> = Arc::new(emu);
    let mut deployment = NetAggDeployment::launch_with_obs(
        transport.clone(),
        &cfg.cluster_spec(),
        DeploymentConfig {
            scheduler: SchedulerConfig {
                threads: cfg.box_threads,
                ..SchedulerConfig::default()
            },
            selection: cfg.selection,
            ..DeploymentConfig::default()
        },
        crate::obs::global().clone(),
    )
    .expect("launch deployment");
    let cluster = SearchCluster::launch(
        &mut deployment,
        transport.clone(),
        corpus,
        function,
        FrontendConfig {
            backend_k,
            timeout: Duration::from_secs(60),
        },
        1.0,
    )
    .expect("launch search cluster");
    SearchTestbed {
        deployment,
        cluster,
        transport,
        cfg,
    }
}

/// Result of one closed-loop client drive.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Aggregate partial-result traffic rate produced by the backends
    /// (the paper's "network throughput"), bytes/s of emulated network.
    pub throughput: f64,
    pub completed: u64,
    pub median_latency: Duration,
    pub p99_latency: Duration,
}

/// Drive the testbed with `clients` closed-loop clients for `duration`.
pub fn drive_search(testbed: &SearchTestbed, clients: u32, duration: Duration) -> LoadResult {
    assert!(clients <= testbed.cfg.max_clients);
    let before_bytes: u64 = testbed
        .cluster
        .backends
        .iter()
        .map(|b| b.stats().result_bytes.load(Ordering::Relaxed))
        .sum();
    let app = testbed.cluster.app;
    let vocab = testbed.cluster.corpus_vocabulary;
    let deadline = Instant::now() + duration;
    let t0 = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let transport = testbed.transport.clone();
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let Ok(mut client) = Client::connect(&transport, app, c, vocab) else {
                        return lat;
                    };
                    while Instant::now() < deadline {
                        match client.query_once(Duration::from_secs(60)) {
                            Ok((_, l)) => lat.push(l),
                            Err(_) => break,
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let after_bytes: u64 = testbed
        .cluster
        .backends
        .iter()
        .map(|b| b.stats().result_bytes.load(Ordering::Relaxed))
        .sum();
    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort();
    let pick = |p: f64| -> Duration {
        if all.is_empty() {
            Duration::ZERO
        } else {
            all[((all.len() - 1) as f64 * p) as usize]
        }
    };
    LoadResult {
        // Scale back up to the emulated network's nominal rates.
        throughput: (after_bytes - before_bytes) as f64 / elapsed / testbed.cfg.bw_scale,
        completed: all.len() as u64,
        median_latency: pick(0.5),
        p99_latency: pick(0.99),
    }
}

/// Launch a map-reduce deployment on an emulated testbed (app 0).
pub fn mr_deployment(cfg: &TestbedConfig) -> (NetAggDeployment, Arc<dyn Transport>) {
    let emu = build_emu(cfg, &[AppId(0)]);
    let transport: Arc<dyn Transport> = Arc::new(emu);
    let deployment = NetAggDeployment::launch_with_obs(
        transport.clone(),
        &cfg.cluster_spec(),
        DeploymentConfig {
            scheduler: SchedulerConfig {
                threads: cfg.box_threads,
                ..SchedulerConfig::default()
            },
            selection: cfg.selection,
            ..DeploymentConfig::default()
        },
        crate::obs::global().clone(),
    )
    .expect("launch deployment");
    (deployment, transport)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulated_search_testbed_serves_queries() {
        let cfg = TestbedConfig {
            workers_per_rack: 3,
            bw_scale: 1e-1, // fast links for the unit test
            max_clients: 2,
            ..TestbedConfig::default()
        };
        let mut tb = search_testbed(
            cfg,
            &CorpusConfig {
                num_docs: 120,
                vocabulary: 500,
                mean_words: 30,
                markers_per_doc: 3,
                seed: 1,
            },
            SearchFunction::TopK { k: 10 },
            20,
        );
        let r = drive_search(&tb, 2, Duration::from_millis(600));
        assert!(r.completed > 0, "no queries completed");
        assert!(r.throughput > 0.0);
        assert!(r.p99_latency >= r.median_latency);
        tb.cluster.shutdown();
        tb.deployment.shutdown();
    }
}
