//! Simulation sweep helpers: run configurations over several seeds and
//! report seed-averaged metrics, normalised against the rack-level
//! baseline as the paper does.

use netagg_sim::metrics::FlowClass;
use netagg_sim::{run_experiment_with_obs, ExperimentConfig, SimResult, Strategy};

/// Scale of the sweeps: `quick` shrinks workloads for CI, `full` uses the
/// paper-scale topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimScale {
    Quick,
    Default,
    Paper,
}

impl SimScale {
    pub fn base_config(&self) -> ExperimentConfig {
        match self {
            // Flow counts are calibrated so the fabric is contended (the
            // paper starts all flows at once as a worst case and sizes the
            // workload to a loaded edge); under-loading the fabric inverts
            // the comparison because on-path boxes concentrate traffic.
            SimScale::Quick => {
                let mut c = ExperimentConfig::default_scale();
                c.workload.num_flows = 1_200;
                c
            }
            SimScale::Default => {
                let mut c = ExperimentConfig::default_scale();
                c.workload.num_flows = 2_400;
                c
            }
            SimScale::Paper => {
                let mut c = ExperimentConfig::paper();
                c.workload.num_flows = 9_000;
                c
            }
        }
    }

    pub fn seeds(&self) -> u64 {
        match self {
            SimScale::Quick => 2,
            SimScale::Default => 3,
            SimScale::Paper => 3,
        }
    }
}

/// Run a configuration over `seeds` seeds; return the mean 99th-percentile
/// FCT of `class`.
pub fn mean_p99(cfg: &ExperimentConfig, class: FlowClass, seeds: u64) -> f64 {
    let mut total = 0.0;
    for s in 0..seeds {
        let mut c = cfg.clone();
        c.workload.seed = 42 + s * 1_000;
        total += run_experiment_with_obs(&c, crate::obs::global()).fct_p99(class);
    }
    total / seeds as f64
}

/// 99th FCT of `cfg` relative to the same workload under rack-level
/// aggregation (the paper's normalisation).
pub fn p99_relative_to_rack(cfg: &ExperimentConfig, class: FlowClass, seeds: u64) -> f64 {
    let mut rack = cfg.clone();
    rack.strategy = Strategy::RackLevel;
    let rack_p99 = mean_p99(&rack, class, seeds);
    let this = mean_p99(cfg, class, seeds);
    this / rack_p99
}

/// One full run for CDF-style figures (single seed, deterministic).
pub fn single_run(cfg: &ExperimentConfig) -> SimResult {
    run_experiment_with_obs(cfg, crate::obs::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_p99_is_positive_and_stable() {
        let mut cfg = ExperimentConfig::quick();
        cfg.workload.num_flows = 150;
        let a = mean_p99(&cfg, FlowClass::All, 2);
        let b = mean_p99(&cfg, FlowClass::All, 2);
        assert!(a > 0.0);
        assert_eq!(a, b, "same seeds give identical results");
    }

    #[test]
    fn relative_to_rack_of_rack_is_one() {
        let mut cfg = ExperimentConfig::quick();
        cfg.workload.num_flows = 150;
        cfg.strategy = Strategy::RackLevel;
        let rel = p99_relative_to_rack(&cfg, FlowClass::All, 2);
        assert!((rel - 1.0).abs() < 1e-12);
    }
}
