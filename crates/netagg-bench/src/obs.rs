//! Process-wide metrics registry for the benchmark binaries.
//!
//! The `repro` figures build deployments and run simulations deep inside
//! the figure drivers; rather than thread a registry through every one,
//! the harness publishes everything into a single process-global
//! [`MetricsRegistry`]. `repro --metrics` dumps it as JSON after the
//! figure completes. Counters accumulate across seeds and load points of
//! a figure, which is what you want for a per-figure traffic/latency
//! record (see EXPERIMENTS.md).

use netagg_obs::MetricsRegistry;
use std::sync::OnceLock;

/// The process-global registry all testbeds and simulation sweeps in this
/// crate publish into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
