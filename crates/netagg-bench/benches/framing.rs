//! Criterion bench: frame codec throughput (the KryoNet-equivalent layer).

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netagg_net::framing::{encode_frame, FrameDecoder};

fn bench_framing(c: &mut Criterion) {
    let payload = vec![0xabu8; 16 * 1024];
    let frames = 64usize;
    let mut g = c.benchmark_group("framing");
    g.throughput(Throughput::Bytes((payload.len() * frames) as u64));
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            for _ in 0..frames {
                encode_frame(&payload, &mut buf).unwrap();
            }
            let mut dec = FrameDecoder::new();
            dec.feed(&buf);
            let mut n = 0;
            while let Some(f) = dec.next_frame().unwrap() {
                n += f.len();
            }
            n
        });
    });
    g.finish();
}

criterion_group!(benches, bench_framing);
criterion_main!(benches);
