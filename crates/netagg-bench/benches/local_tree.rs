//! Criterion bench: local aggregation tree throughput (complements the
//! paper's Fig. 15 micro-benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minimr::jobs::WordCount;
use minimr::netagg::CombinerAgg;
use minimr::seqfile;
use minimr::types::{u64_value, Pair};
use netagg_core::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use netagg_core::aggbox::tree::LocalAggTree;
use netagg_core::protocol::AppId;
use netagg_core::AggWrapper;
use std::sync::Arc;
use std::time::Duration;

fn batch(pairs: usize) -> bytes::Bytes {
    let distinct = (pairs / 10).max(1);
    let items: Vec<Pair> = (0..pairs)
        .map(|i| Pair::new(format!("word{:06}", i % distinct), u64_value(1)))
        .collect();
    seqfile::encode(&items)
}

fn bench_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_agg_tree");
    let b = batch(512);
    let batches = 32usize;
    g.throughput(Throughput::Bytes((b.len() * batches) as u64));
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let sched = Arc::new(TaskScheduler::new(SchedulerConfig {
                        threads,
                        ..SchedulerConfig::default()
                    }));
                    sched.register_app(AppId(1), 1.0);
                    let tree = LocalAggTree::new(
                        Arc::new(AggWrapper::new(CombinerAgg::new(Arc::new(WordCount)))),
                        8,
                    );
                    for _ in 0..batches {
                        tree.push(&sched, AppId(1), b.clone());
                    }
                    tree.end_input(&sched, AppId(1));
                    tree.wait_complete(Duration::from_secs(60)).unwrap()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
