//! Criterion bench: sequence-file codec and combiner throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minimr::job::combine_pairs;
use minimr::jobs::WordCount;
use minimr::seqfile;
use minimr::types::{u64_value, Pair};

fn bench_shuffle(c: &mut Criterion) {
    let pairs: Vec<Pair> = (0..10_000)
        .map(|i| Pair::new(format!("word{:06}", i % 1_000), u64_value(1)))
        .collect();
    let encoded = seqfile::encode(&pairs);
    let mut g = c.benchmark_group("shuffle");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("seqfile_encode", |b| b.iter(|| seqfile::encode(&pairs)));
    g.bench_function("seqfile_decode", |b| {
        b.iter(|| seqfile::decode(&encoded).unwrap())
    });
    g.bench_function("combine_wordcount", |b| {
        b.iter(|| combine_pairs(&WordCount, pairs.clone()));
    });
    g.finish();
}

criterion_group!(benches, bench_shuffle);
criterion_main!(benches);
