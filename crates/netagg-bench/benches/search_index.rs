//! Criterion bench: index build and BM25 query throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use minisearch::corpus::{Corpus, CorpusConfig};
use minisearch::index::InvertedIndex;
use minisearch::score::search;

fn bench_index(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: 800,
        vocabulary: 5_000,
        mean_words: 80,
        markers_per_doc: 4,
        seed: 3,
    });
    let mut g = c.benchmark_group("search");
    g.sample_size(20);
    g.bench_function("build_index", |b| {
        b.iter(|| InvertedIndex::build(&corpus.docs));
    });
    let idx = InvertedIndex::build(&corpus.docs);
    let terms: Vec<String> = vec!["x1".into(), "x5".into(), "x42".into()];
    g.bench_function("bm25_query_top100", |b| {
        b.iter(|| search(&idx, &terms, 100));
    });
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
