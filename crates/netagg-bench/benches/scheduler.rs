//! Criterion bench: cooperative scheduler dispatch overhead and fairness
//! machinery under multi-application load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netagg_core::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use netagg_core::protocol::AppId;
use std::time::Duration;

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    let tasks = 5_000u64;
    g.throughput(Throughput::Elements(tasks));
    for apps in [1u16, 4] {
        g.bench_with_input(BenchmarkId::new("apps", apps), &apps, |b, &apps| {
            b.iter(|| {
                let s = TaskScheduler::new(SchedulerConfig {
                    threads: 2,
                    adaptive: true,
                    ema_alpha: 0.2,
                    seed: 1,
                });
                for a in 0..apps {
                    s.register_app(AppId(a), 1.0);
                }
                for i in 0..tasks {
                    s.submit(AppId((i % apps as u64) as u16), Box::new(|| {}));
                }
                assert!(s.wait_idle(Duration::from_secs(60)));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
