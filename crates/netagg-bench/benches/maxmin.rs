//! Criterion bench: one full fluid-simulation run (dominated by the
//! heap-based max-min allocator).

use criterion::{criterion_group, criterion_main, Criterion};
use netagg_sim::{run_experiment, ExperimentConfig, Strategy};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for (label, strategy) in [("rack", Strategy::RackLevel), ("netagg", Strategy::NetAgg)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::quick();
                cfg.workload.num_flows = 300;
                cfg.strategy = strategy;
                run_experiment(&cfg).makespan
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
