//! Provider parity: one [`ScenarioSpec`] with a seeded kill schedule must
//! produce the same recovery outcome on the channel transport and on the
//! TCP sharded reactor, differing only in timing. This is the fence on
//! the [`TransportProvider`] contract: scenarios describe behaviour, not
//! transports.

use netagg_scenarios::{
    builtin_providers, run_scenario, Impairment, ScenarioSpec, SyntheticKind, TopologySpec,
};

fn seeded_kill_spec() -> ScenarioSpec {
    ScenarioSpec::new("parity-seeded-kill", TopologySpec::single_rack(4, 1))
        .synthetic("sum", SyntheticKind::Sum, 250, 2.0)
        .synthetic("topk", SyntheticKind::TopK { k: 4 }, 150, 1.0)
        // The box dies after a seeded number of delivered frames, so the
        // kill lands mid-aggregation and forces replay recovery.
        .impair(Impairment::SeededBoxKill {
            slot: 0,
            frames_lo: 40,
            frames_hi: 320,
        })
        .with_fast_detector()
        .with_inflight(4)
        .with_seed(0x9A21_7E57)
}

#[test]
fn seeded_kill_schedule_recovers_identically_on_both_transports() {
    let spec = seeded_kill_spec();
    let mut reports = Vec::new();
    for provider in builtin_providers() {
        let report = run_scenario(&spec, provider.as_ref()).unwrap();
        assert!(
            report.passed(),
            "{}: failures={} mismatches={} violations={:?}",
            provider.label(),
            report.failures,
            report.mismatches,
            report.violations
        );
        assert_eq!(
            report.requests_completed,
            spec.total_requests(),
            "{}: every request must complete exactly despite the kill",
            provider.label()
        );
        assert!(
            report.detections >= 1,
            "{}: the detector never noticed the seeded kill",
            provider.label()
        );
        assert!(
            report.repoints >= 1,
            "{}: recovery never re-pointed around the dead box",
            provider.label()
        );
        reports.push(report);
    }
    // The seeded draw comes from the spec's seed, not the transport: both
    // providers must have armed the *same* fault step.
    let armed: Vec<&String> = reports
        .iter()
        .map(|r| {
            r.impairments_applied
                .iter()
                .find(|l| l.contains("seeded kill"))
                .expect("seeded kill was armed")
        })
        .collect();
    assert_eq!(
        armed[0], armed[1],
        "channel and tcp drew different seeded kill points"
    );
}
