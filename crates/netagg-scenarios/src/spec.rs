//! [`ScenarioSpec`]: the declarative description of one NetAgg run.
//!
//! A spec names a topology, a workload mix (synthetic aggregations plus
//! the two real applications) and an impairment schedule, all seeded, so
//! one value runs bit-identically — same request ids, same payloads, same
//! armed fault steps — against any [`crate::TransportProvider`]. The
//! schema is documented in DESIGN.md §14.

use minisearch::corpus::CorpusConfig;
use netagg_core::failure::DetectorConfig;
use netagg_core::runtime::DeploymentConfig;
use netagg_core::tree::ClusterSpec;
use std::time::Duration;

/// Physical topology, in the paper's two-tier shape (racks of workers,
/// agg boxes on the rack switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    /// Number of racks.
    pub racks: u32,
    /// Workers hosted per rack.
    pub workers_per_rack: u32,
    /// Agg boxes attached to each rack switch (0 = plain baseline).
    pub boxes_per_rack: u32,
    /// Aggregation trees per application (Section 3.1).
    pub trees: u32,
}

impl TopologySpec {
    /// One rack of `workers` workers and `boxes` boxes.
    pub fn single_rack(workers: u32, boxes: u32) -> Self {
        Self {
            racks: 1,
            workers_per_rack: workers,
            boxes_per_rack: boxes,
            trees: 1,
        }
    }

    /// `racks` racks of `workers_per_rack` workers, `boxes_per_rack`
    /// boxes each; master in rack 0.
    pub fn multi_rack(racks: u32, workers_per_rack: u32, boxes_per_rack: u32) -> Self {
        Self {
            racks,
            workers_per_rack,
            boxes_per_rack,
            trees: 1,
        }
    }

    /// Use `trees` aggregation trees per application.
    pub fn with_trees(mut self, trees: u32) -> Self {
        self.trees = trees;
        self
    }

    /// Total workers across all racks.
    pub fn total_workers(&self) -> u32 {
        self.racks * self.workers_per_rack
    }

    /// Total agg boxes across all racks.
    pub fn total_boxes(&self) -> u32 {
        self.racks * self.boxes_per_rack
    }

    /// Expand into the runtime's [`ClusterSpec`].
    pub fn cluster(&self) -> ClusterSpec {
        if self.racks == 1 {
            ClusterSpec::single_rack(self.workers_per_rack, self.boxes_per_rack)
                .with_trees(self.trees)
        } else {
            ClusterSpec::multi_rack(self.racks, self.workers_per_rack, self.boxes_per_rack)
                .with_trees(self.trees)
        }
    }
}

/// Aggregation function of a synthetic (shim-driven) workload. Every kind
/// has a closed-form expected result per request, so the runner verifies
/// *exactness* — not just completion — under every impairment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// Sum of decimal integers; workers contribute `worker_value`.
    Sum,
    /// Max of decimal integers.
    Max,
    /// Top-k of `score|label` candidates; the runner checks the winner.
    TopK {
        /// Candidates retained by the aggregate.
        k: usize,
    },
}

/// One application in the scenario's workload mix.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name (also the deployment registration name).
    pub name: String,
    /// WFQ share on the boxes' schedulers.
    pub share: f64,
    /// What the application does.
    pub workload: Workload,
}

/// Workload families runnable from a spec.
#[derive(Debug, Clone)]
pub enum Workload {
    /// `requests` closed-loop aggregations driven straight through the
    /// master/worker shims, verified exactly per request.
    Synthetic {
        /// Aggregation function.
        kind: SyntheticKind,
        /// Requests to issue.
        requests: u64,
    },
    /// `queries` top-k searches against a seeded minisearch cluster.
    Search {
        /// Queries to issue.
        queries: u64,
        /// Corpus to generate and shard over the workers.
        corpus: CorpusConfig,
        /// Results per query.
        k: usize,
        /// Top-k each backend returns (≥ `k`; a deeper backend cut
        /// improves merge quality at more shuffle bytes).
        backend_k: usize,
    },
    /// `jobs` minimr wordcount jobs over a small fixed input split.
    MapReduce {
        /// Jobs to run.
        jobs: u64,
    },
}

impl Workload {
    /// Requests this workload contributes to the scenario total.
    pub fn requests(&self) -> u64 {
        match self {
            Workload::Synthetic { requests, .. } => *requests,
            Workload::Search { queries, .. } => *queries,
            Workload::MapReduce { jobs } => *jobs,
        }
    }
}

/// One entry of the impairment schedule. Request-indexed triggers fire
/// when the *global* issued-request count crosses the threshold; frame
/// triggers arm a seeded [`netagg_net::FaultStep`] at run start. All of
/// them compile down to the deterministic `FaultController` machinery, so
/// a schedule replays exactly from the spec's seed.
#[derive(Debug, Clone)]
pub enum Impairment {
    /// Kill box `slot` after N frames have been delivered to it, with N
    /// drawn from `[frames_lo, frames_hi)` by the scenario's seeded RNG —
    /// the "loss" case: in-flight frames die with the box and must be
    /// recovered by replay.
    SeededBoxKill {
        /// Index into the deployment's box list.
        slot: usize,
        /// Lower bound (inclusive) of the seeded frame draw.
        frames_lo: u64,
        /// Upper bound (exclusive) of the seeded frame draw.
        frames_hi: u64,
    },
    /// Kill box `slot` once `after_requests` requests have been issued —
    /// the failover case.
    BoxKill {
        /// Index into the deployment's box list.
        slot: usize,
        /// Global issued-request threshold.
        after_requests: u64,
    },
    /// Kill every box in `slots` at `at_requests`, then revive them
    /// `heal_after_requests` later. Routing stays failed over (re-points
    /// are one-way); the heal restores liveness so the scenario fences
    /// that a healed partition cannot corrupt results.
    Partition {
        /// Box slots on the far side of the partition.
        slots: Vec<usize>,
        /// Global issued-request threshold for the cut.
        at_requests: u64,
        /// Issued requests after the cut at which the partition heals.
        heal_after_requests: u64,
    },
    /// Add `delay_ms` to every send from the selected workers between the
    /// two request thresholds — congestion / straggler storm.
    StragglerStorm {
        /// Global worker indexes to slow down.
        workers: Vec<u32>,
        /// Per-send delay while the storm lasts.
        delay_ms: u64,
        /// Global issued-request threshold at which the storm starts.
        from_requests: u64,
        /// Global issued-request threshold at which it clears.
        until_requests: u64,
    },
}

/// The declarative description of one scenario run (DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name, used in reports and artifacts.
    pub name: String,
    /// Physical topology.
    pub topology: TopologySpec,
    /// Platform tuning (scheduler, fan-in, stragglers, flush).
    pub tuning: DeploymentConfig,
    /// Failure detection; required when the impairment schedule kills
    /// boxes (the builder asserts this at run time).
    pub detector: Option<DetectorConfig>,
    /// The workload mix.
    pub apps: Vec<AppSpec>,
    /// The impairment schedule.
    pub impairments: Vec<Impairment>,
    /// Seed for payloads, query mixes and seeded fault steps.
    pub seed: u64,
    /// Per-app window of in-flight synthetic requests (closed loop = 1).
    pub inflight: usize,
    /// Per-request completion deadline before the runner counts a
    /// failure.
    pub wait_timeout: Duration,
    /// Request-id offset, kept per-app-disjoint by the runner (trace ids
    /// derive from request ids, so parallel legs stay distinguishable).
    pub request_base: u64,
}

impl ScenarioSpec {
    /// A spec with no apps and no impairments on `topology`.
    pub fn new(name: impl Into<String>, topology: TopologySpec) -> Self {
        Self {
            name: name.into(),
            topology,
            tuning: DeploymentConfig::default(),
            detector: None,
            apps: Vec::new(),
            impairments: Vec::new(),
            seed: 0xC0FFEE,
            inflight: 1,
            wait_timeout: Duration::from_secs(30),
            request_base: 0,
        }
    }

    /// Add a synthetic workload app.
    pub fn synthetic(mut self, name: &str, kind: SyntheticKind, requests: u64, share: f64) -> Self {
        self.apps.push(AppSpec {
            name: name.into(),
            share,
            workload: Workload::Synthetic { kind, requests },
        });
        self
    }

    /// Add a minisearch app (backends return 3·k candidates each).
    pub fn search(self, queries: u64, corpus: CorpusConfig, k: usize, share: f64) -> Self {
        self.search_with_backend_k(queries, corpus, k, 3 * k, share)
    }

    /// Add a minisearch app with an explicit per-backend cut.
    pub fn search_with_backend_k(
        mut self,
        queries: u64,
        corpus: CorpusConfig,
        k: usize,
        backend_k: usize,
        share: f64,
    ) -> Self {
        self.apps.push(AppSpec {
            name: "minisearch".into(),
            share,
            workload: Workload::Search {
                queries,
                corpus,
                k,
                backend_k,
            },
        });
        self
    }

    /// Add a minimr wordcount app.
    pub fn mapreduce(mut self, jobs: u64, share: f64) -> Self {
        self.apps.push(AppSpec {
            name: "minimr-wc".into(),
            share,
            workload: Workload::MapReduce { jobs },
        });
        self
    }

    /// Append an impairment.
    pub fn impair(mut self, i: Impairment) -> Self {
        self.impairments.push(i);
        self
    }

    /// Arm failure detection (fast probes suitable for tests and soaks).
    pub fn with_detector(mut self, cfg: DetectorConfig) -> Self {
        self.detector = Some(cfg);
        self
    }

    /// Standard fast detector used across the scenario matrix.
    pub fn with_fast_detector(self) -> Self {
        self.with_detector(DetectorConfig {
            interval: Duration::from_millis(30),
            timeout: Duration::from_millis(60),
            misses: 2,
        })
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the synthetic pipelining window.
    pub fn with_inflight(mut self, inflight: usize) -> Self {
        assert!(inflight >= 1, "inflight window must be at least 1");
        self.inflight = inflight;
        self
    }

    /// Set the request-id base.
    pub fn with_request_base(mut self, base: u64) -> Self {
        self.request_base = base;
        self
    }

    /// Set the per-request wait deadline (default 30 s).
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Set the platform tuning.
    pub fn with_tuning(mut self, tuning: DeploymentConfig) -> Self {
        self.tuning = tuning;
        self
    }

    /// Total requests across the workload mix.
    pub fn total_requests(&self) -> u64 {
        self.apps.iter().map(|a| a.workload.requests()).sum()
    }

    /// Whether any impairment kills a box (and thus requires a detector).
    pub fn kills_boxes(&self) -> bool {
        self.impairments.iter().any(|i| {
            matches!(
                i,
                Impairment::SeededBoxKill { .. }
                    | Impairment::BoxKill { .. }
                    | Impairment::Partition { .. }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_expands_to_cluster() {
        let t = TopologySpec::multi_rack(2, 3, 1);
        assert_eq!(t.total_workers(), 6);
        assert_eq!(t.total_boxes(), 2);
        let c = t.cluster();
        assert_eq!(c.racks.len(), 2);
        assert_eq!(c.total_boxes(), 2);
    }

    #[test]
    fn builder_accumulates_mix_and_schedule() {
        let s = ScenarioSpec::new("x", TopologySpec::single_rack(4, 1))
            .synthetic("sum", SyntheticKind::Sum, 100, 1.0)
            .mapreduce(5, 1.0)
            .impair(Impairment::BoxKill {
                slot: 0,
                after_requests: 50,
            })
            .with_fast_detector();
        assert_eq!(s.total_requests(), 105);
        assert!(s.kills_boxes());
        assert!(s.detector.is_some());
    }
}
