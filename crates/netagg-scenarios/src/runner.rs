//! The scenario runner: builds a deployment from a [`ScenarioSpec`] and a
//! [`TransportProvider`], drives the workload mix, applies the impairment
//! schedule, and checks the DESIGN.md §7/§9 contract on the way out.
//!
//! The runner is the *only* place in the workspace that assembles a
//! `NetAggDeployment` from scratch for tests, examples and benchmarks —
//! call sites describe *what* to run (a spec) and the runner owns *how*
//! (fault wrapping, registration order, detector arming, teardown
//! checks).

use crate::contract;
use crate::provider::TransportProvider;
use crate::spec::{Impairment, ScenarioSpec, SyntheticKind, Workload};
use bytes::Bytes;
use minimr::cluster::{JobConfig, MRCluster};
use minimr::jobs::Benchmark;
use minisearch::frontend::FrontendConfig;
use minisearch::netagg::{SearchCluster, SearchFunction};
use netagg_core::prelude::*;
use netagg_core::shim::TreeSelection;
use netagg_core::tree::worker_addr;
use netagg_net::lifecycle::{CancelToken, JoinScope, OrderedMutex};
use netagg_net::lock_order;
use netagg_net::{DetRng, FaultController, FaultStep, FaultTransport, NodeId, Transport};
use netagg_obs::{names, MetricsRegistry, MetricsSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Synthetic aggregation functions (closed-form expected results)
// ---------------------------------------------------------------------------

/// Deterministic 64-bit mix (splitmix-style) shared by payload generation
/// and result verification, so every synthetic request has a closed-form
/// expected answer computable without running the platform.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x
}

/// The value worker `w` contributes to request `rid` under `seed`.
fn worker_value(seed: u64, rid: u64, w: u32) -> u64 {
    mix(seed, rid, w as u64) % 1000
}

/// The unique top-k score worker `w` contributes to request `rid`: the
/// low bits encode the worker id so no two workers ever tie.
fn worker_score(seed: u64, rid: u64, w: u32, workers: u32) -> u64 {
    (mix(seed, rid, w as u64) % 100_000) * workers as u64 + w as u64
}

/// Decimal-integer aggregation (sum or max) over worker contributions.
struct IntAgg {
    max: bool,
}

impl AggregationFunction for IntAgg {
    type Item = u64;

    fn deserialize(&self, payload: &Bytes) -> Result<Self::Item, AggError> {
        std::str::from_utf8(payload)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| AggError::Corrupt("not a decimal integer".into()))
    }

    fn serialize(&self, item: &Self::Item) -> Bytes {
        Bytes::from(item.to_string())
    }

    fn aggregate(&self, items: Vec<Self::Item>) -> Self::Item {
        if self.max {
            items.into_iter().max().unwrap_or(0)
        } else {
            items.into_iter().sum()
        }
    }

    fn empty(&self) -> Self::Item {
        0
    }
}

/// `score|label` top-k aggregation; candidate lists stay sorted by score
/// descending and truncated to `k`.
struct TopKAgg {
    k: usize,
}

impl AggregationFunction for TopKAgg {
    type Item = Vec<(u64, String)>;

    fn deserialize(&self, payload: &Bytes) -> Result<Self::Item, AggError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| AggError::Corrupt("top-k payload is not utf-8".into()))?;
        let mut items = Vec::new();
        for line in text.lines() {
            let (score, label) = line
                .split_once('|')
                .ok_or_else(|| AggError::Corrupt("top-k line missing '|'".into()))?;
            let score = score
                .parse()
                .map_err(|_| AggError::Corrupt("top-k score not an integer".into()))?;
            items.push((score, label.to_string()));
        }
        Ok(items)
    }

    fn serialize(&self, item: &Self::Item) -> Bytes {
        let mut out = String::new();
        for (score, label) in item {
            out.push_str(&format!("{score}|{label}\n"));
        }
        Bytes::from(out)
    }

    fn aggregate(&self, items: Vec<Self::Item>) -> Self::Item {
        let mut all: Vec<(u64, String)> = items.into_iter().flatten().collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.truncate(self.k);
        all
    }

    fn empty(&self) -> Self::Item {
        Vec::new()
    }
}

/// The exact expected wire result for synthetic request `rid`.
fn expected_result(kind: SyntheticKind, seed: u64, rid: u64, workers: u32) -> Bytes {
    match kind {
        SyntheticKind::Sum => {
            let total: u64 = (0..workers).map(|w| worker_value(seed, rid, w)).sum();
            IntAgg { max: false }.serialize(&total)
        }
        SyntheticKind::Max => {
            let best = (0..workers)
                .map(|w| worker_value(seed, rid, w))
                .max()
                .unwrap_or(0);
            IntAgg { max: true }.serialize(&best)
        }
        SyntheticKind::TopK { k } => {
            let agg = TopKAgg { k };
            let all: Vec<Vec<(u64, String)>> = (0..workers)
                .map(|w| vec![(worker_score(seed, rid, w, workers), format!("w{w}"))])
                .collect();
            let merged = agg.aggregate(all);
            agg.serialize(&merged)
        }
    }
}

/// The payload worker `w` sends for synthetic request `rid`.
fn worker_payload(kind: SyntheticKind, seed: u64, rid: u64, w: u32, workers: u32) -> Bytes {
    match kind {
        SyntheticKind::Sum => IntAgg { max: false }.serialize(&worker_value(seed, rid, w)),
        SyntheticKind::Max => IntAgg { max: true }.serialize(&worker_value(seed, rid, w)),
        SyntheticKind::TopK { k } => TopKAgg { k }.serialize(&vec![(
            worker_score(seed, rid, w, workers),
            format!("w{w}"),
        )]),
    }
}

// ---------------------------------------------------------------------------
// Impairment engine
// ---------------------------------------------------------------------------

/// A request-indexed fault action compiled from one [`Impairment`].
struct Armed {
    at: u64,
    label: String,
    action: Action,
}

enum Action {
    Kill(Vec<NodeId>),
    Revive(Vec<NodeId>),
    Delay(Vec<NodeId>, Duration),
    ClearDelay(Vec<NodeId>),
}

/// Shared by every driver thread: counts issued requests, fires due
/// request-indexed impairments, and periodically folds `mailbox.depth.*`
/// gauges into a running max for the §9 bound check.
struct Engine {
    ctl: FaultController,
    obs: MetricsRegistry,
    issued: AtomicU64,
    /// `at` of the earliest still-pending action (`u64::MAX` when none);
    /// keeps the per-tick fast path to one atomic load.
    next_due: AtomicU64,
    pending: OrderedMutex<Vec<Armed>>,
    applied: OrderedMutex<Vec<String>>,
    max_depths: OrderedMutex<HashMap<String, f64>>,
    sample_every: u64,
}

impl Engine {
    fn new(ctl: FaultController, obs: MetricsRegistry, mut pending: Vec<Armed>) -> Self {
        pending.sort_by_key(|a| a.at);
        let next = pending.first().map_or(u64::MAX, |a| a.at);
        Self {
            ctl,
            obs,
            issued: AtomicU64::new(0),
            next_due: AtomicU64::new(next),
            pending: OrderedMutex::new(lock_order::SCN_PENDING, pending),
            applied: OrderedMutex::new(lock_order::SCN_APPLIED, Vec::new()),
            max_depths: OrderedMutex::new(lock_order::SCN_DEPTHS, HashMap::new()),
            sample_every: 8192,
        }
    }

    /// Record one issued request; apply any impairment now due.
    fn tick(&self) {
        let n = self.issued.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.sample_every) {
            self.sample();
        }
        if n >= self.next_due.load(Ordering::Relaxed) {
            self.apply_due(n);
        }
    }

    fn apply_due(&self, n: u64) {
        let mut pending = self.pending.lock();
        while pending.first().map(|a| a.at <= n).unwrap_or(false) {
            let armed = pending.remove(0);
            match &armed.action {
                Action::Kill(nodes) => nodes.iter().for_each(|&x| self.ctl.kill(x)),
                Action::Revive(nodes) => nodes.iter().for_each(|&x| self.ctl.revive(x)),
                Action::Delay(nodes, d) => nodes.iter().for_each(|&x| self.ctl.delay(x, *d)),
                Action::ClearDelay(nodes) => nodes.iter().for_each(|&x| self.ctl.clear_delay(x)),
            }
            self.applied
                .lock()
                .push(format!("{} (at request {n})", armed.label));
        }
        let next = pending.first().map_or(u64::MAX, |a| a.at);
        self.next_due.store(next, Ordering::Relaxed);
    }

    fn sample(&self) {
        let snap = self.obs.snapshot();
        contract::sample_depths(&snap, &mut self.max_depths.lock());
    }
}

// ---------------------------------------------------------------------------
// Launched applications
// ---------------------------------------------------------------------------

enum LaunchedApp {
    Synthetic {
        app: AppId,
        kind: SyntheticKind,
        requests: u64,
        master: Arc<MasterShim>,
        workers: Vec<Arc<WorkerShim>>,
    },
    Search {
        queries: u64,
        cluster: SearchCluster,
    },
    MapReduce {
        jobs: u64,
        cluster: MRCluster,
    },
}

/// Per-app counters a scenario run produces.
#[derive(Debug, Clone, Default)]
pub struct AppStats {
    /// Application name from the spec.
    pub name: String,
    /// Requests issued.
    pub issued: u64,
    /// Requests completed (result delivered before the deadline).
    pub completed: u64,
    /// Requests that errored or timed out.
    pub failures: u64,
    /// Completed requests whose result differed from the closed-form
    /// expectation (synthetic workloads only).
    pub mismatches: u64,
}

/// Everything a finished scenario run reports.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub scenario: String,
    /// Provider label the run used.
    pub provider: String,
    /// Total requests issued across the mix.
    pub requests_issued: u64,
    /// Total requests completed.
    pub requests_completed: u64,
    /// Total failures (errors + timeouts).
    pub failures: u64,
    /// Total exactness mismatches.
    pub mismatches: u64,
    /// Wall-clock time of the drive phase.
    pub elapsed: Duration,
    /// Completed requests per second of drive time.
    pub requests_per_sec: f64,
    /// p50 of `shim.master.request_wait_us`.
    pub p50_wait_us: u64,
    /// p99 of `shim.master.request_wait_us`.
    pub p99_wait_us: u64,
    /// `failure.detections` counter at teardown.
    pub detections: u64,
    /// `failure.repoints` counter at teardown.
    pub repoints: u64,
    /// Human-readable log of applied impairments (request-indexed ones
    /// record the issue count they fired at).
    pub impairments_applied: Vec<String>,
    /// §7/§9 contract violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Per-app breakdown.
    pub per_app: Vec<AppStats>,
    /// Final post-teardown snapshot, for callers that gate on more.
    pub snapshot: MetricsSnapshot,
}

impl ScenarioReport {
    /// Whether the run completed every request exactly and upheld the
    /// metrics contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.failures == 0
            && self.mismatches == 0
            && self.requests_completed == self.requests_issued
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}/{}: {}/{} requests in {:.2?} ({:.0} req/s), p99 wait {} us, \
             {} detections, {} repoints, {} violations",
            self.scenario,
            self.provider,
            self.requests_completed,
            self.requests_issued,
            self.elapsed,
            self.requests_per_sec,
            self.p99_wait_us,
            self.detections,
            self.repoints,
            self.violations.len()
        )
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A deployment built from a [`ScenarioSpec`] against one provider, ready
/// to drive. Most callers use [`run_scenario`]; tests that need to poke
/// the fault controller or the deployment mid-run build a harness and
/// call [`ScenarioHarness::drive`] / [`ScenarioHarness::finish`]
/// themselves.
pub struct ScenarioHarness {
    spec: ScenarioSpec,
    provider: &'static str,
    fault: FaultController,
    /// `Some` until [`ScenarioHarness::finish`] tears it down (teardown
    /// must *drop* the deployment — the scheduler pool only joins on
    /// drop — before snapshotting the thread gauge).
    deployment: Option<NetAggDeployment>,
    apps: Vec<LaunchedApp>,
    engine: Arc<Engine>,
    stats: Vec<AppStats>,
    elapsed: Duration,
}

impl ScenarioHarness {
    /// Build the deployment and launch every app of `spec` over a fresh
    /// transport from `provider`, with a private metrics registry.
    pub fn build(spec: &ScenarioSpec, provider: &dyn TransportProvider) -> Result<Self, AggError> {
        Self::build_with_obs(spec, provider, MetricsRegistry::new())
    }

    /// [`ScenarioHarness::build`] with a caller-owned registry (so a
    /// surrounding benchmark can share one snapshot across legs).
    pub fn build_with_obs(
        spec: &ScenarioSpec,
        provider: &dyn TransportProvider,
        obs: MetricsRegistry,
    ) -> Result<Self, AggError> {
        assert!(
            !spec.kills_boxes() || spec.detector.is_some(),
            "scenario `{}` kills boxes but arms no failure detector",
            spec.name
        );
        let fault = FaultController::new();
        // Fault wrapping sits between the provider's base transport and
        // the deployment's metering decorator, so the whole impairment
        // vocabulary works identically on every provider.
        let base = provider.build();
        let transport: Arc<dyn Transport> = Arc::new(FaultTransport::new(base, fault.clone()));
        let cluster = spec.topology.cluster();
        let mut deployment =
            NetAggDeployment::launch_with_obs(transport, &cluster, spec.tuning.clone(), obs)?;

        let total_workers = spec.topology.total_workers();
        let mut apps = Vec::new();
        for app_spec in &spec.apps {
            match &app_spec.workload {
                Workload::Synthetic { kind, requests } => {
                    let agg: Arc<dyn DynAggregator> = match kind {
                        SyntheticKind::Sum => Arc::new(AggWrapper::new(IntAgg { max: false })),
                        SyntheticKind::Max => Arc::new(AggWrapper::new(IntAgg { max: true })),
                        SyntheticKind::TopK { k } => Arc::new(AggWrapper::new(TopKAgg { k: *k })),
                    };
                    let app = deployment.register_app(&app_spec.name, agg, app_spec.share);
                    let master = deployment.master_shim(app);
                    let workers = (0..total_workers)
                        .map(|w| deployment.worker_shim(app, w))
                        .collect();
                    apps.push(LaunchedApp::Synthetic {
                        app,
                        kind: *kind,
                        requests: *requests,
                        master,
                        workers,
                    });
                }
                Workload::Search {
                    queries,
                    corpus,
                    k,
                    backend_k,
                } => {
                    let app_transport = deployment.transport().clone();
                    let cluster = SearchCluster::launch(
                        &mut deployment,
                        app_transport,
                        corpus,
                        SearchFunction::TopK { k: *k },
                        FrontendConfig {
                            backend_k: *backend_k as u32,
                            timeout: spec.wait_timeout,
                        },
                        app_spec.share,
                    )?;
                    apps.push(LaunchedApp::Search {
                        queries: *queries,
                        cluster,
                    });
                }
                Workload::MapReduce { jobs } => {
                    let cluster = MRCluster::launch(
                        &mut deployment,
                        Benchmark::WC.job(),
                        TreeSelection::PerRequest,
                        app_spec.share,
                    );
                    apps.push(LaunchedApp::MapReduce {
                        jobs: *jobs,
                        cluster,
                    });
                }
            }
        }
        if let Some(det) = &spec.detector {
            deployment.enable_failure_detection(det.clone());
        }

        // Compile the request-indexed impairments; seeded frame-indexed
        // kills are armed by `drive` (they are relative to the frame
        // counters at drive start, not build).
        let mut armed = Vec::new();
        let app_ids: Vec<AppId> = apps
            .iter()
            .map(|a| match a {
                LaunchedApp::Synthetic { app, .. } => *app,
                LaunchedApp::Search { cluster, .. } => cluster.app,
                LaunchedApp::MapReduce { cluster, .. } => cluster.app,
            })
            .collect();
        for imp in &spec.impairments {
            match imp {
                Impairment::SeededBoxKill { .. } => {}
                Impairment::BoxKill {
                    slot,
                    after_requests,
                } => armed.push(Armed {
                    at: *after_requests,
                    label: format!("kill box {slot}"),
                    action: Action::Kill(vec![deployment.boxes()[*slot].addr()]),
                }),
                Impairment::Partition {
                    slots,
                    at_requests,
                    heal_after_requests,
                } => {
                    let addrs: Vec<NodeId> = slots
                        .iter()
                        .map(|&s| deployment.boxes()[s].addr())
                        .collect();
                    armed.push(Armed {
                        at: *at_requests,
                        label: format!("partition boxes {slots:?}"),
                        action: Action::Kill(addrs.clone()),
                    });
                    armed.push(Armed {
                        at: at_requests + heal_after_requests,
                        label: format!("heal partition of boxes {slots:?}"),
                        action: Action::Revive(addrs),
                    });
                }
                Impairment::StragglerStorm {
                    workers,
                    delay_ms,
                    from_requests,
                    until_requests,
                } => {
                    // A worker address is per-app: slow the selected
                    // workers in every launched application.
                    let addrs: Vec<NodeId> = app_ids
                        .iter()
                        .flat_map(|&app| workers.iter().map(move |&w| worker_addr(app, w)))
                        .collect();
                    armed.push(Armed {
                        at: *from_requests,
                        label: format!("straggler storm on workers {workers:?} (+{delay_ms} ms)"),
                        action: Action::Delay(addrs.clone(), Duration::from_millis(*delay_ms)),
                    });
                    armed.push(Armed {
                        at: *until_requests,
                        label: format!("straggler storm on workers {workers:?} clears"),
                        action: Action::ClearDelay(addrs),
                    });
                }
            }
        }
        let engine = Arc::new(Engine::new(fault.clone(), deployment.obs().clone(), armed));
        Ok(Self {
            spec: spec.clone(),
            provider: provider.label(),
            fault,
            deployment: Some(deployment),
            apps,
            engine,
            stats: Vec::new(),
            elapsed: Duration::ZERO,
        })
    }

    /// The fault controller the impairment schedule drives (tests can
    /// inject extra faults mid-run).
    pub fn fault(&self) -> &FaultController {
        &self.fault
    }

    /// The running deployment.
    pub fn deployment(&self) -> &NetAggDeployment {
        self.deployment.as_ref().expect("harness already finished")
    }

    /// Mutable access to the running deployment.
    pub fn deployment_mut(&mut self) -> &mut NetAggDeployment {
        self.deployment.as_mut().expect("harness already finished")
    }

    /// The launched search cluster of app `idx` (spec order), if that app
    /// is a search workload. Lets tests drive custom queries directly.
    pub fn search(&self, idx: usize) -> Option<&SearchCluster> {
        match self.apps.get(idx)? {
            LaunchedApp::Search { cluster, .. } => Some(cluster),
            _ => None,
        }
    }

    /// The launched map-reduce cluster of app `idx` (spec order), if that
    /// app is a map-reduce workload. Lets tests run custom jobs directly.
    pub fn mapreduce(&self, idx: usize) -> Option<&MRCluster> {
        match self.apps.get(idx)? {
            LaunchedApp::MapReduce { cluster, .. } => Some(cluster),
            _ => None,
        }
    }

    /// The master shim and worker shims of synthetic app `idx` (spec
    /// order). Lets tests drive bespoke request patterns directly.
    pub fn synthetic_shims(&self, idx: usize) -> Option<(&Arc<MasterShim>, &[Arc<WorkerShim>])> {
        match self.apps.get(idx)? {
            LaunchedApp::Synthetic {
                master, workers, ..
            } => Some((master, workers)),
            _ => None,
        }
    }

    /// Drive the whole workload mix: synthetic apps on their own
    /// `scenario-drive-<a>` threads (§9 inventory), search and map-reduce
    /// interleaved on the calling thread. Idempotent per harness — the
    /// second call is a no-op.
    pub fn drive(&mut self) {
        if !self.stats.is_empty() {
            return;
        }
        // Seeded frame-indexed kills arm against the frame counters as
        // they stand right now, so warm-up traffic (detector probes,
        // corpus shuffles) does not consume the draw.
        let mut rng = DetRng::new(self.spec.seed ^ 0x5EED_FA17);
        for imp in &self.spec.impairments {
            if let Impairment::SeededBoxKill {
                slot,
                frames_lo,
                frames_hi,
            } = imp
            {
                let addr = self.deployment().boxes()[*slot].addr();
                let draw = rng.gen_range(*frames_lo, *frames_hi);
                self.fault.schedule(FaultStep {
                    watch: addr,
                    after_frames: self.fault.frames_delivered(addr) + draw,
                    kill_target: addr,
                });
                self.engine
                    .applied
                    .lock()
                    .push(format!("seeded kill of box {slot} armed +{draw} frames"));
            }
        }

        let total_workers = self.spec.topology.total_workers();
        let stats: Vec<Arc<OrderedMutex<AppStats>>> = self
            .spec
            .apps
            .iter()
            .map(|a| {
                Arc::new(OrderedMutex::new(
                    lock_order::SCN_APP_STATS,
                    AppStats {
                        name: a.name.clone(),
                        ..AppStats::default()
                    },
                ))
            })
            .collect();

        let started = Instant::now();
        {
            // Driver threads are owned by a scope wired to the deployment
            // registry, so `runtime.threads_active` covers them and the
            // teardown check proves they exited.
            let cancel = CancelToken::new();
            let scope = JoinScope::with_obs(
                "scenario-drive",
                cancel,
                Duration::from_secs(3600),
                Some(self.deployment().obs()),
            );
            for (idx, app) in self.apps.iter().enumerate() {
                if let LaunchedApp::Synthetic {
                    kind,
                    requests,
                    master,
                    workers,
                    ..
                } = app
                {
                    let (kind, requests) = (*kind, *requests);
                    let master = master.clone();
                    let workers = workers.clone();
                    let engine = self.engine.clone();
                    let stat = stats[idx].clone();
                    let seed = self.spec.seed.wrapping_add(idx as u64);
                    let base = self.spec.request_base + (idx as u64 + 1) * (1 << 32);
                    let inflight = self.spec.inflight;
                    let timeout = self.spec.wait_timeout;
                    scope
                        .spawn(format!("scenario-drive-{idx}"), move || {
                            drive_synthetic(
                                kind,
                                requests,
                                &master,
                                &workers,
                                total_workers,
                                seed,
                                base,
                                inflight,
                                timeout,
                                &engine,
                                &stat,
                            );
                        })
                        .expect("spawn scenario driver");
                }
            }
            // Search and map-reduce are interactive workloads; drive them
            // interleaved on this thread while the synthetic drivers run.
            self.drive_interactive(&stats);
            scope.finish();
        }
        self.elapsed = started.elapsed();
        self.stats = stats.iter().map(|s| s.lock().clone()).collect();
    }

    fn drive_interactive(&self, stats: &[Arc<OrderedMutex<AppStats>>]) {
        let mut cursors: Vec<u64> = vec![0; self.apps.len()];
        loop {
            let mut progressed = false;
            for (idx, app) in self.apps.iter().enumerate() {
                match app {
                    LaunchedApp::Synthetic { .. } => {}
                    LaunchedApp::Search { queries, cluster } => {
                        if cursors[idx] >= *queries {
                            continue;
                        }
                        let q = cursors[idx];
                        cursors[idx] += 1;
                        progressed = true;
                        let term = minisearch::corpus::word(
                            (mix(self.spec.seed, q, 0x5EA7C4) % cluster.corpus_vocabulary as u64)
                                as usize,
                        );
                        let mut stat = stats[idx].lock();
                        stat.issued += 1;
                        drop(stat);
                        self.engine.tick();
                        match cluster.frontend.query(&[term]) {
                            Ok(_) => stats[idx].lock().completed += 1,
                            Err(_) => stats[idx].lock().failures += 1,
                        }
                    }
                    LaunchedApp::MapReduce { jobs, cluster } => {
                        if cursors[idx] >= *jobs {
                            continue;
                        }
                        let j = cursors[idx];
                        cursors[idx] += 1;
                        progressed = true;
                        let mappers = cluster.num_mappers();
                        let inputs: Vec<Vec<Bytes>> = (0..mappers)
                            .map(|m| vec![Bytes::from(format!("common w{m} w{m}"))])
                            .collect();
                        let cfg = JobConfig {
                            request_id: self.spec.request_base + j,
                            ..JobConfig::default()
                        };
                        let mut stat = stats[idx].lock();
                        stat.issued += 1;
                        drop(stat);
                        self.engine.tick();
                        match cluster.run(inputs, &cfg) {
                            Ok(result) => {
                                let common = result
                                    .output
                                    .iter()
                                    .find(|p| p.key.as_ref() == b"common")
                                    .and_then(|p| minimr::types::parse_u64(&p.value));
                                let mut stat = stats[idx].lock();
                                stat.completed += 1;
                                if common != Some(mappers as u64) {
                                    stat.mismatches += 1;
                                }
                            }
                            Err(_) => stats[idx].lock().failures += 1,
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Tear the deployment down, check the §7/§9 contract, and report.
    pub fn finish(mut self) -> ScenarioReport {
        self.drive();
        // Final depth sample before teardown so short runs (fewer issues
        // than one sample interval) still check their mailboxes.
        self.engine.sample();
        // Worker shims are caller-owned (the deployment hands out fresh
        // instances); shut every app-held shim down before the platform
        // so the teardown snapshot sees zero live threads.
        for mut app in std::mem::take(&mut self.apps) {
            match &mut app {
                LaunchedApp::Synthetic { workers, .. } => {
                    workers.iter().for_each(|w| w.shutdown());
                }
                LaunchedApp::Search { cluster, .. } => cluster.shutdown(),
                LaunchedApp::MapReduce { .. } => {}
            }
            // Dropping the app drops its shim Arcs (worker shims shut
            // down on final drop — this covers map-reduce's shims).
            drop(app);
        }
        // The scheduler pool only joins on drop, so teardown must drop
        // the deployment — the registry is shared and keeps reporting.
        let deployment = self.deployment.take().expect("harness already finished");
        let obs = deployment.obs().clone();
        drop(deployment);
        let snapshot = obs.snapshot();

        let mut violations = contract::teardown_violations(&snapshot);
        violations.extend(contract::depth_violations(&self.engine.max_depths.lock()));
        let wait = snapshot.histogram(names::SHIM_MASTER_REQUEST_WAIT_US);
        let issued: u64 = self.stats.iter().map(|s| s.issued).sum();
        let completed: u64 = self.stats.iter().map(|s| s.completed).sum();
        let elapsed = self.elapsed;
        ScenarioReport {
            scenario: self.spec.name.clone(),
            provider: self.provider.to_string(),
            requests_issued: issued,
            requests_completed: completed,
            failures: self.stats.iter().map(|s| s.failures).sum(),
            mismatches: self.stats.iter().map(|s| s.mismatches).sum(),
            elapsed,
            requests_per_sec: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50_wait_us: wait.map(|h| h.p50).unwrap_or(0),
            p99_wait_us: wait.map(|h| h.p99).unwrap_or(0),
            detections: snapshot.counter(names::FAILURE_DETECTIONS).unwrap_or(0),
            repoints: snapshot.counter(names::FAILURE_REPOINTS).unwrap_or(0),
            impairments_applied: self.engine.applied.lock().clone(),
            violations,
            per_app: self.stats.clone(),
            snapshot,
        }
    }
}

/// Closed-loop (windowed) driver for one synthetic app: register, fan
/// the partials out, wait, verify exactness against the closed form.
#[allow(clippy::too_many_arguments)]
fn drive_synthetic(
    kind: SyntheticKind,
    requests: u64,
    master: &MasterShim,
    workers: &[Arc<WorkerShim>],
    total_workers: u32,
    seed: u64,
    base: u64,
    inflight: usize,
    timeout: Duration,
    engine: &Engine,
    stat: &OrderedMutex<AppStats>,
) {
    let mut window: VecDeque<(u64, netagg_core::shim::PendingRequest)> = VecDeque::new();
    let settle = |window: &mut VecDeque<(u64, netagg_core::shim::PendingRequest)>| {
        let Some((rid, pending)) = window.pop_front() else {
            return;
        };
        match pending.wait(timeout) {
            Ok(result) => {
                let mut s = stat.lock();
                s.completed += 1;
                if result.combined != expected_result(kind, seed, rid, total_workers) {
                    s.mismatches += 1;
                }
            }
            Err(_) => stat.lock().failures += 1,
        }
    };
    for i in 0..requests {
        let rid = base + i;
        let pending = master.register_request(rid, workers.len());
        stat.lock().issued += 1;
        engine.tick();
        for (w, shim) in workers.iter().enumerate() {
            // A send into a just-killed box is expected to fail; the
            // detector re-points and the shim replays.
            let _ = shim.send_partial(
                rid,
                worker_payload(kind, seed, rid, w as u32, total_workers),
            );
        }
        window.push_back((rid, pending));
        while window.len() >= inflight {
            settle(&mut window);
        }
    }
    while !window.is_empty() {
        settle(&mut window);
    }
}

/// Build, drive and tear down one scenario against one provider.
pub fn run_scenario(
    spec: &ScenarioSpec,
    provider: &dyn TransportProvider,
) -> Result<ScenarioReport, AggError> {
    let mut harness = ScenarioHarness::build(spec, provider)?;
    harness.drive();
    Ok(harness.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::ChannelProvider;
    use crate::spec::TopologySpec;

    #[test]
    fn synthetic_expectations_are_closed_form() {
        // Sum over 4 workers equals the sum of the per-worker payloads.
        let total: u64 = (0..4)
            .map(|w| {
                let p = worker_payload(SyntheticKind::Sum, 7, 42, w, 4);
                IntAgg { max: false }.deserialize(&p).unwrap()
            })
            .sum();
        let expect = IntAgg { max: false }
            .deserialize(&expected_result(SyntheticKind::Sum, 7, 42, 4))
            .unwrap();
        assert_eq!(total, expect);

        // Top-k scores are unique, so the winner is unambiguous.
        let agg = TopKAgg { k: 2 };
        let merged = agg
            .deserialize(&expected_result(SyntheticKind::TopK { k: 2 }, 7, 42, 4))
            .unwrap();
        assert_eq!(merged.len(), 2);
        assert!(merged[0].0 > merged[1].0);
    }

    #[test]
    fn small_scenario_runs_exactly_on_channel() {
        let spec = ScenarioSpec::new("runner-smoke", TopologySpec::single_rack(3, 1))
            .synthetic("sum", SyntheticKind::Sum, 40, 1.0)
            .synthetic("topk", SyntheticKind::TopK { k: 3 }, 40, 1.0)
            .with_inflight(4);
        let report = run_scenario(&spec, &ChannelProvider).unwrap();
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.requests_completed, 80);
    }
}
