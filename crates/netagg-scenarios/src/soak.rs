//! The soak harness: long impairment-heavy scenario runs that hold the
//! platform under sustained multi-application load and assert the
//! DESIGN.md §7/§9 contract end-to-end (DESIGN.md §14, "Soak
//! invariants").
//!
//! Two standard sizes ship with the repo:
//!
//! * [`quick_soak_spec`] — tens of thousands of requests with the full
//!   impairment vocabulary (seeded kill, failover kill, partition + heal,
//!   straggler storm); bounded enough for CI's `--quick` gate.
//! * [`full_soak_spec`] — the million-request run behind the committed
//!   `BENCH_soak.json` baseline.
//!
//! Both run the *same* spec shape on both built-in providers; only the
//! request counts differ.

use crate::provider::TransportProvider;
use crate::runner::{run_scenario, ScenarioReport};
use crate::spec::{Impairment, ScenarioSpec, SyntheticKind, TopologySpec};
use minisearch::corpus::CorpusConfig;
use netagg_core::AggError;

/// Shared shape of the soak scenario: a two-rack deployment running
/// three synthetic apps plus the two real applications, with every
/// impairment family firing at request-indexed points scaled to the run
/// length.
fn soak_spec(name: &str, synthetic_requests: u64, queries: u64, jobs: u64) -> ScenarioSpec {
    let n = synthetic_requests;
    ScenarioSpec::new(name, TopologySpec::multi_rack(2, 3, 1))
        .synthetic("soak-sum", SyntheticKind::Sum, n, 2.0)
        .synthetic("soak-max", SyntheticKind::Max, n, 1.0)
        .synthetic("soak-topk", SyntheticKind::TopK { k: 8 }, n, 1.0)
        .search(
            queries,
            CorpusConfig {
                num_docs: 400,
                ..CorpusConfig::default()
            },
            10,
            2.0,
        )
        .mapreduce(jobs, 1.0)
        .with_fast_detector()
        .with_inflight(8)
        // Loss: a seeded mid-stream kill of box 0 forces replay recovery.
        .impair(Impairment::SeededBoxKill {
            slot: 0,
            frames_lo: 200,
            frames_hi: 2_000,
        })
        // Failover: box 1 dies once the run is warm.
        .impair(Impairment::BoxKill {
            slot: 1,
            after_requests: n / 2,
        })
        // Straggler storm: workers 1 and 4 slow down for a stretch.
        .impair(Impairment::StragglerStorm {
            workers: vec![1, 4],
            delay_ms: 2,
            from_requests: n / 4,
            until_requests: n / 4 + n / 8,
        })
        // Partition + heal: late in the run both boxes are cut (idempotent
        // over the earlier kills) and then revived. Re-points are one-way,
        // so the heal must not let the revived boxes corrupt results.
        .impair(Impairment::Partition {
            slots: vec![0, 1],
            at_requests: (3 * n) / 4,
            heal_after_requests: n / 8,
        })
        .with_seed(0x50AC_2026)
        // A p99 wait of ~37 ms leaves the default 30 s deadline with
        // ~1000x headroom, but a starved single-CPU host (CI under a
        // noisy neighbour) has been seen to push one straggling request
        // over it. The soak asserts *correctness*, not latency — the
        // throughput gate covers speed — so give the deadline slack.
        .with_wait_timeout(std::time::Duration::from_secs(120))
}

/// The CI-sized soak: full impairment vocabulary, bounded run time.
pub fn quick_soak_spec() -> ScenarioSpec {
    soak_spec("soak-quick", 8_000, 150, 20)
}

/// The million-request soak behind the committed baseline: 331k+
/// synthetic requests per app across three apps, plus search and
/// map-reduce on top.
pub fn full_soak_spec() -> ScenarioSpec {
    soak_spec("soak-full", 333_000, 2_000, 100)
}

/// Run `spec` against `provider` and *assert* the soak invariants, so a
/// violation fails loudly with the report attached.
pub fn run_soak(
    spec: &ScenarioSpec,
    provider: &dyn TransportProvider,
) -> Result<ScenarioReport, AggError> {
    let report = run_scenario(spec, provider)?;
    if report.failures > 0 || report.mismatches > 0 || !report.violations.is_empty() {
        // Per-app breakdown before the assert fires: a soak failure
        // message must say *which* workload broke, not just the totals.
        for s in &report.per_app {
            eprintln!(
                "soak {}/{} app {}: issued {} completed {} failures {} mismatches {}",
                report.scenario,
                report.provider,
                s.name,
                s.issued,
                s.completed,
                s.failures,
                s.mismatches
            );
        }
    }
    assert!(
        report.violations.is_empty(),
        "soak {}/{} violated the §7/§9 contract: {:?}",
        report.scenario,
        report.provider,
        report.violations
    );
    assert_eq!(
        report.failures, 0,
        "soak {}/{} had {} failed requests",
        report.scenario, report.provider, report.failures
    );
    assert_eq!(
        report.mismatches, 0,
        "soak {}/{} delivered {} inexact results",
        report.scenario, report.provider, report.mismatches
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_specs_scale_but_share_shape() {
        let quick = quick_soak_spec();
        let full = full_soak_spec();
        assert_eq!(quick.apps.len(), full.apps.len());
        assert_eq!(quick.impairments.len(), full.impairments.len());
        assert!(full.total_requests() >= 999_000, "full soak must be ~1M");
        assert!(
            quick.total_requests() < 30_000,
            "quick soak must stay CI-sized"
        );
        assert!(quick.kills_boxes() && quick.detector.is_some());
    }
}
