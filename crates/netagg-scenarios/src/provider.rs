//! The [`TransportProvider`] contract: one scenario, any transport.
//!
//! A provider is a named factory for the *base* transport a scenario runs
//! over. The scenario runner wraps whatever the provider builds in a
//! [`netagg_net::FaultTransport`] (so the impairment schedule applies
//! uniformly) and hands the result to
//! [`netagg_core::runtime::NetAggDeployment`], which adds its own metering
//! decorator. A provider therefore only answers two questions: what is this
//! transport called, and how do I get a fresh, isolated instance of it?
//!
//! The contract (fenced by `tests/parity.rs`):
//!
//! * **Fresh state** — every [`TransportProvider::build`] call returns a
//!   transport with no bound addresses, so scenarios never leak state into
//!   each other even when one process runs a whole matrix.
//! * **Blocking message semantics** — the transport must uphold the
//!   [`Transport`] trait's reliable, ordered, message-oriented semantics;
//!   a [`crate::ScenarioSpec`] run against any compliant provider produces
//!   the same application-level results (same totals, same top-k winners),
//!   differing only in timing.
//! * **Impairment transparency** — faults are injected *above* the
//!   provider's transport, so a provider never needs fault hooks of its
//!   own.

use netagg_net::{ChannelTransport, TcpTransport, Transport};
use std::sync::Arc;

/// A named factory for the base transport a scenario deploys over.
pub trait TransportProvider: Send + Sync {
    /// Short stable label (`channel`, `tcp`) used in reports, JSON
    /// artifacts and test names.
    fn label(&self) -> &'static str;
    /// Build a fresh transport with no bound addresses.
    fn build(&self) -> Arc<dyn Transport>;
}

/// Provider for the in-process [`ChannelTransport`] (bounded mailboxes,
/// zero syscalls — the deterministic end of the matrix).
#[derive(Debug, Default, Clone, Copy)]
pub struct ChannelProvider;

impl TransportProvider for ChannelProvider {
    fn label(&self) -> &'static str {
        "channel"
    }

    fn build(&self) -> Arc<dyn Transport> {
        Arc::new(ChannelTransport::new())
    }
}

/// Provider for the loopback [`TcpTransport`] (the event-driven sharded
/// reactor of DESIGN.md §12 — real sockets, real syscalls).
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpProvider;

impl TransportProvider for TcpProvider {
    fn label(&self) -> &'static str {
        "tcp"
    }

    fn build(&self) -> Arc<dyn Transport> {
        Arc::new(TcpTransport::new())
    }
}

/// Both built-in providers, in matrix order (channel first: failures there
/// implicate the scenario, failures only on tcp implicate the reactor).
pub fn builtin_providers() -> Vec<Box<dyn TransportProvider>> {
    vec![Box::new(ChannelProvider), Box::new(TcpProvider)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn providers_build_fresh_transports() {
        for p in builtin_providers() {
            // The same address binds on two consecutive builds: no state
            // leaks from one instance to the next.
            let a = p.build();
            let _la = a.bind(7).unwrap();
            let b = p.build();
            let _lb = b.bind(7).unwrap();
            assert!(!p.label().is_empty());
        }
    }
}
