//! # netagg-scenarios — declarative scenario matrix and soak harness
//!
//! One [`ScenarioSpec`] — a topology, a workload mix and a seeded
//! impairment schedule — runs identically against any transport through
//! the [`TransportProvider`] trait, so tests, examples and benchmarks
//! describe *what* to run and the [`runner`] owns *how*: fault wrapping,
//! registration order, detector arming, the §7/§9 metrics-contract
//! checks at teardown.
//!
//! ```
//! use netagg_scenarios::{
//!     run_scenario, ChannelProvider, ScenarioSpec, SyntheticKind, TopologySpec,
//! };
//!
//! let spec = ScenarioSpec::new("doc-smoke", TopologySpec::single_rack(3, 1))
//!     .synthetic("sum", SyntheticKind::Sum, 25, 1.0);
//! let report = run_scenario(&spec, &ChannelProvider).unwrap();
//! assert!(report.passed());
//! assert_eq!(report.requests_completed, 25);
//! ```
//!
//! The schema, provider contract and soak invariants are documented in
//! DESIGN.md §14.

#![warn(missing_docs)]

pub mod contract;
pub mod provider;
pub mod runner;
pub mod soak;
pub mod spec;

pub use provider::{builtin_providers, ChannelProvider, TcpProvider, TransportProvider};
pub use runner::{run_scenario, AppStats, ScenarioHarness, ScenarioReport};
pub use soak::{full_soak_spec, quick_soak_spec, run_soak};
pub use spec::{AppSpec, Impairment, ScenarioSpec, SyntheticKind, TopologySpec, Workload};
