//! The DESIGN.md §7/§9 metrics-contract checker the scenario runner and
//! the soak harness assert against.
//!
//! Three families of checks (DESIGN.md §14, "Soak invariants"):
//!
//! * **Teardown** — after `NetAggDeployment::shutdown`, the runtime must
//!   have joined every thread (`runtime.threads_active == 0`) and drained
//!   every fan-in ledger (`shim.master.requests_inflight == 0`,
//!   `shim.master.sources_outstanding == 0`).
//! * **Bounded mailboxes** — every `mailbox.depth.<name>` gauge observed
//!   during the run must stay within the §9 bound for its mailbox family;
//!   a reading above the bound means a queue escaped its backpressure
//!   policy.
//! * **Exactly-once delivery** — the runner checks every synthetic result
//!   against its closed-form expectation and that
//!   `shim.master.requests_completed` matches
//!   `shim.master.requests_registered`; a surplus would be a duplicate
//!   delivery, a deficit a lost request.

use netagg_obs::{names, MetricsSnapshot};
use std::collections::HashMap;

/// §9 depth bound for a concrete `mailbox.depth.<name>` series, by mailbox
/// family. Returns `None` for names outside the inventory (the caller
/// reports those as violations too: an unlisted mailbox is contract
/// drift).
pub fn mailbox_bound(name: &str) -> Option<f64> {
    // Family prefixes/suffixes as documented in the §9 inventory table.
    if name.starts_with("aggbox") && name.ends_with(".egress") {
        Some(4096.0)
    } else if (name.starts_with("worker") && name.ends_with(".broadcast"))
        || name.starts_with("chan.data.")
    {
        Some(256.0)
    } else if name.starts_with("chan.accept.")
        || name.starts_with("tcp.accept.")
        || name.starts_with("tcp.reactor.")
        || name.starts_with("tcp.chan.")
    {
        Some(1024.0)
    } else {
        None
    }
}

/// Check the post-teardown §7 invariants on a final snapshot.
pub fn teardown_violations(snap: &MetricsSnapshot) -> Vec<String> {
    let mut v = Vec::new();
    let threads = snap.gauge(names::RUNTIME_THREADS_ACTIVE).unwrap_or(0.0);
    if threads != 0.0 {
        v.push(format!(
            "{} = {threads} after teardown (leaked threads)",
            names::RUNTIME_THREADS_ACTIVE
        ));
    }
    if let Some(inflight) = snap.gauge(names::SHIM_MASTER_REQUESTS_INFLIGHT) {
        if inflight != 0.0 {
            v.push(format!(
                "{} = {inflight} after teardown (undrained pending table)",
                names::SHIM_MASTER_REQUESTS_INFLIGHT
            ));
        }
    }
    if let Some(owed) = snap.gauge(names::SHIM_MASTER_SOURCES_OUTSTANDING) {
        if owed != 0.0 {
            v.push(format!(
                "{} = {owed} after teardown (undrained fan-in ledger)",
                names::SHIM_MASTER_SOURCES_OUTSTANDING
            ));
        }
    }
    let registered = snap
        .counter(names::SHIM_MASTER_REQUESTS_REGISTERED)
        .unwrap_or(0);
    let completed = snap
        .counter(names::SHIM_MASTER_REQUESTS_COMPLETED)
        .unwrap_or(0);
    if completed > registered {
        v.push(format!(
            "{completed} completions for {registered} registrations (duplicate delivery)"
        ));
    }
    v
}

/// Check every observed `mailbox.depth.<name>` maximum against its §9
/// bound. `max_depths` maps full series names to the highest reading the
/// runner sampled.
pub fn depth_violations(max_depths: &HashMap<String, f64>) -> Vec<String> {
    let mut v = Vec::new();
    let prefix = "mailbox.depth.";
    for (series, &max) in max_depths {
        let Some(name) = series.strip_prefix(prefix) else {
            continue;
        };
        match mailbox_bound(name) {
            Some(bound) if max > bound => v.push(format!(
                "{series} peaked at {max} (> §9 bound {bound}) — backpressure escape"
            )),
            Some(_) => {}
            None => v.push(format!(
                "{series} has no §9 inventory bound — undocumented mailbox"
            )),
        }
    }
    v.sort();
    v
}

/// Fold the `mailbox.depth.*` gauges of `snap` into a running max map.
pub fn sample_depths(snap: &MetricsSnapshot, into: &mut HashMap<String, f64>) {
    for (name, value) in &snap.gauges {
        if name.starts_with("mailbox.depth.") {
            let e = into.entry(name.clone()).or_insert(0.0);
            if *value > *e {
                *e = *value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_follow_the_section_9_table() {
        assert_eq!(mailbox_bound("aggbox3.egress"), Some(4096.0));
        assert_eq!(mailbox_bound("worker0-2.broadcast"), Some(256.0));
        assert_eq!(mailbox_bound("chan.data.1001-10000"), Some(256.0));
        assert_eq!(mailbox_bound("chan.accept.10000"), Some(1024.0));
        assert_eq!(mailbox_bound("tcp.reactor.3"), Some(1024.0));
        assert_eq!(mailbox_bound("tcp.chan.rx"), Some(1024.0));
        assert_eq!(mailbox_bound("mystery.queue"), None);
    }

    #[test]
    fn depth_checker_flags_escapes_and_unknowns() {
        let mut maxes = HashMap::new();
        maxes.insert("mailbox.depth.aggbox0.egress".to_string(), 4096.0);
        maxes.insert("mailbox.depth.chan.data.5-9".to_string(), 300.0);
        maxes.insert("mailbox.depth.rogue".to_string(), 1.0);
        let v = depth_violations(&maxes);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("chan.data.5-9")));
        assert!(v.iter().any(|m| m.contains("rogue")));
    }

    #[test]
    fn teardown_checker_flags_leaks() {
        let reg = netagg_obs::MetricsRegistry::new();
        reg.gauge(names::RUNTIME_THREADS_ACTIVE).set(2.0);
        reg.gauge(names::SHIM_MASTER_SOURCES_OUTSTANDING).set(3.0);
        reg.counter(names::SHIM_MASTER_REQUESTS_COMPLETED).add(5);
        reg.counter(names::SHIM_MASTER_REQUESTS_REGISTERED).add(4);
        let v = teardown_violations(&reg.snapshot());
        assert_eq!(v.len(), 3, "{v:?}");
        reg.gauge(names::RUNTIME_THREADS_ACTIVE).set(0.0);
        reg.gauge(names::SHIM_MASTER_SOURCES_OUTSTANDING).set(0.0);
        reg.counter(names::SHIM_MASTER_REQUESTS_REGISTERED).add(1);
        assert!(teardown_violations(&reg.snapshot()).is_empty());
    }
}
