//! A minimal Rust lexer: just enough token structure for the lint rules.
//!
//! Produces identifiers, string literals and punctuation with line/column
//! spans, and separately collects comments (for suppression parsing) and
//! `#[cfg(test)]` item spans (so rules can scope themselves to runtime
//! code). Deliberately not a parser: the rules match token *sequences*,
//! which is robust to formatting and needs no `syn`.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (text carries the inner contents, escapes untouched).
    StrLit,
    /// Numeric literal (contents irrelevant to every rule).
    Number,
    /// Single punctuation character.
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for strings: inner contents without quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block), with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl Lexed {
    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into tokens, comments and test-region spans.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap() as char);
                }
                let trimmed = text.trim_start_matches('/').trim_start_matches('!');
                comments.push(Comment {
                    text: trimmed.trim().to_string(),
                    line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Block comments nest in Rust.
                let mut depth = 0usize;
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'/' && cur.peek(1) == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if c == b'*' && cur.peek(1) == Some(b'/') {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(cur.bump().unwrap() as char);
                    }
                }
                comments.push(Comment {
                    text: text.trim_matches(['*', '!', ' ', '\n']).to_string(),
                    line,
                });
            }
            b'"' => {
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\\' {
                        text.push(cur.bump().unwrap() as char);
                        if cur.peek(0).is_some() {
                            text.push(cur.bump().unwrap() as char);
                        }
                    } else if c == b'"' {
                        cur.bump();
                        break;
                    } else {
                        text.push(cur.bump().unwrap() as char);
                    }
                }
                toks.push(Tok {
                    kind: TokKind::StrLit,
                    text,
                    line,
                    col,
                });
            }
            b'r' if matches!(cur.peek(1), Some(b'"') | Some(b'#')) => {
                // Raw string r"..." / r#"..."# (any hash depth); fall back
                // to an identifier when it is not actually a raw string.
                let mut hashes = 0usize;
                while cur.peek(1 + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if cur.peek(1 + hashes) == Some(b'"') {
                    cur.bump(); // r
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    cur.bump(); // opening quote
                    let mut text = String::new();
                    'raw: while let Some(c) = cur.peek(0) {
                        if c == b'"' {
                            let mut ok = true;
                            for i in 0..hashes {
                                if cur.peek(1 + i) != Some(b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                cur.bump();
                                for _ in 0..hashes {
                                    cur.bump();
                                }
                                break 'raw;
                            }
                        }
                        text.push(cur.bump().unwrap() as char);
                    }
                    toks.push(Tok {
                        kind: TokKind::StrLit,
                        text,
                        line,
                        col,
                    });
                } else {
                    lex_ident(&mut cur, &mut toks, line, col);
                }
            }
            b'\'' => {
                // Lifetime ('a) vs char literal ('x', '\n'). A lifetime is
                // a quote followed by an identifier NOT closed by a quote.
                let is_lifetime =
                    cur.peek(1).map(is_ident_start).unwrap_or(false) && cur.peek(2) != Some(b'\'');
                cur.bump();
                if is_lifetime {
                    while cur.peek(0).map(is_ident_cont).unwrap_or(false) {
                        cur.bump();
                    }
                } else {
                    // Char literal: consume to the closing quote.
                    if cur.peek(0) == Some(b'\\') {
                        cur.bump();
                        cur.bump();
                    } else {
                        cur.bump();
                    }
                    if cur.peek(0) == Some(b'\'') {
                        cur.bump();
                    }
                }
            }
            c if is_ident_start(c) => lex_ident(&mut cur, &mut toks, line, col),
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    let fractional_dot =
                        c == b'.' && cur.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false);
                    if is_ident_cont(c) || fractional_dot {
                        text.push(cur.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }

    let test_regions = find_test_regions(&toks);
    Lexed {
        toks,
        comments,
        test_regions,
    }
}

fn lex_ident(cur: &mut Cursor<'_>, toks: &mut Vec<Tok>, line: u32, col: u32) {
    let mut text = String::new();
    while cur.peek(0).map(is_ident_cont).unwrap_or(false) {
        text.push(cur.bump().unwrap() as char);
    }
    toks.push(Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    });
}

/// Find line spans of items annotated `#[cfg(test)]` (or any `cfg`
/// attribute mentioning `test`): from the attribute to the closing brace
/// of the item it decorates.
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Scan the attribute's bracket span.
            let start_line = toks[i].line;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_cfg = false;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].is_ident("cfg") {
                    is_cfg = true;
                } else if toks[j].is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if is_cfg && has_test {
                // Skip any further attributes, then find the item body.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                    let mut d = 1i32;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // Advance to the first `{` (item body) or `;` (e.g.
                // `#[cfg(test)] mod tests;` — no inline span).
                while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct('{') {
                    let mut d = 1i32;
                    let mut m = k + 1;
                    while m < toks.len() && d > 0 {
                        if toks[m].is_punct('{') {
                            d += 1;
                        } else if toks[m].is_punct('}') {
                            d -= 1;
                        }
                        m += 1;
                    }
                    let end_line = toks
                        .get(m.saturating_sub(1))
                        .map(|t| t.line)
                        .unwrap_or(u32::MAX);
                    regions.push((start_line, end_line));
                    i = m;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_strings_and_puncts() {
        let l = lex(r#"let x = obs.counter("aggbox.tasks_executed"); // note"#);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "obs", "counter"]);
        let s: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::StrLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(s, vec!["aggbox.tasks_executed"]);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, "note");
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let l = lex("// thread::spawn\n/* thread::spawn */\nlet s = \"thread::spawn\";");
        assert!(!l.toks.iter().any(|t| t.is_ident("thread")));
    }

    #[test]
    fn lifetimes_do_not_eat_source() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(l.toks.iter().any(|t| t.is_ident("str")));
        let l2 = lex("let c = 'x'; let n = '\\n'; let ident_after = 1;");
        assert!(l2.toks.iter().any(|t| t.is_ident("ident_after")));
    }

    #[test]
    fn raw_strings_lex_as_one_literal() {
        let l = lex(r##"let s = r#"with "quotes" inside"#; let after = 2;"##);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::StrLit && t.text.contains("quotes")));
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let l = lex(src);
        assert_eq!(l.test_regions.len(), 1);
        assert!(l.in_test_region(4));
        assert!(!l.in_test_region(1));
        assert!(!l.in_test_region(6));
    }

    #[test]
    fn line_and_col_are_one_based_and_accurate() {
        let l = lex("a\n  b");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }
}
