//! Cross-file concurrency analysis: the static lock-acquisition graph
//! (DESIGN.md §15).
//!
//! The workspace declares every shared lock in
//! `netagg-net/src/lock_order.rs` as a `LockRank` constant, and every hot
//! lock site wraps its mutex in `OrderedMutex::new(RANK, ..)` /
//! `OrderedRwLock::new(RANK, ..)`. This module recovers, per file and
//! without `syn`:
//!
//! 1. **Bindings** — which receiver identifiers name which registered
//!    lock. Inferred from construction sites
//!    (`field: OrderedMutex::new(lock_order::RANK, ..)` binds `field`),
//!    or declared explicitly with
//!    `// netagg-lint: lock-binding(ident = registry.name)` when the
//!    receiver is not lexically tied to a construction site.
//! 2. **Acquisition edges** — a brace/statement-scoped walk of every `fn`
//!    body tracks which guards are live; each `.lock()` / `.read()` /
//!    `.write()` / `.try_lock()` on a bound receiver records one
//!    `held → acquired` edge per live guard. A same-file transitive
//!    closure (fn → locks it eventually takes) adds *indirect* edges for
//!    calls made while a guard is held. `move` closures and nested `fn`
//!    items run on other threads or later, so guards do not propagate
//!    into them.
//! 3. **Checks** — [`graph_checks`] requires every blocking edge to go
//!    strictly *up* in rank and the whole graph (lexical + the §15
//!    declared cross-layer edges) to be acyclic; `try_*` acquisitions are
//!    recorded but exempt, since a failed try cannot complete a deadlock
//!    cycle. [`sync_checks`] keeps `lock_order.rs` and the §15 "Lock
//!    ranks" table in exact bidirectional sync — the same contract
//!    pattern as the §7 metrics table.
//!
//! The debug-build runtime witness (`netagg-net`'s
//! `lifecycle::witness_edges`) records the edges that *actually* occur;
//! the root `tests/lock_witness.rs` suite asserts they are contained in
//! this static graph, closing the loop in the other direction.
//!
//! Blocking-while-locked: while a guard is live, calls that can block
//! indefinitely (Mailbox `send`/`recv`, `Condvar::wait*`, `JoinScope`
//! joins, `sleep`, socket `connect`/`accept`/`write_all`/`read_exact`)
//! are flagged — a blocked holder stalls every other acquirer. The
//! guard a `Condvar` wait atomically releases is exempt.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::contract::Contract;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::{diag, is_called, matching_brace, LOCK_ORDER, NO_BLOCK_WHILE_LOCKED};
use crate::{Diagnostic, Level};

const LOCK_ORDER_FILE: &str = "crates/netagg-net/src/lock_order.rs";

/// Method names that acquire a registered lock.
const ACQUIRE_CALLS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Calls that can block indefinitely: forbidden while any registered
/// guard is live.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_cancellable",
    "recv_timeout",
    "accept",
    "accept_cancellable",
    "connect",
    "join_all",
    "finish",
    "sleep",
    "wait",
    "wait_for",
    "wait_timeout",
    "write_all",
    "read_exact",
];

/// `Condvar` waits: the guard passed as the first argument is atomically
/// released for the duration, so it alone is exempt at that call.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_for", "wait_timeout"];

/// One acquisition edge of the static graph: `from` was held when `to`
/// was acquired.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Registry name of the held lock.
    pub from: String,
    /// Registry name of the acquired lock.
    pub to: String,
    /// Workspace-relative file the acquisition is in.
    pub file: String,
    /// 1-based line of the acquisition (or call site for indirect edges).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Acquired via `try_*`: recorded in the graph, exempt from rank and
    /// cycle checks (a failed try cannot complete a deadlock cycle).
    pub non_blocking: bool,
    /// For indirect edges: the same-file function whose transitive lock
    /// set produced this edge.
    pub via: Option<String>,
}

/// The lock registry, keyed both by constant identifier (for binding
/// inference at construction sites) and by registry name (for ranks).
#[derive(Debug, Default)]
pub struct Registry {
    by_ident: HashMap<String, (u16, String)>,
    /// Registry name → rank.
    pub by_name: BTreeMap<String, u16>,
}

impl Registry {
    /// Build the registry view from the contract's parsed
    /// `lock_order.rs` constants.
    pub fn from_contract(c: &Contract) -> Self {
        let mut reg = Self::default();
        for r in &c.lock_ranks {
            reg.by_ident
                .insert(r.ident.clone(), (r.rank, r.name.clone()));
            reg.by_name.insert(r.name.clone(), r.rank);
        }
        reg
    }

    /// Whether the registry has no locks (fixture contracts).
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

/// Result of analysing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Acquisition edges observed in this file (direct and indirect).
    pub edges: Vec<Edge>,
    /// Per-file diagnostics: binding conflicts, unknown `lock-binding`
    /// names, `no-block-while-locked` findings. These honour
    /// suppressions like any other per-file rule.
    pub diags: Vec<Diagnostic>,
}

/// Whether lock analysis applies to this path: test and bench code may
/// nest locks adversarially (the witness suites do, on purpose), so only
/// runtime code contributes to the graph.
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.contains("/tests/")
        || path.contains("/benches/")
}

/// Analyse one file: infer bindings, walk every `fn` body, emit edges
/// and `no-block-while-locked` diagnostics.
pub fn analyze_file(path: &str, lexed: &Lexed, reg: &Registry) -> FileAnalysis {
    let mut fa = FileAnalysis::default();
    if reg.is_empty() || is_test_path(path) {
        return fa;
    }
    let bindings = collect_bindings(path, lexed, reg, &mut fa.diags);
    if bindings.is_empty() {
        return fa;
    }
    let toks = &lexed.toks;
    let fns = collect_fns(toks);
    let fn_names: HashSet<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    let types = collect_types(toks);

    // Per-named-fn direct lock sets and call lists (same-name fns across
    // impl blocks merge — an over-approximation that only widens the
    // graph).
    let mut fn_locks: HashMap<String, BTreeSet<(String, bool)>> = HashMap::new();
    let mut fn_callees: HashMap<String, BTreeSet<String>> = HashMap::new();
    let mut call_sites: Vec<CallSite> = Vec::new();

    for f in &fns {
        let mut acquired = Vec::new();
        let mut callees = Vec::new();
        simulate(
            path,
            lexed,
            &bindings,
            &fn_names,
            &types,
            f.open,
            f.close,
            &mut acquired,
            &mut callees,
            &mut call_sites,
            &mut fa.edges,
            &mut fa.diags,
        );
        fn_locks.entry(f.name.clone()).or_default().extend(acquired);
        fn_callees
            .entry(f.name.clone())
            .or_default()
            .extend(callees);
    }

    // Same-file transitive closure: locks a function eventually takes.
    let mut closure = fn_locks;
    loop {
        let mut changed = false;
        for (f, callees) in &fn_callees {
            let mut add: BTreeSet<(String, bool)> = BTreeSet::new();
            for callee in callees {
                if callee == f {
                    continue;
                }
                if let Some(locks) = closure.get(callee) {
                    add.extend(locks.iter().cloned());
                }
            }
            let set = closure.entry(f.clone()).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Indirect edges: calls made while a guard is held reach everything
    // in the callee's transitive lock set.
    for cs in &call_sites {
        let Some(locks) = closure.get(&cs.callee) else {
            continue;
        };
        for (lock, non_blocking) in locks {
            for held in &cs.guards {
                fa.edges.push(Edge {
                    from: held.clone(),
                    to: lock.clone(),
                    file: path.to_string(),
                    line: cs.line,
                    col: cs.col,
                    non_blocking: *non_blocking,
                    via: Some(cs.callee.clone()),
                });
            }
        }
    }
    fa
}

/// Map receiver identifier → registry lock name for one file.
fn collect_bindings(
    path: &str,
    lexed: &Lexed,
    reg: &Registry,
    diags: &mut Vec<Diagnostic>,
) -> HashMap<String, String> {
    let toks = &lexed.toks;
    let mut map: HashMap<String, String> = HashMap::new();
    let mut bind = |recv: String, name: String, tok: &Tok, diags: &mut Vec<Diagnostic>| {
        if let Some(prev) = map.get(&recv) {
            if *prev != name {
                diags.push(diag(
                    LOCK_ORDER,
                    path,
                    tok,
                    format!(
                        "receiver `{recv}` is bound to both `{prev}` and \
                         `{name}` in this file — rename one receiver or add \
                         an explicit `lock-binding` comment"
                    ),
                ));
            }
            return;
        }
        map.insert(recv, name);
    };

    // Construction sites: `recv: OrderedMutex::new(RANK, ..)` (struct
    // field) or `[let [mut]] recv = OrderedMutex::new(RANK, ..)`.
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("OrderedMutex") || t.is_ident("OrderedRwLock")) {
            continue;
        }
        let path_sep = toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false);
        if !path_sep
            || !toks.get(i + 3).map(|t| t.is_ident("new")).unwrap_or(false)
            || !toks.get(i + 4).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            continue;
        }
        if lexed.in_test_region(t.line) {
            continue;
        }
        // The rank argument: last identifier before the first `,` at
        // relative bracket depth 0 (handles `lock_order::RANK` paths).
        let mut j = i + 5;
        let mut depth = 0i32;
        let mut rank_ident: Option<&str> = None;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct('(') || a.is_punct('[') {
                depth += 1;
            } else if a.is_punct(')') || a.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if a.is_punct(',') && depth == 0 {
                break;
            } else if a.kind == TokKind::Ident {
                rank_ident = Some(&a.text);
            }
            j += 1;
        }
        let Some((_, name)) = rank_ident.and_then(|id| reg.by_ident.get(id)) else {
            continue;
        };
        // The receiver: skip leading path segments (`lifecycle::`), then
        // look at what introduces the constructor expression.
        let mut start = i;
        while start >= 3
            && toks[start - 1].is_punct(':')
            && toks[start - 2].is_punct(':')
            && toks[start - 3].kind == TokKind::Ident
        {
            start -= 3;
        }
        if start == 0 {
            continue;
        }
        let prev = &toks[start - 1];
        let single_colon = prev.is_punct(':') && !(start >= 2 && toks[start - 2].is_punct(':'));
        let recv = if single_colon {
            // Struct-literal field init.
            (start >= 2 && toks[start - 2].kind == TokKind::Ident)
                .then(|| toks[start - 2].text.clone())
        } else if prev.is_punct('=') {
            // `let [mut] recv = ...` / `recv = ...` / `if let Pat(recv) =`:
            // last non-`mut` identifier of the pattern.
            let mut k = start - 1;
            let mut found = None;
            while k > 0 {
                k -= 1;
                let a = &toks[k];
                if a.is_punct(';') || a.is_punct('{') || a.is_punct('}') {
                    break;
                }
                if a.kind == TokKind::Ident && a.text != "mut" {
                    found = Some(a.text.clone());
                    break;
                }
            }
            found
        } else {
            None
        };
        if let Some(recv) = recv {
            bind(recv, name.clone(), t, diags);
        }
    }

    // Explicit declarations: `// netagg-lint: lock-binding(recv = name)`.
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("netagg-lint:") else {
            continue;
        };
        let mut rest = rest.trim();
        while let Some(pos) = rest.find("lock-binding(") {
            let after = &rest[pos + 13..];
            let Some(close) = after.find(')') else { break };
            let inner = &after[..close];
            if let Some((recv, name)) = inner.split_once('=') {
                let (recv, name) = (recv.trim().to_string(), name.trim().to_string());
                let at = Tok {
                    kind: TokKind::Ident,
                    text: recv.clone(),
                    line: c.line,
                    col: 1,
                };
                if reg.by_name.contains_key(&name) {
                    bind(recv, name, &at, diags);
                } else {
                    diags.push(diag(
                        LOCK_ORDER,
                        path,
                        &at,
                        format!(
                            "lock-binding names `{name}`, which is not in the \
                             lock_order.rs registry"
                        ),
                    ));
                }
            }
            rest = &after[close + 1..];
        }
    }
    map
}

/// One function item with the token range of its body braces.
struct FnDef {
    name: String,
    open: usize,
    close: usize,
}

/// Find the body `{` of a `fn` whose name token sits at `name_idx`:
/// first `{` at bracket depth 0 after the signature; `None` for
/// body-less trait declarations.
fn fn_body_open(toks: &[Tok], name_idx: usize) -> Option<usize> {
    let mut j = name_idx + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(j);
        } else if t.is_punct(';') && depth == 0 {
            return None;
        }
        j += 1;
    }
    None
}

fn collect_fns(toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
        {
            if let Some(open) = fn_body_open(toks, i + 1) {
                out.push(FnDef {
                    name: toks[i + 1].text.clone(),
                    open,
                    close: matching_brace(toks, open),
                });
                // Keep scanning *inside* the body so nested fns are
                // collected as their own items.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Type names declared in this file (`struct`/`enum`/`trait`/`union`).
/// A path-qualified call `X::f(..)` is attributed to a same-file `fn f`
/// only when `X` is one of these (or `Self`) — otherwise
/// `TcpStream::connect(..)` would be credited to the file's own
/// `fn connect`, manufacturing edges that never execute.
fn collect_types(toks: &[Tok]) -> HashSet<String> {
    let mut out = HashSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "struct" | "enum" | "trait" | "union")
        {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident {
                    out.insert(n.text.clone());
                }
            }
        }
    }
    out
}

/// A same-file call made while guards were held.
struct CallSite {
    callee: String,
    /// Registry names of the locks held at the call.
    guards: Vec<String>,
    line: u32,
    col: u32,
}

/// A live guard during the scope walk.
struct Guard {
    lock: String,
    /// Local variable holding the guard, when let-bound (enables
    /// `drop(ident)` and the `Condvar` first-argument exemption).
    binding: Option<String>,
    expire: Expire,
    line: u32,
}

enum Expire {
    /// Let-bound: lives until the block at this depth closes.
    Block(i32),
    /// Temporary: lives until the next `;` at (or below) this depth.
    Stmt(i32),
}

/// Walk one body's tokens (`open`/`close` are the brace indices),
/// tracking guard scopes. Appends:
/// * direct edges to `edges`,
/// * `(lock, non_blocking)` acquisitions to `acquired`,
/// * same-file callee names to `callees`,
/// * guard-holding call sites to `call_sites`,
/// * `no-block-while-locked` findings to `diags`.
///
/// `move` closures and nested `fn` items execute on another thread or
/// later: the walk recurses into them with a fresh (empty) guard stack
/// and does not attribute their locks to the enclosing function.
#[allow(clippy::too_many_arguments)]
fn simulate(
    path: &str,
    lexed: &Lexed,
    bindings: &HashMap<String, String>,
    fn_names: &HashSet<&str>,
    types: &HashSet<String>,
    open: usize,
    close: usize,
    acquired: &mut Vec<(String, bool)>,
    callees: &mut Vec<String>,
    call_sites: &mut Vec<CallSite>,
    edges: &mut Vec<Edge>,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 1;
    let mut stmt_start = open + 1;
    let mut j = open + 1;
    while j < close.min(toks.len()) {
        let t = &toks[j];

        if t.is_punct('{') {
            depth += 1;
            stmt_start = j + 1;
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| match g.expire {
                Expire::Block(d) => depth >= d,
                // A `}` back at (or above) the acquisition depth ends the
                // enclosing statement — an `if`/`match` head temporary dies
                // here, not at the end of the surrounding block.
                Expire::Stmt(d) => depth > d,
            });
            stmt_start = j + 1;
            j += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !matches!(g.expire, Expire::Stmt(d) if depth <= d));
            stmt_start = j + 1;
            j += 1;
            continue;
        }

        // Nested fn item: its body does not run here.
        if t.is_ident("fn")
            && toks
                .get(j + 1)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
        {
            if let Some(o) = fn_body_open(toks, j + 1) {
                j = matching_brace(toks, o) + 1;
                continue;
            }
        }

        // `move` closure: runs on another thread (JoinScope spawns,
        // scheduler tasks) — fresh guard stack, locks not attributed to
        // the enclosing fn.
        if t.is_ident("move") && toks.get(j + 1).map(|t| t.is_punct('|')).unwrap_or(false) {
            let args_end = if toks.get(j + 2).map(|t| t.is_punct('|')).unwrap_or(false) {
                j + 2
            } else {
                let mut k = j + 2;
                while k < toks.len() && !toks[k].is_punct('|') {
                    k += 1;
                }
                k
            };
            // Body: a brace block, or a bare expression up to the `,` /
            // `)` that closes the closure argument.
            let mut k = args_end + 1;
            while k < toks.len()
                && !toks[k].is_punct('{')
                && !toks[k].is_punct(',')
                && !toks[k].is_punct(')')
            {
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                let body_close = matching_brace(toks, k);
                let mut sink_acq = Vec::new();
                let mut sink_callees = Vec::new();
                simulate(
                    path,
                    lexed,
                    bindings,
                    fn_names,
                    types,
                    k,
                    body_close,
                    &mut sink_acq,
                    &mut sink_callees,
                    call_sites,
                    edges,
                    diags,
                );
                j = body_close + 1;
            } else {
                j = k;
            }
            continue;
        }

        // `drop(guard)` releases a named guard early.
        if t.is_ident("drop")
            && toks.get(j + 1).map(|t| t.is_punct('(')).unwrap_or(false)
            && toks
                .get(j + 2)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
            && toks.get(j + 3).map(|t| t.is_punct(')')).unwrap_or(false)
        {
            let name = &toks[j + 2].text;
            guards.retain(|g| g.binding.as_deref() != Some(name));
            j += 4;
            continue;
        }

        if t.kind == TokKind::Ident && is_called(toks, j) {
            let in_test = lexed.in_test_region(t.line);

            // Acquisition of a bound receiver.
            if ACQUIRE_CALLS.contains(&t.text.as_str()) && j >= 1 && toks[j - 1].is_punct('.') {
                if let Some(lock) = receiver(toks, j - 1).and_then(|r| bindings.get(&r)) {
                    if !in_test {
                        let non_blocking = t.text.starts_with("try_");
                        for g in &guards {
                            edges.push(Edge {
                                from: g.lock.clone(),
                                to: lock.clone(),
                                file: path.to_string(),
                                line: t.line,
                                col: t.col,
                                non_blocking,
                                via: None,
                            });
                        }
                        acquired.push((lock.clone(), non_blocking));
                        let stmt = &toks[stmt_start..j];
                        let chained = call_is_chained(toks, j);
                        guards.push(make_guard(lock.clone(), chained, stmt, depth, t.line));
                    }
                    j += 1;
                    continue;
                }
            }

            // Blocking call while holding a guard.
            if !in_test && BLOCKING_CALLS.contains(&t.text.as_str()) && j >= 1 {
                let qualified = toks[j - 1].is_punct('.') || toks[j - 1].is_punct(':');
                if qualified && !guards.is_empty() {
                    let exempt = if CONDVAR_WAITS.contains(&t.text.as_str()) {
                        first_arg_idents(toks, j)
                    } else {
                        HashSet::new()
                    };
                    let held: Vec<&Guard> = guards
                        .iter()
                        .filter(|g| {
                            g.binding
                                .as_ref()
                                .map(|b| !exempt.contains(b))
                                .unwrap_or(true)
                        })
                        .collect();
                    if !held.is_empty() {
                        let names: Vec<String> = held
                            .iter()
                            .map(|g| format!("`{}` (line {})", g.lock, g.line))
                            .collect();
                        diags.push(diag(
                            NO_BLOCK_WHILE_LOCKED,
                            path,
                            t,
                            format!(
                                "blocking call `{}` while holding {} — a \
                                 blocked holder stalls every other acquirer; \
                                 move the call outside the lock scope \
                                 (DESIGN.md §15)",
                                t.text,
                                names.join(", ")
                            ),
                        ));
                    }
                }
            }

            // Same-file call: record for the interprocedural closure. A
            // path-qualified call only counts when the path names a type
            // declared in this file (or `Self`).
            let foreign_path = j >= 2
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && !(j >= 3
                    && toks[j - 3].kind == TokKind::Ident
                    && (toks[j - 3].text == "Self" || types.contains(&toks[j - 3].text)));
            let is_fn_decl = j >= 1 && toks[j - 1].is_ident("fn");
            if fn_names.contains(t.text.as_str()) && !foreign_path && !is_fn_decl && !in_test {
                callees.push(t.text.clone());
                if !guards.is_empty() {
                    call_sites.push(CallSite {
                        callee: t.text.clone(),
                        guards: guards.iter().map(|g| g.lock.clone()).collect(),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }

        j += 1;
    }
}

/// `m.lock().get(..)` never binds the guard: the temporary dies at the
/// statement even under a `let v = ...` head. True when the acquisition
/// call's result is immediately consumed by a method chain or `?`.
fn call_is_chained(toks: &[Tok], call_ident: usize) -> bool {
    let mut i = call_ident + 1;
    // Skip a turbofish between the name and the argument list.
    if i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
        i += 2;
        if i < toks.len() && toks[i].is_punct('<') {
            let mut angle = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('<') {
                    angle += 1;
                } else if toks[i].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
    }
    if i >= toks.len() || !toks[i].is_punct('(') {
        return false;
    }
    let mut paren = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('(') {
            paren += 1;
        } else if toks[i].is_punct(')') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        }
        i += 1;
    }
    toks.get(i + 1)
        .map(|n| n.is_punct('.') || n.is_punct('?'))
        .unwrap_or(false)
}

/// Decide how long a fresh guard lives, from its statement's tokens: an
/// `=` before an unchained acquisition means a named binding living to
/// the end of the enclosing block; otherwise it is a temporary dropped
/// at the statement boundary — the next `;` at its depth, or the `}`
/// closing the statement it heads (`if let`/`match` scrutinee
/// temporaries stay live through the body, matching Rust 2021).
fn make_guard(lock: String, chained: bool, stmt: &[Tok], depth: i32, line: u32) -> Guard {
    if chained {
        // The guard is consumed inside the expression; it cannot outlive
        // the statement no matter what the statement binds.
        return Guard {
            lock,
            binding: None,
            expire: Expire::Stmt(depth),
            line,
        };
    }
    // Find a plain `=` (not `==`, `=>`, `<=`, `>=`, `!=`, `+=`, ...).
    let mut eq = None;
    for (k, t) in stmt.iter().enumerate() {
        if !t.is_punct('=') {
            continue;
        }
        let next_bad = stmt
            .get(k + 1)
            .map(|n| n.is_punct('=') || n.is_punct('>'))
            .unwrap_or(false);
        let prev_bad = k > 0
            && matches!(
                stmt[k - 1].text.as_str(),
                "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
            )
            && stmt[k - 1].kind == TokKind::Punct;
        if !next_bad && !prev_bad {
            eq = Some(k);
            break;
        }
    }
    if let Some(eq) = eq {
        // Binding ident: last non-`mut` identifier before the `=`.
        let ident = stmt[..eq]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            .map(|t| t.text.clone());
        Guard {
            lock,
            binding: ident,
            expire: Expire::Block(depth),
            line,
        }
    } else {
        Guard {
            lock,
            binding: None,
            expire: Expire::Stmt(depth),
            line,
        }
    }
}

/// Resolve the receiver of a method call: the identifier before the `.`,
/// looking through one trailing call or index (`link_dir().lock()`,
/// `links[i].lock()`).
fn receiver(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let t = &toks[dot - 1];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    let (open_c, close_c) = if t.is_punct(')') {
        ('(', ')')
    } else if t.is_punct(']') {
        ('[', ']')
    } else {
        return None;
    };
    let mut depth = 0i32;
    let mut k = dot - 1;
    loop {
        let a = &toks[k];
        if a.is_punct(close_c) {
            depth += 1;
        } else if a.is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    (k >= 1 && toks[k - 1].kind == TokKind::Ident).then(|| toks[k - 1].text.clone())
}

/// Identifiers in the first argument of the call at `call_idx` (which
/// points at the called name), for the `Condvar` guard exemption.
fn first_arg_idents(toks: &[Tok], call_idx: usize) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut j = call_idx + 1;
    while j < toks.len() && !toks[j].is_punct('(') {
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            break;
        } else if t.kind == TokKind::Ident {
            out.insert(t.text.clone());
        }
        j += 1;
    }
    out
}

/// Workspace-level checks over the merged edge set (lexical edges from
/// every file plus the §15 declared cross-layer edges): every blocking
/// edge must go strictly up in rank, and the blocking subgraph must be
/// acyclic. Edge diagnostics anchor at the first lexical occurrence.
pub fn graph_checks(
    edges: &[Edge],
    contract: &Contract,
    reg: &Registry,
    out: &mut Vec<Diagnostic>,
) {
    // Declared edges must name registered locks.
    for de in &contract.declared_edges {
        for name in [&de.from, &de.to] {
            if !reg.by_name.contains_key(name) {
                out.push(Diagnostic {
                    rule: LOCK_ORDER.into(),
                    file: "DESIGN.md".into(),
                    line: de.line,
                    col: 1,
                    level: Level::Error,
                    message: format!(
                        "§15 declared edge names `{name}`, which is not in \
                         the lock_order.rs registry"
                    ),
                });
            }
        }
    }

    // Rank monotonicity, deduped by (from, to) pair.
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in edges {
        if e.non_blocking {
            continue;
        }
        let (Some(&rf), Some(&rt)) = (reg.by_name.get(&e.from), reg.by_name.get(&e.to)) else {
            continue;
        };
        if rt > rf {
            continue;
        }
        if !reported.insert((e.from.clone(), e.to.clone())) {
            continue;
        }
        let via = e
            .via
            .as_ref()
            .map(|f| format!(" (via `{f}`)"))
            .unwrap_or_default();
        out.push(Diagnostic {
            rule: LOCK_ORDER.into(),
            file: e.file.clone(),
            line: e.line,
            col: e.col,
            level: Level::Error,
            message: format!(
                "acquiring `{}` (rank {rt}) while holding `{}` (rank {rf}){via} \
                 — acquisitions must ascend the §15 rank order",
                e.to, e.from
            ),
        });
    }

    // Cycle detection over the blocking subgraph (lexical + declared).
    // Strictly ascending ranks already imply acyclicity; this is the
    // defence-in-depth check that also catches rank-table edits that
    // reintroduce ties.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut anchor: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in edges.iter().filter(|e| !e.non_blocking) {
        if reg.by_name.contains_key(&e.from) && reg.by_name.contains_key(&e.to) {
            adj.entry(&e.from).or_default().insert(&e.to);
            anchor.entry((&e.from, &e.to)).or_insert((&e.file, e.line));
        }
    }
    for de in &contract.declared_edges {
        if reg.by_name.contains_key(&de.from) && reg.by_name.contains_key(&de.to) {
            adj.entry(&de.from).or_default().insert(&de.to);
            anchor
                .entry((&de.from, &de.to))
                .or_insert(("DESIGN.md", de.line));
        }
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut on_path: Vec<&str> = Vec::new();
        find_cycle(start, &adj, &mut on_path, &mut |cycle| {
            // Normalise: rotate so the smallest name leads.
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut norm: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            norm.rotate_left(min);
            if seen_cycles.insert(norm.clone()) {
                let (file, line) = anchor
                    .get(&(cycle[0], cycle[1 % cycle.len()]))
                    .copied()
                    .unwrap_or(("DESIGN.md", 1));
                out.push(Diagnostic {
                    rule: LOCK_ORDER.into(),
                    file: file.to_string(),
                    line,
                    col: 1,
                    level: Level::Error,
                    message: format!(
                        "lock acquisition cycle: {} → {} — a deadlock is \
                         reachable; break the cycle or make one side a \
                         `try_lock`",
                        norm.join(" → "),
                        norm[0]
                    ),
                });
            }
        });
    }
}

/// DFS from `node`, invoking `on_cycle` with each elementary cycle found
/// through the current path.
fn find_cycle<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    on_path: &mut Vec<&'a str>,
    on_cycle: &mut impl FnMut(&[&'a str]),
) {
    if let Some(pos) = on_path.iter().position(|&n| n == node) {
        on_cycle(&on_path[pos..]);
        return;
    }
    on_path.push(node);
    if let Some(nexts) = adj.get(node) {
        for &n in nexts {
            find_cycle(n, adj, on_path, on_cycle);
        }
    }
    on_path.pop();
}

/// Bidirectional sync between the `lock_order.rs` constants and the §15
/// "Lock ranks" table, plus registry sanity (unique ranks, unique names).
pub fn sync_checks(contract: &Contract, out: &mut Vec<Diagnostic>) {
    for r in &contract.lock_ranks {
        match contract.rank_rows.iter().find(|row| row.name == r.name) {
            None => out.push(Diagnostic {
                rule: LOCK_ORDER.into(),
                file: LOCK_ORDER_FILE.into(),
                line: r.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "lock `{}` (rank {}) has no row in the DESIGN.md §15 \
                     Lock ranks table — the registry and the table have \
                     drifted",
                    r.name, r.rank
                ),
            }),
            Some(row) if row.rank != r.rank => out.push(Diagnostic {
                rule: LOCK_ORDER.into(),
                file: "DESIGN.md".into(),
                line: row.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "§15 lists `{}` at rank {} but lock_order.rs declares \
                     rank {}",
                    r.name, row.rank, r.rank
                ),
            }),
            Some(_) => {}
        }
    }
    for row in &contract.rank_rows {
        if !contract.lock_ranks.iter().any(|r| r.name == row.name) {
            out.push(Diagnostic {
                rule: LOCK_ORDER.into(),
                file: "DESIGN.md".into(),
                line: row.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "§15 row `{}` has no LockRank constant in lock_order.rs \
                     — the table and the registry have drifted",
                    row.name
                ),
            });
        }
    }
    // Ranks and names must be unique, or the witness's strict ordering
    // cannot distinguish the locks.
    for (i, a) in contract.lock_ranks.iter().enumerate() {
        for b in &contract.lock_ranks[i + 1..] {
            if a.rank == b.rank || a.name == b.name {
                out.push(Diagnostic {
                    rule: LOCK_ORDER.into(),
                    file: LOCK_ORDER_FILE.into(),
                    line: b.line,
                    col: 1,
                    level: Level::Error,
                    message: format!(
                        "`{}` and `{}` collide (rank {} vs {}, name `{}` vs \
                         `{}`) — ranks and names must be unique",
                        a.ident, b.ident, a.rank, b.rank, a.name, b.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_contract() -> (Contract, Registry) {
        let mut c = Contract::from_sources(
            "## 15. Lock order\n\n\
             ### Lock ranks\n\n\
             | Rank | Lock | Protects |\n|---|---|---|\n\
             | 1 | `fx.alpha` | a |\n\
             | 2 | `fx.beta` | b |\n\
             | 3 | `fx.gamma` | c |\n",
            "",
        );
        c.lock_ranks = crate::contract::parse_rank_consts(
            "pub const ALPHA: LockRank = LockRank::new(1, \"fx.alpha\");\n\
             pub const BETA: LockRank = LockRank::new(2, \"fx.beta\");\n\
             pub const GAMMA: LockRank = LockRank::new(3, \"fx.gamma\");\n",
        );
        let reg = Registry::from_contract(&c);
        (c, reg)
    }

    fn edges_of(src: &str) -> (Vec<Edge>, Vec<Diagnostic>) {
        let (_, reg) = fixture_contract();
        let lexed = crate::lexer::lex(src);
        let fa = analyze_file("crates/x/src/lib.rs", &lexed, &reg);
        (fa.edges, fa.diags)
    }

    const STRUCT_SRC: &str = "\
struct S { alpha: OrderedMutex<u8>, beta: OrderedMutex<u8>, gamma: OrderedRwLock<u8> }
impl S {
    fn new() -> Self {
        Self {
            alpha: OrderedMutex::new(ALPHA, 0),
            beta: OrderedMutex::new(BETA, 0),
            gamma: OrderedRwLock::new(lock_order::GAMMA, 0),
        }
    }
";

    #[test]
    fn nested_acquisition_records_an_edge() {
        let src = format!(
            "{STRUCT_SRC}
    fn nest(&self) {{
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }}
}}"
        );
        let (edges, diags) = edges_of(&src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(
            (edges[0].from.as_str(), edges[0].to.as_str()),
            ("fx.alpha", "fx.beta")
        );
        assert!(!edges[0].non_blocking);
    }

    #[test]
    fn block_scope_and_drop_end_guards() {
        let src = format!(
            "{STRUCT_SRC}
    fn scoped(&self) {{
        {{ let a = self.alpha.lock(); }}
        let b = self.beta.lock();
        drop(b);
        let g = self.gamma.read();
    }}
}}"
        );
        let (edges, _) = edges_of(&src);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = format!(
            "{STRUCT_SRC}
    fn tmp(&self) {{
        self.beta.lock().wrapping_add(1);
        let a = self.alpha.lock();
    }}
}}"
        );
        let (edges, _) = edges_of(&src);
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn try_lock_edges_are_non_blocking() {
        let src = format!(
            "{STRUCT_SRC}
    fn t(&self) {{
        let b = self.beta.lock();
        if let Some(a) = self.alpha.try_lock() {{ let _ = a; }}
    }}
}}"
        );
        let (edges, _) = edges_of(&src);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert!(edges[0].non_blocking);
    }

    #[test]
    fn interprocedural_edge_via_same_file_call() {
        let src = format!(
            "{STRUCT_SRC}
    fn inner(&self) {{ let b = self.beta.lock(); }}
    fn outer(&self) {{
        let a = self.alpha.lock();
        self.inner();
    }}
}}"
        );
        let (edges, _) = edges_of(&src);
        let indirect: Vec<&Edge> = edges.iter().filter(|e| e.via.is_some()).collect();
        assert_eq!(indirect.len(), 1, "{edges:?}");
        assert_eq!(indirect[0].to, "fx.beta");
        assert_eq!(indirect[0].via.as_deref(), Some("inner"));
    }

    #[test]
    fn move_closures_do_not_inherit_guards() {
        let src = format!(
            "{STRUCT_SRC}
    fn spawns(&self, scope: &JoinScope) {{
        let a = self.alpha.lock();
        scope.spawn(\"w\", move || {{
            let b = self.beta.lock();
            mailbox.recv();
        }});
    }}
}}"
        );
        let (edges, diags) = edges_of(&src);
        assert!(edges.is_empty(), "{edges:?}");
        // The recv inside the closure holds fx.beta — that one is real.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("fx.beta"), "{diags:?}");
    }

    #[test]
    fn blocking_call_under_guard_is_flagged_and_condvar_guard_exempt() {
        let src = format!(
            "{STRUCT_SRC}
    fn blocks(&self, mb: &Mailbox<u8>) {{
        let a = self.alpha.lock();
        mb.send(1);
    }}
    fn waits(&self, cv: &Condvar) {{
        let mut a = self.alpha.lock();
        cv.wait(a.inner());
    }}
}}"
        );
        let (_, diags) = edges_of(&src);
        let blocked: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == NO_BLOCK_WHILE_LOCKED)
            .collect();
        assert_eq!(blocked.len(), 1, "{diags:?}");
        assert!(blocked[0].message.contains("`send`"));
    }

    #[test]
    fn rank_inversion_and_cycle_fire_graph_checks() {
        let (c, reg) = fixture_contract();
        let src = format!(
            "{STRUCT_SRC}
    fn ok(&self) {{ let a = self.alpha.lock(); let b = self.beta.lock(); }}
    fn bad(&self) {{ let b = self.beta.lock(); let a = self.alpha.lock(); }}
}}"
        );
        let lexed = crate::lexer::lex(&src);
        let fa = analyze_file("crates/x/src/lib.rs", &lexed, &reg);
        let mut out = Vec::new();
        graph_checks(&fa.edges, &c, &reg, &mut out);
        assert!(out.iter().any(|d| d.message.contains("ascend")), "{out:?}");
        assert!(out.iter().any(|d| d.message.contains("cycle")), "{out:?}");
    }

    #[test]
    fn sync_checks_catch_drift_both_ways() {
        let (mut c, _) = fixture_contract();
        // Registry gains a lock the table lacks.
        c.lock_ranks.push(crate::contract::RankEntry {
            ident: "DELTA".into(),
            rank: 4,
            name: "fx.delta".into(),
            line: 9,
        });
        // Table gains a row the registry lacks, plus a rank mismatch.
        c.rank_rows.push(crate::contract::RankRow {
            rank: 9,
            name: "fx.ghost".into(),
            line: 30,
        });
        c.rank_rows[0].rank = 7;
        let mut out = Vec::new();
        sync_checks(&c, &mut out);
        assert!(
            out.iter().any(|d| d.message.contains("fx.delta")),
            "{out:?}"
        );
        assert!(
            out.iter().any(|d| d.message.contains("fx.ghost")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|d| d.message.contains("rank 7") || d.message.contains("at rank 7")),
            "{out:?}"
        );
    }

    #[test]
    fn lock_binding_comment_binds_and_unknown_name_errors() {
        let (_, reg) = fixture_contract();
        let src = "\
// netagg-lint: lock-binding(shared = fx.alpha)
// netagg-lint: lock-binding(ghost = fx.nope)
fn f() { let a = shared.lock(); let b = shared.lock(); }
";
        let lexed = crate::lexer::lex(src);
        let fa = analyze_file("crates/x/src/lib.rs", &lexed, &reg);
        assert!(
            fa.diags.iter().any(|d| d.message.contains("fx.nope")),
            "{:?}",
            fa.diags
        );
        // Both acquisitions resolve through the comment binding: the
        // second records a (self-)edge while the first is held.
        assert_eq!(fa.edges.len(), 1, "{:?}", fa.edges);
        assert_eq!(fa.edges[0].from, "fx.alpha");
    }

    #[test]
    fn test_paths_and_test_regions_are_ignored() {
        let (_, reg) = fixture_contract();
        let src = format!(
            "{STRUCT_SRC}
}}
#[cfg(test)]
mod tests {{
    fn t(s: &super::S) {{ let b = s.beta.lock(); let a = s.alpha.lock(); }}
}}"
        );
        let lexed = crate::lexer::lex(&src);
        let fa = analyze_file("crates/x/src/lib.rs", &lexed, &reg);
        assert!(fa.edges.is_empty(), "{:?}", fa.edges);
        let fa2 = analyze_file("crates/x/tests/e2e.rs", &lexed, &reg);
        assert!(fa2.edges.is_empty() && fa2.diags.is_empty());
    }
}
