//! `netagg-lint`: the workspace invariant checker.
//!
//! A dependency-free, lexer-level static analysis that enforces the
//! contracts the runtime layers are built on (DESIGN.md §7–§10):
//!
//! * **no-raw-spawn** — `thread::spawn` / `thread::Builder` only inside
//!   `netagg-net/src/lifecycle.rs`; everything else uses `JoinScope`.
//! * **no-unbounded-channel** — no `mpsc::channel()` / crossbeam
//!   `unbounded()`; queues are bounded `Mailbox`es with explicit policies.
//! * **no-poll-shutdown** — no loop that discovers shutdown via a
//!   `recv_timeout`/`sleep` tick; cancellation is wakeup-driven.
//! * **metrics-contract** — metric/event names at call sites come from
//!   `netagg_obs::names`, and that module stays in exact bidirectional
//!   sync with the DESIGN.md §7 table.
//! * **thread-inventory** — inline `JoinScope::spawn` names match the
//!   DESIGN.md §9 thread table, and the §12 reactor-thread table stays a
//!   subset of §9.
//! * **lock-order** — the workspace-wide lock-acquisition graph (§15):
//!   every blocking acquisition made while a lock is held must ascend
//!   the `lock_order.rs` rank registry, the graph (including the §15
//!   declared cross-layer edges) must be acyclic, and the registry stays
//!   in exact bidirectional sync with the §15 "Lock ranks" table.
//! * **no-block-while-locked** — no Mailbox send/recv, `Condvar` wait,
//!   `JoinScope` join, sleep or socket I/O inside a lock scope (§15).
//! * **no-lock-unwrap** — no `.lock().unwrap()`: poison is handled by
//!   the lifecycle wrappers, not crashed through (§15).
//!
//! Suppress a finding with a comment on (or immediately above) the line:
//!
//! ```text
//! // netagg-lint: allow(no-raw-spawn) test drives the scope from outside
//! ```
//!
//! Suppressions that match nothing are `unused-suppression` **errors**:
//! a stale `allow` silently widens the hole it once justified, so it
//! fails the gate like any violation.

#![warn(missing_docs)]

pub mod contract;
pub mod lexer;
pub mod lockgraph;
pub mod rules;

use contract::Contract;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Severity of a diagnostic. Only [`Level::Error`] affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// A contract violation; fails the run.
    Error,
    /// Advisory.
    Warning,
}

/// One finding, anchored to a source span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (e.g. `no-raw-spawn`, or `unused-suppression`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Severity.
    pub level: Level,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl Diagnostic {
    /// Render as `level[rule]: file:line:col: message`.
    pub fn render(&self) -> String {
        let level = match self.level {
            Level::Error => "error",
            Level::Warning => "warning",
        };
        format!(
            "{level}[{}]: {}:{}:{}: {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }

    /// Render as a JSON object (manual, dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":{},"file":{},"line":{},"col":{},"level":{},"message":{}}}"#,
            json_str(&self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(match self.level {
                Level::Error => "error",
                Level::Warning => "warning",
            }),
            json_str(&self.message),
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One parsed `// netagg-lint: allow(rule)` suppression.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    /// Lines this suppression covers (its own + the next code line).
    covers: Vec<u32>,
    used: bool,
}

fn parse_suppressions(lexed: &lexer::Lexed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("netagg-lint:") else {
            continue;
        };
        let mut rest = rest.trim();
        while let Some(pos) = rest.find("allow(") {
            let after = &rest[pos + 6..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            // A trailing comment covers its own line; a standalone comment
            // covers the first code line after it.
            let standalone = !lexed.toks.iter().any(|t| t.line == c.line);
            let mut covers = vec![c.line];
            if standalone {
                if let Some(l) = lexed.toks.iter().map(|t| t.line).find(|&l| l > c.line) {
                    covers.push(l);
                }
            }
            out.push(Suppression {
                rule,
                line: c.line,
                covers,
                used: false,
            });
            rest = &after[close + 1..];
        }
    }
    out
}

/// Lint a single file's source text. `path` is the workspace-relative
/// path used both for reporting and for per-rule scoping (the lifecycle
/// exemption, test-directory handling).
pub fn lint_source(path: &str, src: &str, contract: &Contract) -> Vec<Diagnostic> {
    let reg = lockgraph::Registry::from_contract(contract);
    lint_file(path, src, contract, &reg).0
}

/// Per-file pass shared by [`lint_source`] and [`lint_workspace`]: run
/// every per-file rule, apply suppressions, and return the surviving
/// diagnostics together with the file's lock-acquisition edges (the
/// workspace pass feeds those into [`lockgraph::graph_checks`]).
fn lint_file(
    path: &str,
    src: &str,
    contract: &Contract,
    reg: &lockgraph::Registry,
) -> (Vec<Diagnostic>, Vec<lockgraph::Edge>) {
    let lexed = lexer::lex(src);
    let mut found = Vec::new();

    rules::no_raw_spawn(path, &lexed, &mut found);
    rules::no_unbounded_channel(path, &lexed, &mut found);
    rules::no_poll_shutdown(path, &lexed, &mut found);
    rules::no_lock_unwrap(path, &lexed, &mut found);

    let test_path = path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.contains("/tests/")
        || path.contains("/benches/");
    // Test code asserts against snapshots and names scratch metrics and
    // threads freely; the naming rules police production emit sites.
    if !test_path {
        // netagg-obs is the generic substrate (the registry itself and the
        // names module); its internals are not contract call sites.
        if !path.contains("netagg-obs/") {
            rules::metrics_contract_sites(path, &lexed, contract, &mut found);
        }
        rules::thread_inventory(path, &lexed, contract, &mut found);
    }

    let fa = lockgraph::analyze_file(path, &lexed, reg);
    found.extend(fa.diags);

    // Apply suppressions.
    let mut sups = parse_suppressions(&lexed);
    let mut kept = Vec::new();
    'diag: for d in found {
        for s in sups.iter_mut() {
            if s.rule == d.rule && s.covers.contains(&d.line) {
                s.used = true;
                continue 'diag;
            }
        }
        kept.push(d);
    }
    for s in &sups {
        let known = rules::ALL_RULES.contains(&s.rule.as_str());
        if !known {
            kept.push(Diagnostic {
                rule: "unused-suppression".into(),
                file: path.into(),
                line: s.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "`allow({})` names an unknown rule (known: {})",
                    s.rule,
                    rules::ALL_RULES.join(", ")
                ),
            });
        } else if !s.used {
            kept.push(Diagnostic {
                rule: "unused-suppression".into(),
                file: path.into(),
                line: s.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "`allow({})` suppresses nothing — remove the stale \
                     suppression (stale allows silently widen the hole they \
                     once justified)",
                    s.rule
                ),
            });
        }
    }
    (kept, fa.edges)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | ".git" | "fixtures") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file in the workspace rooted at `root` (excluding
/// `vendor/`, `target/` and lint fixtures), plus the global §7 ⇄
/// `names.rs` sync check. Results are sorted by file, then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let contract = Contract::load(root).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot load contract under {}: {e}", root.display()),
        )
    })?;
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut diags = Vec::new();
    rules::metrics_contract_sync(&contract, &mut diags);
    rules::thread_inventory_sync(&contract, &mut diags);
    lockgraph::sync_checks(&contract, &mut diags);
    let reg = lockgraph::Registry::from_contract(&contract);
    let mut edges = Vec::new();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let (d, e) = lint_file(&rel, &src, &contract, &reg);
        diags.extend(d);
        edges.extend(e);
    }
    // Graph-level checks run over the merged edge set; their findings are
    // global properties, not per-line ones, so they bypass suppressions.
    lockgraph::graph_checks(&edges, &contract, &reg, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(diags)
}

/// The workspace's static lock-acquisition graph as a set of
/// `(held, acquired)` registry-name pairs: every lexical edge (including
/// `try_*` acquisitions and same-file indirect edges) plus the §15
/// declared cross-layer edges. The runtime witness's observed edges must
/// be a subset of this (`tests/lock_witness.rs`).
pub fn lock_graph_names(root: &Path) -> io::Result<std::collections::BTreeSet<(String, String)>> {
    let contract = Contract::load(root)?;
    let reg = lockgraph::Registry::from_contract(&contract);
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = std::collections::BTreeSet::new();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let lexed = lexer::lex(&src);
        for e in lockgraph::analyze_file(&rel, &lexed, &reg).edges {
            out.insert((e.from, e.to));
        }
    }
    for de in &contract.declared_edges {
        out.insert((de.from.clone(), de.to.clone()));
    }
    Ok(out)
}

/// Whether a diagnostic set should fail the run.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.level == Level::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_contract() -> Contract {
        Contract::from_sources(
            "### Metrics contract\n\
             | Name | Type |\n|---|---|\n\
             | `aggbox.tasks_executed` | counter |\n\
             | `mailbox.depth.<name>` | gauge |\n\
             ### Structured events\n\
             | Kind | When |\n|---|---|\n\
             | `failure` | declared |\n\
             ### Thread inventory\n\
             | Thread name | Owner |\n|---|---|\n\
             | `aggbox-<b>-listen` | `AggBox` |\n",
            "pub const AGGBOX_TASKS_EXECUTED: &str = \"aggbox.tasks_executed\";\n\
             pub const MAILBOX_DEPTH: &str = \"mailbox.depth.<name>\";\n\
             pub const EVENT_FAILURE: &str = \"failure\";\n",
        )
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let c = mini_contract();
        let src = "\
// netagg-lint: allow(no-raw-spawn) fixture exercises the raw API
let t = std::thread::spawn(|| {});
let u = std::thread::spawn(|| {}); // netagg-lint: allow(no-raw-spawn)
let v = std::thread::spawn(|| {});
";
        let diags = lint_source("crates/x/src/lib.rs", src, &c);
        let errs: Vec<_> = diags.iter().filter(|d| d.rule == "no-raw-spawn").collect();
        assert_eq!(errs.len(), 1, "{diags:?}");
        assert_eq!(errs[0].line, 4);
    }

    #[test]
    fn unused_and_unknown_suppressions_are_errors() {
        let c = mini_contract();
        let src = "// netagg-lint: allow(no-raw-spawn)\nlet x = 1;\n\
                   // netagg-lint: allow(no-such-rule)\nlet y = 2;\n";
        let diags = lint_source("crates/x/src/lib.rs", src, &c);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.rule == "unused-suppression" && d.level == Level::Error));
        assert!(
            diags.iter().any(|d| d.message.contains("unknown rule")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("suppresses nothing")),
            "{diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic {
            rule: "metrics-contract".into(),
            file: "a.rs".into(),
            line: 1,
            col: 2,
            level: Level::Error,
            message: "name `x\"y\\z`".into(),
        };
        let j = d.to_json();
        assert!(j.contains(r#""message":"name `x\"y\\z`""#), "{j}");
    }

    #[test]
    fn test_directories_skip_naming_rules_but_not_spawn() {
        let c = mini_contract();
        let src = "fn t() { obs.counter(\"scratch.metric\"); \
                   let h = std::thread::spawn(|| {}); }";
        let diags = lint_source("crates/x/tests/e2e.rs", src, &c);
        assert!(diags.iter().all(|d| d.rule == "no-raw-spawn"), "{diags:?}");
        assert_eq!(diags.len(), 1);
    }
}
