//! CLI entry point: `cargo run -p netagg-lint -- --workspace [--json]`.
//!
//! Exit codes: `0` clean (warnings allowed), `1` violations found, `2`
//! usage or I/O error.

use netagg_lint::{has_errors, lint_workspace, Level};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
netagg-lint: workspace invariant checker (DESIGN.md §7–§10)

USAGE:
    netagg-lint [--workspace] [--json] [--root <dir>]

OPTIONS:
    --workspace    Lint the whole workspace (default; kept explicit for CI)
    --json         Emit diagnostics as a JSON array instead of text
    --root <dir>   Workspace root (default: ascend from cwd to DESIGN.md)
    -h, --help     Show this help
";

fn find_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return root.join("DESIGN.md").exists().then_some(root);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("DESIGN.md").exists() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = find_root(root) else {
        eprintln!("error: cannot locate the workspace root (no DESIGN.md found)");
        return ExitCode::from(2);
    };

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let items: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        println!("[{}]", items.join(","));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        let errors = diags.iter().filter(|d| d.level == Level::Error).count();
        let warnings = diags.len() - errors;
        println!(
            "netagg-lint: {errors} error(s), {warnings} warning(s) in {}",
            root.display()
        );
    }

    if has_errors(&diags) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
