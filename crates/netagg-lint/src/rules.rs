//! The lint rules. Each rule is a pure function over one file's token
//! stream (plus the shared [`Contract`]), returning [`Diagnostic`]s.

use crate::contract::Contract;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::{Diagnostic, Level};

/// Rule identifiers, as written in `allow(...)` suppressions.
pub const NO_RAW_SPAWN: &str = "no-raw-spawn";
/// See [`NO_RAW_SPAWN`].
pub const NO_UNBOUNDED_CHANNEL: &str = "no-unbounded-channel";
/// See [`NO_RAW_SPAWN`].
pub const NO_POLL_SHUTDOWN: &str = "no-poll-shutdown";
/// See [`NO_RAW_SPAWN`].
pub const METRICS_CONTRACT: &str = "metrics-contract";
/// See [`NO_RAW_SPAWN`].
pub const THREAD_INVENTORY: &str = "thread-inventory";
/// See [`NO_RAW_SPAWN`]. Graph-level findings (rank inversions, cycles,
/// §15 table drift) are global and cannot be suppressed; only the
/// per-file binding diagnostics honour `allow(lock-order)`.
pub const LOCK_ORDER: &str = "lock-order";
/// See [`NO_RAW_SPAWN`].
pub const NO_BLOCK_WHILE_LOCKED: &str = "no-block-while-locked";
/// See [`NO_RAW_SPAWN`].
pub const NO_LOCK_UNWRAP: &str = "no-lock-unwrap";

/// All suppressible rule names (for validating `allow(...)` arguments).
pub const ALL_RULES: &[&str] = &[
    NO_RAW_SPAWN,
    NO_UNBOUNDED_CHANNEL,
    NO_POLL_SHUTDOWN,
    METRICS_CONTRACT,
    THREAD_INVENTORY,
    LOCK_ORDER,
    NO_BLOCK_WHILE_LOCKED,
    NO_LOCK_UNWRAP,
];

// ---------------------------------------------------------------------------
// Pattern matching: templated names
// ---------------------------------------------------------------------------

/// One unit of a wildcard pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Frag {
    /// A literal character.
    Lit(char),
    /// A wildcard standing for one or more characters.
    Wild,
}

/// Compile a DESIGN.md-style template (`<placeholder>` = wildcard).
fn compile_template(s: &str) -> Vec<Frag> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '<' {
            // `<...>` placeholder — but `net.link.<from>-><to>.frames`
            // contains a literal `->`; a `<` is a placeholder only when a
            // matching `>` follows with identifier-ish contents.
            let ahead: String = chars.clone().collect();
            if let Some(end) = ahead.find('>') {
                let inner = &ahead[..end];
                if !inner.is_empty() && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    for _ in 0..=end {
                        chars.next();
                    }
                    out.push(Frag::Wild);
                    continue;
                }
            }
            out.push(Frag::Lit(c));
        } else {
            out.push(Frag::Lit(c));
        }
    }
    out
}

/// Compile a `format!` string (`{}` / `{name}` / `{name:spec}` = wildcard;
/// `{{` / `}}` = literal braces).
fn compile_format(s: &str) -> Vec<Frag> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push(Frag::Lit('{'));
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push(Frag::Lit('}'));
            }
            '{' => {
                while let Some(&n) = chars.peek() {
                    chars.next();
                    if n == '}' {
                        break;
                    }
                }
                out.push(Frag::Wild);
            }
            _ => out.push(Frag::Lit(c)),
        }
    }
    out
}

/// Whether some concrete string could match both patterns (wildcards stand
/// for one or more characters on either side). A concrete string is just a
/// pattern with no wildcards, so this covers concrete-vs-template too.
fn unify(a: &[Frag], b: &[Frag]) -> bool {
    match (a.first(), b.first()) {
        (None, None) => true,
        (Some(Frag::Wild), _) => {
            // The wildcard consumes 1..=len(b) units of the other side.
            (1..=b.len()).any(|i| unify(&a[1..], &b[i..]))
        }
        (_, Some(Frag::Wild)) => (1..=a.len()).any(|i| unify(&a[i..], &b[1..])),
        (Some(Frag::Lit(x)), Some(Frag::Lit(y))) => x == y && unify(&a[1..], &b[1..]),
        _ => false,
    }
}

fn lits(s: &str) -> Vec<Frag> {
    s.chars().map(Frag::Lit).collect()
}

/// Match a call-site name (concrete literal or compiled `format!` pattern)
/// against a contract template.
fn matches_template(template: &str, site: &[Frag]) -> bool {
    unify(&compile_template(template), site)
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Whether the token at `i` is called: followed by `(`, optionally with a
/// turbofish (`::<...>`) in between.
pub(crate) fn is_called(toks: &[Tok], i: usize) -> bool {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.is_punct(':')).unwrap_or(false)
        && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false)
        && toks.get(j + 2).map(|t| t.is_punct('<')).unwrap_or(false)
    {
        let mut depth = 0i32;
        j += 2;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    toks.get(j).map(|t| t.is_punct('(')).unwrap_or(false)
}

pub(crate) fn diag(rule: &str, path: &str, t: &Tok, message: String) -> Diagnostic {
    Diagnostic {
        rule: rule.to_string(),
        file: path.to_string(),
        line: t.line,
        col: t.col,
        level: Level::Error,
        message,
    }
}

/// If the tokens at `i` open a call whose first argument is a string
/// literal or a `format!("...")`, return the compiled name pattern and the
/// token carrying it. `i` must point at the `(`.
fn first_string_arg(toks: &[Tok], i: usize) -> Option<(Vec<Frag>, &Tok, bool)> {
    let mut j = i + 1;
    // Optional leading `&`.
    while toks.get(j).map(|t| t.is_punct('&')).unwrap_or(false) {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.kind == TokKind::StrLit => Some((lits(&t.text), t, false)),
        Some(t) if t.is_ident("format") => {
            if toks.get(j + 1).map(|t| t.is_punct('!')).unwrap_or(false)
                && toks.get(j + 2).map(|t| t.is_punct('(')).unwrap_or(false)
            {
                let s = toks.get(j + 3)?;
                if s.kind == TokKind::StrLit {
                    return Some((compile_format(&s.text), s, true));
                }
            }
            None
        }
        _ => None,
    }
}

/// Find the index of the `}` matching the `{` at `open` (which must point
/// at a `{`). Returns `toks.len()` when unbalanced.
pub(crate) fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// Rule 1: no-raw-spawn
// ---------------------------------------------------------------------------

/// `std::thread::spawn` / `thread::Builder` are forbidden outside the
/// lifecycle module: every runtime thread must go through `JoinScope` so
/// it is named, counted and deadline-joined (§9).
pub fn no_raw_spawn(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if path.ends_with("netagg-net/src/lifecycle.rs") {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("thread") {
            continue;
        }
        let sep = toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false);
        if !sep {
            continue;
        }
        let Some(t) = toks.get(i + 3) else { continue };
        if t.is_ident("spawn") {
            out.push(diag(
                NO_RAW_SPAWN,
                path,
                t,
                "raw `thread::spawn` — use `JoinScope::spawn` so the thread is \
                 named, counted in `runtime.threads_active` and deadline-joined \
                 (DESIGN.md §9)"
                    .into(),
            ));
        } else if t.is_ident("Builder") {
            out.push(diag(
                NO_RAW_SPAWN,
                path,
                t,
                "raw `thread::Builder` — use `JoinScope::spawn`; only \
                 `netagg-net/src/lifecycle.rs` may construct threads directly \
                 (DESIGN.md §9)"
                    .into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no-unbounded-channel
// ---------------------------------------------------------------------------

/// Unbounded queues (`mpsc::channel()`, crossbeam `unbounded()`) are
/// forbidden: every queue must be a bounded `Mailbox` with an explicit
/// overflow policy (§9).
pub fn no_unbounded_channel(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("channel")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("mpsc")
            && is_called(toks, i)
        {
            out.push(diag(
                NO_UNBOUNDED_CHANNEL,
                path,
                t,
                "unbounded `mpsc::channel()` — use a bounded `Mailbox` with an \
                 explicit `OverflowPolicy` (DESIGN.md §9)"
                    .into(),
            ));
        }
        if t.is_ident("unbounded") && is_called(toks, i) {
            out.push(diag(
                NO_UNBOUNDED_CHANNEL,
                path,
                t,
                "unbounded channel constructor — use a bounded `Mailbox` with an \
                 explicit `OverflowPolicy` (DESIGN.md §9)"
                    .into(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: no-poll-shutdown
// ---------------------------------------------------------------------------

const SHUTDOWN_IDENTS: &[&str] = &[
    "shutdown",
    "is_shutdown",
    "should_stop",
    "stop_flag",
    "stopping",
    "cancelled",
    "is_cancelled",
    "cancel_requested",
];

const POLL_CALLS: &[&str] = &["recv_timeout", "accept_timeout", "sleep"];

/// A loop that both checks a shutdown flag and blocks on a timed poll
/// (`recv_timeout` / `thread::sleep`) discovers cancellation only at the
/// poll tick. Shutdown must be wakeup-driven via `CancelToken` (§9,
/// cancellation invariant 1).
pub fn no_poll_shutdown(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let is_loop = t.is_ident("loop");
        let is_while = t.is_ident("while");
        if !is_loop && !is_while {
            i += 1;
            continue;
        }
        // Find the body's `{`: immediately next for `loop`, after the
        // condition (first `{` at paren depth 0) for `while`.
        let mut open = i + 1;
        if is_while {
            let mut pdepth = 0i32;
            while open < toks.len() {
                let t = &toks[open];
                if t.is_punct('(') || t.is_punct('[') {
                    pdepth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    pdepth -= 1;
                } else if t.is_punct('{') && pdepth == 0 {
                    break;
                }
                open += 1;
            }
        }
        if open >= toks.len() || !toks[open].is_punct('{') {
            i += 1;
            continue;
        }
        let close = matching_brace(toks, open);
        // Scan the region (condition + body for `while`; body for `loop`).
        let region = &toks[i..close.min(toks.len())];
        let has_shutdown = region
            .iter()
            .any(|t| t.kind == TokKind::Ident && SHUTDOWN_IDENTS.contains(&t.text.as_str()));
        let poll = region.iter().enumerate().find(|(k, t)| {
            t.kind == TokKind::Ident
                && POLL_CALLS.contains(&t.text.as_str())
                && region.get(k + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        });
        if has_shutdown {
            if let Some((_, poll_tok)) = poll {
                let d = diag(
                    NO_POLL_SHUTDOWN,
                    path,
                    poll_tok,
                    format!(
                        "shutdown loop polls via `{}` — cancellation must be \
                         wakeup-driven through `CancelToken` (DESIGN.md §9, \
                         invariant 1)",
                        poll_tok.text
                    ),
                );
                if !out
                    .iter()
                    .any(|e| e.rule == d.rule && e.line == d.line && e.col == d.col)
                {
                    out.push(d);
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 4: metrics-contract (call sites)
// ---------------------------------------------------------------------------

const METRIC_CALLS: &[&str] = &["counter", "gauge", "histogram"];

/// Hardcoded metric/event/span names at instrumentation call sites: the
/// name must (a) exist in the §7 contract (§11 for spans) and (b) be
/// spelled via `netagg_obs::names` rather than a string literal, so
/// renames stay one-edit changes.
pub fn metrics_contract_sites(
    path: &str,
    lexed: &Lexed,
    contract: &Contract,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_metric = METRIC_CALLS.contains(&t.text.as_str());
        let is_emit = t.text == "emit" || t.text == "emit_for_request";
        let is_span = t.text == "record_span";
        if !is_metric && !is_emit && !is_span {
            continue;
        }
        if !toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
            continue;
        }
        // Skip snapshot lookups in runtime code is unnecessary: lookups use
        // the same contract names, so they are held to the same rule.
        let Some((pattern, lit_tok, is_format)) = first_string_arg(toks, i + 1) else {
            continue;
        };
        if lexed.in_test_region(lit_tok.line) {
            continue;
        }
        let table: Vec<&crate::contract::Entry> = if is_emit {
            contract.events.iter().collect()
        } else if is_span {
            contract.spans.iter().collect()
        } else {
            contract.metrics.iter().collect()
        };
        let (what, section) = if is_emit {
            ("event", "§7")
        } else if is_span {
            ("span", "§11")
        } else {
            ("metric", "§7")
        };
        let hit = table.iter().find(|e| matches_template(&e.name, &pattern));
        match hit {
            None => out.push(diag(
                METRICS_CONTRACT,
                path,
                lit_tok,
                format!(
                    "{what} name `{}` is not in the DESIGN.md {section} \
                     contract — add a table row and a `netagg_obs::names` \
                     constant, or fix the name",
                    lit_tok.text
                ),
            )),
            Some(e) => {
                let hint = contract
                    .const_for(&e.name)
                    .map(|c| format!("`netagg_obs::names::{}`", c.ident))
                    .unwrap_or_else(|| "the `netagg_obs::names` constant".into());
                let spelled = if is_format { "formatted" } else { "hardcoded" };
                out.push(diag(
                    METRICS_CONTRACT,
                    path,
                    lit_tok,
                    format!(
                        "{spelled} metric name `{}` duplicates the contract — \
                         use {hint} instead of a string literal",
                        lit_tok.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4b: metrics-contract (DESIGN.md §7 ⇄ names.rs sync)
// ---------------------------------------------------------------------------

/// Bidirectional drift check between the §7 table (plus event kinds and
/// the §11 span names) and the `netagg_obs::names` constants: every row
/// must have a constant with that exact value, and every constant must
/// have a row.
pub fn metrics_contract_sync(contract: &Contract, out: &mut Vec<Diagnostic>) {
    let design = "DESIGN.md";
    let names = "crates/netagg-obs/src/names.rs";
    for e in contract
        .metrics
        .iter()
        .chain(contract.events.iter())
        .chain(contract.spans.iter())
    {
        if contract.const_for(&e.name).is_none() {
            out.push(Diagnostic {
                rule: METRICS_CONTRACT.into(),
                file: design.into(),
                line: e.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "contract entry `{}` has no matching constant in \
                     netagg_obs::names — the table and the code have drifted",
                    e.name
                ),
            });
        }
    }
    for c in &contract.consts {
        let known = contract
            .metrics
            .iter()
            .chain(contract.events.iter())
            .chain(contract.spans.iter())
            .any(|e| e.name == c.value);
        if !known {
            out.push(Diagnostic {
                rule: METRICS_CONTRACT.into(),
                file: names.into(),
                line: c.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "constant `{}` (\"{}\") has no row in the DESIGN.md §7/§11 \
                     contract — add the row or remove the constant",
                    c.ident, c.value
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: thread-inventory
// ---------------------------------------------------------------------------

/// Every `JoinScope::spawn` whose name is written inline (string literal
/// or `format!`) must match a row of the §9 thread inventory, so stack
/// dumps map one-to-one onto the table.
pub fn thread_inventory(path: &str, lexed: &Lexed, contract: &Contract, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("spawn") {
            continue;
        }
        if !toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
            continue;
        }
        let Some((pattern, lit_tok, _)) = first_string_arg(toks, i + 1) else {
            continue;
        };
        if lexed.in_test_region(lit_tok.line) {
            continue;
        }
        let known = contract
            .threads
            .iter()
            .any(|e| matches_template(&e.name, &pattern));
        if !known {
            out.push(diag(
                THREAD_INVENTORY,
                path,
                lit_tok,
                format!(
                    "thread name `{}` is not in the DESIGN.md §9 thread \
                     inventory — add a table row or rename the thread",
                    lit_tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5b: thread-inventory (DESIGN.md §12 ⇄ §9 sync)
// ---------------------------------------------------------------------------

/// The §12 "Reactor threads" table documents the TCP data plane's threads
/// next to the architecture prose; every name it lists must also appear in
/// the authoritative §9 inventory, so the two sections cannot drift apart.
pub fn thread_inventory_sync(contract: &Contract, out: &mut Vec<Diagnostic>) {
    for e in &contract.reactor_threads {
        let in_inventory = contract
            .threads
            .iter()
            .any(|t| unify(&compile_template(&t.name), &compile_template(&e.name)));
        if !in_inventory {
            out.push(Diagnostic {
                rule: THREAD_INVENTORY.into(),
                file: "DESIGN.md".into(),
                line: e.line,
                col: 1,
                level: Level::Error,
                message: format!(
                    "§12 reactor thread `{}` is not in the §9 thread \
                     inventory — the two tables have drifted",
                    e.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: no-lock-unwrap
// ---------------------------------------------------------------------------

const RAW_LOCK_CALLS: &[&str] = &["lock", "read", "write", "try_lock"];

/// `.lock().unwrap()` / `.read().unwrap()` (and `.expect(...)`) mean raw
/// `std::sync` locks whose poison `Result` is being crashed through.
/// Poisoning is handled by the lifecycle layer: `OrderedMutex` /
/// `OrderedRwLock` (and the `parking_lot` shim underneath) never poison —
/// a guard dropped during unwind surfaces as a `lock_poison` event
/// instead (DESIGN.md §15).
pub fn no_lock_unwrap(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !RAW_LOCK_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        // `.lock()` with an empty argument list (excludes `io::Read::read`
        // and friends, which always take a buffer), then `.unwrap(` /
        // `.expect(`.
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let empty_call = toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct(')')).unwrap_or(false);
        if !empty_call || !toks.get(i + 3).map(|t| t.is_punct('.')).unwrap_or(false) {
            continue;
        }
        let Some(m) = toks.get(i + 4) else { continue };
        if !(m.is_ident("unwrap") || m.is_ident("expect")) || !is_called(toks, i + 4) {
            continue;
        }
        out.push(diag(
            NO_LOCK_UNWRAP,
            path,
            t,
            format!(
                "`.{}().{}()` crashes through a poison `Result` — use the \
                 lifecycle `OrderedMutex`/`OrderedRwLock` wrappers (their \
                 locks never poison; unwind is surfaced as a `lock_poison` \
                 event, DESIGN.md §15)",
                t.text, m.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: &str) -> Vec<Frag> {
        lits(s)
    }

    #[test]
    fn lock_unwrap_fires_and_io_read_does_not() {
        let l = crate::lexer::lex(
            "fn a(m: &std::sync::Mutex<u8>) { *m.lock().unwrap() += 1; }\n\
             fn b(s: &mut impl std::io::Read, buf: &mut [u8]) { s.read(buf).unwrap(); }\n\
             fn c(m: &std::sync::RwLock<u8>) { let _ = m.read().expect(\"poisoned\"); }\n",
        );
        let mut out = Vec::new();
        no_lock_unwrap("crates/x/src/lib.rs", &l, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn template_matches_concrete_names() {
        assert!(matches_template(
            "aggbox.tasks_executed",
            &f("aggbox.tasks_executed")
        ));
        assert!(!matches_template(
            "aggbox.tasks_executed",
            &f("aggbox.tasks_execute")
        ));
        assert!(matches_template(
            "mailbox.depth.<name>",
            &f("mailbox.depth.egress")
        ));
        assert!(!matches_template(
            "mailbox.depth.<name>",
            &f("mailbox.depth.")
        ));
        assert!(matches_template(
            "net.link.<from>-><to>.frames",
            &f("net.link.2->1.frames")
        ));
        assert!(!matches_template(
            "net.link.<from>-><to>.frames",
            &f("net.link.2->1.bytes")
        ));
        assert!(matches_template(
            "aggbox.wfq_weight.app<N>",
            &f("aggbox.wfq_weight.app4")
        ));
    }

    #[test]
    fn template_matches_format_patterns() {
        assert!(matches_template(
            "mailbox.depth.<name>",
            &compile_format("mailbox.depth.{}")
        ));
        assert!(matches_template(
            "net.link.<from>-><to>.frames",
            &compile_format("net.link.{local}->{peer}.frames")
        ));
        assert!(!matches_template(
            "mailbox.depth.<name>",
            &compile_format("mailbox.dropped.{}")
        ));
        assert!(matches_template(
            "aggbox-<b>-listen",
            &compile_format("aggbox-{}-listen")
        ));
    }

    #[test]
    fn literal_angle_brackets_are_not_placeholders() {
        // `->` in the middle of a template must stay literal.
        assert!(!matches_template(
            "net.link.<from>-><to>.frames",
            &f("net.link.2.1.frames")
        ));
    }

    #[test]
    fn format_escaped_braces_are_literal() {
        assert_eq!(compile_format("a{{b}}c"), lits("a{b}c"));
    }
}
