//! Parsers for the two halves of the observability contract:
//!
//! * DESIGN.md — §7 metric table + structured-event kinds, the §9
//!   thread inventory, the §11 span/stage name table and the §12
//!   reactor-thread table,
//! * `netagg-obs/src/names.rs` — the constants runtime code compiles
//!   against.
//!
//! Both sides keep source line numbers so contract-drift diagnostics point
//! at the exact row or constant to edit.

use std::fs;
use std::io;
use std::path::Path;

/// One named entry of a contract table, with the line it was declared on.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The (possibly templated) name, e.g. `mailbox.depth.<name>`.
    pub name: String,
    /// 1-based line in the source document.
    pub line: u32,
}

/// One `pub const NAME: &str = "value";` from `names.rs`.
#[derive(Debug, Clone)]
pub struct ConstEntry {
    /// The Rust constant identifier, e.g. `MAILBOX_DEPTH`.
    pub ident: String,
    /// The string value, e.g. `mailbox.depth.<name>`.
    pub value: String,
    /// 1-based line in `names.rs`.
    pub line: u32,
}

/// One `pub const IDENT: LockRank = LockRank::new(N, "name");` from
/// `netagg-net/src/lock_order.rs`.
#[derive(Debug, Clone)]
pub struct RankEntry {
    /// The Rust constant identifier, e.g. `MASTER_PENDING`.
    pub ident: String,
    /// The numeric rank.
    pub rank: u16,
    /// The registry name, e.g. `master.pending`.
    pub name: String,
    /// 1-based line in `lock_order.rs`.
    pub line: u32,
}

/// One row of the DESIGN.md §15 "Lock ranks" table.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// The numeric rank (first column).
    pub rank: u16,
    /// The registry name (second column, backticked).
    pub name: String,
    /// 1-based line in DESIGN.md.
    pub line: u32,
}

/// One declared acquisition edge from the §15 "Declared cross-layer
/// edges" table — a `held → acquired` pair the lexical analysis cannot
/// see because the acquisition happens across a crate or file boundary.
#[derive(Debug, Clone)]
pub struct EdgeEntry {
    /// Registry name of the held lock.
    pub from: String,
    /// Registry name of the lock acquired while `from` is held.
    pub to: String,
    /// 1-based line in DESIGN.md.
    pub line: u32,
}

/// The full parsed contract.
#[derive(Debug, Default)]
pub struct Contract {
    /// §7 metric names (templates kept verbatim).
    pub metrics: Vec<Entry>,
    /// §7 structured-event kinds.
    pub events: Vec<Entry>,
    /// §11 span and stage names (`record_span` call sites).
    pub spans: Vec<Entry>,
    /// §9 thread names (templates kept verbatim).
    pub threads: Vec<Entry>,
    /// §12 reactor thread names (must be a subset of [`Contract::threads`]).
    pub reactor_threads: Vec<Entry>,
    /// Constants declared in `netagg_obs::names`.
    pub consts: Vec<ConstEntry>,
    /// Rank constants declared in `netagg_net::lock_order` (§15).
    pub lock_ranks: Vec<RankEntry>,
    /// §15 "Lock ranks" table rows (diffed against [`Self::lock_ranks`]).
    pub rank_rows: Vec<RankRow>,
    /// §15 declared cross-layer acquisition edges.
    pub declared_edges: Vec<EdgeEntry>,
}

impl Contract {
    /// Load the contract from a workspace root (expects `DESIGN.md` and
    /// `crates/netagg-obs/src/names.rs` under `root`).
    pub fn load(root: &Path) -> io::Result<Self> {
        let design = fs::read_to_string(root.join("DESIGN.md"))?;
        let names = fs::read_to_string(root.join("crates/netagg-obs/src/names.rs"))?;
        let locks = fs::read_to_string(root.join("crates/netagg-net/src/lock_order.rs"))?;
        let mut c = Self::from_sources(&design, &names);
        c.lock_ranks = parse_rank_consts(&locks);
        Ok(c)
    }

    /// Parse a contract out of in-memory documents (used by fixtures).
    pub fn from_sources(design: &str, names: &str) -> Self {
        let mut c = Self {
            metrics: table_names(design, "### Metrics contract"),
            events: table_names(design, "### Structured events"),
            spans: table_names(design, "### Span and stage names"),
            threads: table_names(design, "### Thread inventory"),
            reactor_threads: table_names(design, "### Reactor threads"),
            consts: parse_consts(names),
            lock_ranks: Vec::new(),
            rank_rows: parse_rank_rows(design),
            declared_edges: parse_declared_edges(design),
        };
        // Event kinds double as `emit()` call-site names; keep them out of
        // the metric set (no overlap today, but be explicit).
        c.metrics.retain(|m| !m.name.is_empty());
        c
    }

    /// Every name the contract allows at a metric call site: §7 metric
    /// rows plus event kinds (for `emit`).
    pub fn metric_names(&self) -> impl Iterator<Item = &Entry> {
        self.metrics.iter()
    }

    /// Find the constant in `names.rs` whose value is exactly `value`.
    pub fn const_for(&self, value: &str) -> Option<&ConstEntry> {
        self.consts.iter().find(|c| c.value == value)
    }
}

/// Extract the backticked first-column names of the markdown table that
/// follows `heading`, stopping at the next section heading.
fn table_names(doc: &str, heading: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (i, line) in doc.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let trimmed = line.trim();
        if trimmed.starts_with("### ") || trimmed.starts_with("## ") {
            in_section = trimmed == heading;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        // First cell, backticked: `| `name` (annotation) | ... |`
        let cell = trimmed.trim_start_matches('|');
        let Some(open) = cell.find('`') else { continue };
        let Some(close_rel) = cell[open + 1..].find('`') else {
            continue;
        };
        // The backtick must open the cell (header/separator rows have none;
        // prose cells never start with one).
        if !cell[..open].trim().is_empty() {
            continue;
        }
        let name = &cell[open + 1..open + 1 + close_rel];
        if !name.is_empty() {
            out.push(Entry {
                name: name.to_string(),
                line: lineno,
            });
        }
    }
    out
}

/// Extract every `pub const IDENT: &str = "value";` declaration.
fn parse_consts(src: &str) -> Vec<ConstEntry> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("pub const ") else {
            continue;
        };
        let Some(colon) = rest.find(':') else {
            continue;
        };
        let ident = rest[..colon].trim().to_string();
        if !rest[colon..].contains("&str") {
            continue;
        }
        let Some(eq) = rest.find('=') else { continue };
        let after = &rest[eq + 1..];
        let Some(q1) = after.find('"') else { continue };
        let Some(q2_rel) = after[q1 + 1..].find('"') else {
            continue;
        };
        out.push(ConstEntry {
            ident,
            value: after[q1 + 1..q1 + 1 + q2_rel].to_string(),
            line: (i + 1) as u32,
        });
    }
    out
}

/// Extract every `pub const IDENT: LockRank = LockRank::new(N, "name");`
/// declaration from `lock_order.rs`. Tolerates rustfmt splitting the
/// initialiser across lines: the declaration is scanned from `pub const`
/// to the terminating `;`.
pub fn parse_rank_consts(src: &str) -> Vec<RankEntry> {
    let mut out = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        let Some(rest) = trimmed.strip_prefix("pub const ") else {
            i += 1;
            continue;
        };
        let Some(colon) = rest.find(':') else {
            i += 1;
            continue;
        };
        let ident = rest[..colon].trim().to_string();
        if !rest[colon..].contains("LockRank") {
            i += 1;
            continue;
        }
        let lineno = (i + 1) as u32;
        // Gather the whole declaration (up to `;`), which rustfmt may wrap.
        let mut decl = String::from(rest);
        while !decl.contains(';') && i + 1 < lines.len() {
            i += 1;
            decl.push(' ');
            decl.push_str(lines[i].trim());
        }
        i += 1;
        let Some(open) = decl.find("new(") else {
            continue;
        };
        let args = &decl[open + 4..];
        let Some(comma) = args.find(',') else {
            continue;
        };
        let Ok(rank) = args[..comma].trim().parse::<u16>() else {
            continue;
        };
        let after = &args[comma + 1..];
        let Some(q1) = after.find('"') else { continue };
        let Some(q2_rel) = after[q1 + 1..].find('"') else {
            continue;
        };
        out.push(RankEntry {
            ident,
            rank,
            name: after[q1 + 1..q1 + 1 + q2_rel].to_string(),
            line: lineno,
        });
    }
    out
}

/// Split a markdown table row into trimmed cell strings.
fn table_cells(line: &str) -> Vec<&str> {
    line.trim()
        .trim_start_matches('|')
        .trim_end_matches('|')
        .split('|')
        .map(str::trim)
        .collect()
}

/// Every backticked name inside a table cell, in order.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let Some(close_rel) = rest[open + 1..].find('`') else {
            break;
        };
        let name = &rest[open + 1..open + 1 + close_rel];
        if !name.is_empty() {
            out.push(name.to_string());
        }
        rest = &rest[open + 2 + close_rel..];
    }
    out
}

/// All data rows of the markdown table under `heading`, as
/// `(cells, line)` pairs (header and `|---|` separator rows excluded).
fn table_rows(doc: &str, heading: &str) -> Vec<(Vec<String>, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("### ") || trimmed.starts_with("## ") {
            in_section = trimmed == heading;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let cells = table_cells(trimmed);
        // Skip the separator row and the header row (no backticks or
        // digits in a data row's first cell means header).
        if cells
            .iter()
            .all(|c| c.chars().all(|ch| ch == '-' || ch == ':'))
        {
            continue;
        }
        out.push((
            cells.into_iter().map(str::to_string).collect(),
            (i + 1) as u32,
        ));
    }
    out
}

/// Parse the §15 "Lock ranks" table: `| <rank> | `name` | protects |`.
fn parse_rank_rows(doc: &str) -> Vec<RankRow> {
    let mut out = Vec::new();
    for (cells, line) in table_rows(doc, "### Lock ranks") {
        let Some(rank_cell) = cells.first() else {
            continue;
        };
        let Ok(rank) = rank_cell.parse::<u16>() else {
            continue; // header row
        };
        let Some(name) = cells.get(1).map(|c| backticked(c)).and_then(|mut v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        }) else {
            continue;
        };
        out.push(RankRow { rank, name, line });
    }
    out
}

/// Parse the §15 "Declared cross-layer edges" table:
/// `| `from` | `to-a`, `to-b` | why |` — one [`EdgeEntry`] per `to` name.
fn parse_declared_edges(doc: &str) -> Vec<EdgeEntry> {
    let mut out = Vec::new();
    for (cells, line) in table_rows(doc, "### Declared cross-layer edges") {
        let Some(from) = cells.first().map(|c| backticked(c)).and_then(|mut v| {
            if v.is_empty() {
                None
            } else {
                Some(v.remove(0))
            }
        }) else {
            continue; // header row
        };
        let Some(tos) = cells.get(1).map(|c| backticked(c)) else {
            continue;
        };
        for to in tos {
            out.push(EdgeEntry {
                from: from.clone(),
                to,
                line,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "\
## 7. Observability

### Metrics contract

| Name | Type |
|---|---|
| `aggbox.tasks_executed` | counter |
| `mailbox.depth.<name>` | gauge |

### Structured events

| Kind | Emitted when |
|---|---|
| `failure` | a detector declares a box failed |

### Span and stage names

| Span | Recorded by |
|---|---|
| `span.worker.send` | worker shim |
| `span.wire.transfer` | receiving hop |

## 9. Lifecycle

### Thread inventory

| Thread name | Owner |
|---|---|
| `aggbox-<b>-listen` | `AggBox` |
| `aggbox-<b>-reader` (per conn) | `AggBox` |

## 12. Transport architecture

### Reactor threads

| Thread name | Spawned by |
|---|---|
| `net-reactor-<i>` | `TcpTransport` |
";

    const NAMES: &str = "\
/// Docs.
pub const AGGBOX_TASKS_EXECUTED: &str = \"aggbox.tasks_executed\";
pub const MAILBOX_DEPTH: &str = \"mailbox.depth.<name>\";
pub const EVENT_FAILURE: &str = \"failure\";
pub const WORKER_SEND: &str = \"span.worker.send\";
pub const WIRE_TRANSFER: &str = \"span.wire.transfer\";
pub fn expand(template: &str, args: &[&str]) -> String { String::new() }
";

    #[test]
    fn parses_all_three_tables() {
        let c = Contract::from_sources(DESIGN, NAMES);
        let metrics: Vec<&str> = c.metrics.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            metrics,
            vec!["aggbox.tasks_executed", "mailbox.depth.<name>"]
        );
        let events: Vec<&str> = c.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(events, vec!["failure"]);
        let spans: Vec<&str> = c.spans.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(spans, vec!["span.worker.send", "span.wire.transfer"]);
        let threads: Vec<&str> = c.threads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(threads, vec!["aggbox-<b>-listen", "aggbox-<b>-reader"]);
        let reactors: Vec<&str> = c.reactor_threads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(reactors, vec!["net-reactor-<i>"]);
    }

    #[test]
    fn parses_consts_with_lines() {
        let c = Contract::from_sources(DESIGN, NAMES);
        assert_eq!(c.consts.len(), 5);
        assert_eq!(c.consts[0].ident, "AGGBOX_TASKS_EXECUTED");
        assert_eq!(c.consts[0].value, "aggbox.tasks_executed");
        assert_eq!(c.consts[0].line, 2);
        assert_eq!(c.const_for("failure").unwrap().ident, "EVENT_FAILURE");
    }

    const LOCK_DESIGN: &str = "\
## 15. Lock order

### Lock ranks

| Rank | Lock | Protects |
|---|---|---|
| 10 | `scn.pending` | armed impairments |
| 20 | `master.pending` | in-flight requests |

### Declared cross-layer edges

| From | To | Via |
|---|---|---|
| `master.pending` | `scn.pending`, `master.pending` | example |
";

    #[test]
    fn parses_lock_tables() {
        let c = Contract::from_sources(LOCK_DESIGN, "");
        assert_eq!(c.rank_rows.len(), 2);
        assert_eq!(c.rank_rows[0].rank, 10);
        assert_eq!(c.rank_rows[0].name, "scn.pending");
        assert_eq!(c.rank_rows[1].rank, 20);
        assert_eq!(c.rank_rows[1].name, "master.pending");
        assert_eq!(c.declared_edges.len(), 2);
        assert_eq!(c.declared_edges[0].from, "master.pending");
        assert_eq!(c.declared_edges[0].to, "scn.pending");
        assert_eq!(c.declared_edges[1].to, "master.pending");
    }

    #[test]
    fn parses_rank_consts_including_wrapped() {
        let src = "\
pub const SCN_PENDING: LockRank = LockRank::new(10, \"scn.pending\");
pub const MASTER_PENDING: LockRank =
    LockRank::new(20, \"master.pending\");
pub const NOT_A_RANK: &str = \"x\";
";
        let ranks = parse_rank_consts(src);
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[0].ident, "SCN_PENDING");
        assert_eq!(ranks[0].rank, 10);
        assert_eq!(ranks[0].name, "scn.pending");
        assert_eq!(ranks[0].line, 1);
        assert_eq!(ranks[1].ident, "MASTER_PENDING");
        assert_eq!(ranks[1].rank, 20);
        assert_eq!(ranks[1].name, "master.pending");
    }

    #[test]
    fn real_workspace_lock_registry_is_nontrivial() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let c = Contract::load(&root).unwrap();
        assert!(c.lock_ranks.len() >= 20, "ranks: {}", c.lock_ranks.len());
        assert!(
            !c.declared_edges.is_empty(),
            "DESIGN.md §15 must declare the cross-layer edges"
        );
    }

    #[test]
    fn real_workspace_contract_is_nontrivial() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let c = Contract::load(&root).unwrap();
        assert!(c.metrics.len() >= 40, "metrics: {}", c.metrics.len());
        assert_eq!(c.events.len(), 4);
        assert!(c.spans.len() >= 10, "spans: {}", c.spans.len());
        assert!(c.threads.len() >= 15, "threads: {}", c.threads.len());
        assert!(
            !c.reactor_threads.is_empty(),
            "DESIGN.md §12 must name the reactor threads"
        );
        assert!(c.consts.len() >= c.metrics.len() + c.events.len() + c.spans.len());
    }
}
