// Fixture: every raw thread construction form the no-raw-spawn rule must
// catch. This file is NOT compiled — the lint engine lexes it directly.

fn violations() {
    let a = std::thread::spawn(|| {}); // line 5: full path
    let b = thread::spawn(|| {}); // line 6: imported module
    let c = thread::Builder::new().name("x".into()).spawn(|| {}); // line 7: builder
}

fn fine() {
    scope.spawn("aggbox-1-listen", || {}); // JoinScope idiom: no finding
    std::thread::sleep(core::time::Duration::from_millis(1)); // sleep alone is fine
    // Occurrences inside comments or strings must not fire:
    // std::thread::spawn(|| {});
    let s = "thread::spawn";
}
