// Fixture for no-poll-shutdown: loops that discover shutdown at a timed
// poll tick. NOT compiled — lexed directly by the lint engine.

fn violation_recv_timeout(rx: Receiver, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            // line 9: the poll tick
            Ok(_) => {}
            Err(_) => continue,
        }
    }
}

fn violation_sleep_while(cancel: &CancelToken) {
    while !cancel.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50)); // line 19: the poll tick
        do_work();
    }
}

fn fine_wakeup(mb: &Mailbox, cancel: &CancelToken) {
    // Wakeup-driven: recv returns Cancelled the moment the token fires.
    while let Ok(item) = mb.recv() {
        handle(item);
    }
    // A timed recv WITHOUT a shutdown flag in the loop is pacing, not
    // shutdown polling:
    loop {
        if rx.recv_timeout(Duration::from_millis(5)).is_err() {
            break;
        }
    }
}
