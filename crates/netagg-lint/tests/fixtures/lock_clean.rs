// Disciplined locking: ascending ranks, a try_lock against the order
// (legal — it cannot complete a deadlock cycle), an early drop, and a
// chained temporary that dies at its statement.
struct Fx {
    alpha: OrderedMutex<u32>,
    beta: OrderedMutex<Vec<u32>>,
}

impl Fx {
    fn build() -> Self {
        Self {
            alpha: OrderedMutex::new(lock_order::FX_ALPHA, 0),
            beta: OrderedMutex::new(lock_order::FX_BETA, Vec::new()),
        }
    }

    fn ascend(&self) {
        let a = self.alpha.lock();
        self.beta.lock().push(*a);
    }

    fn descend_try(&self) {
        let _b = self.beta.lock();
        if let Some(a) = self.alpha.try_lock() {
            let _ = *a;
        }
    }

    fn drop_then_send(&self, tx: &Mailbox<u32>) {
        let a = self.alpha.lock();
        let v = *a;
        drop(a);
        let _ = tx.send(v);
    }
}
