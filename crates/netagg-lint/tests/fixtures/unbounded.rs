// Fixture for no-unbounded-channel: unbounded queues in both std and
// crossbeam spelling. NOT compiled — lexed directly by the lint engine.

fn violations() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>(); // line 5: turbofish form
    let (tx2, rx2) = mpsc::channel(); // line 6: imported module
    let (tx3, rx3) = crossbeam::channel::unbounded(); // line 7: crossbeam
}

fn fine() {
    let (tx, rx) = std::sync::mpsc::sync_channel(64); // bounded: allowed
    let mb = Mailbox::new("egress", 4096, OverflowPolicy::DropOldest); // the blessed queue
    let s = "mpsc::channel()"; // strings never fire
}
