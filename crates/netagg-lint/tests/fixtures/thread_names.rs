// Fixture for thread-inventory. NOT compiled — lexed directly by the lint
// engine against the mini contract in lint_rules.rs.

fn violations(scope: &JoinScope) {
    scope.spawn("rogue-thread", || {}); // line 5: not in the §9 table
    scope.spawn(format!("aggbox-{b}-ingest"), || {}); // line 6: unknown suffix
}

fn fine(scope: &JoinScope) {
    scope.spawn(format!("aggbox-{}-listen", b), || {}); // matches `aggbox-<b>-listen`
    scope.spawn("aggbox-7-listen", || {}); // concrete instance of the template
    scope.spawn(thread_name, || {}); // computed names are out of scope
}
