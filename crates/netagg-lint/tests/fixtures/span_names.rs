// Fixture for metrics-contract span-name checks. NOT compiled — lexed
// directly by the lint engine against the mini contract in lint_rules.rs.

fn violations(tracer: &TraceRecorder) {
    tracer.record_span("span.worker.send", c, t, s, p, r, a, b); // line 5: in contract, but hardcoded
    tracer.record_span("span.totally.unknown", c, t, s, p, r, a, b); // line 6: not in the contract
}

fn fine(tracer: &TraceRecorder) {
    tracer.record_span(names::spans::WORKER_SEND, c, t, s, p, r, a, b); // constant: the blessed spelling
    let key = "span.worker.send"; // bare string, not a call site
}
