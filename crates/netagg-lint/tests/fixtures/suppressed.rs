// Fixture for suppression handling. NOT compiled — lexed directly.

fn suppressed() {
    // netagg-lint: allow(no-raw-spawn) fixture exercises the raw API
    let a = std::thread::spawn(|| {}); // covered by the comment above
    let b = std::thread::spawn(|| {}); // netagg-lint: allow(no-raw-spawn) trailing form
}

fn stale() {
    // netagg-lint: allow(no-unbounded-channel) nothing to suppress here
    let x = 1;
}
