// Fixture for metrics-contract call-site checks. NOT compiled — lexed
// directly by the lint engine against the mini contract in lint_rules.rs.

fn violations(obs: &MetricsRegistry) {
    obs.counter("aggbox.tasks_executed").inc(); // line 5: in contract, but hardcoded
    obs.gauge(&format!("mailbox.depth.{}", name)).set(3); // line 6: templated, hardcoded
    obs.counter("totally.unknown.metric").inc(); // line 7: not in the contract
    obs.emit("meteor-strike", "detail"); // line 8: unknown event kind
}

fn fine(obs: &MetricsRegistry) {
    obs.counter(names::AGGBOX_TASKS_EXECUTED).inc(); // constant: the blessed spelling
    obs.gauge(&names::mailbox_depth("egress")).set(3); // helper: not a literal
    obs.emit(names::EVENT_FAILURE, "detail"); // constant event kind
    let snapshot_key = "aggbox.tasks_executed"; // bare string, not a call site
}
