// Blocking while locked, and guard-poison unwraps.
struct Fx {
    alpha: OrderedMutex<u32>,
}

impl Fx {
    fn build() -> Self {
        Self {
            alpha: OrderedMutex::new(lock_order::FX_ALPHA, 0),
        }
    }

    fn send_under_guard(&self, tx: &Mailbox<u32>) {
        let a = self.alpha.lock();
        let _ = tx.send(*a);
    }

    fn sleep_under_guard(&self) {
        let _a = self.alpha.lock();
        thread::sleep(Duration::from_millis(5));
    }
}

fn raw_unwrap(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn raw_expect(m: &std::sync::RwLock<u32>) -> u32 {
    *m.read().expect("poisoned")
}
