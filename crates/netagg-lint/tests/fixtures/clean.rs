// Fixture: idiomatic runtime code. The lint must report NOTHING here —
// every construct below is the blessed spelling of something a rule
// polices, or a near-miss a naive matcher would false-positive on.

fn lifecycle(scope: &JoinScope, cancel: &CancelToken, obs: &MetricsRegistry) {
    // JoinScope spawns with inventory names.
    scope
        .spawn(format!("master-shim-{}", app), move || run(cancel))
        .unwrap();

    // Bounded mailboxes with explicit policies.
    let mb = Mailbox::with_obs("aggbox3.egress", 4096, OverflowPolicy::DropOldest, cancel, obs);

    // Contract constants and helpers, never literals.
    obs.counter(names::AGGBOX_MESSAGES_IN).inc();
    obs.gauge(&names::mailbox_depth("aggbox3.egress")).set(0);
    obs.emit(names::EVENT_REPOINT, "box 3 -> box 1");

    // Wakeup-driven shutdown: no timed poll anywhere near the flag.
    while !cancel.is_cancelled() {
        match mb.recv() {
            Ok(item) => handle(item),
            Err(_) => return,
        }
    }

    // Near-misses that must stay silent:
    // - `spawn` on something that is not a thread API,
    fish.spawn(eggs);
    // - a timed recv in a drain loop with no shutdown flag,
    while rx.recv_timeout(Duration::from_millis(1)).is_ok() {}
    // - `thread::spawn` in a string or comment,
    let doc = "call thread::spawn here";
    // - a bounded sync_channel.
    let (tx, rx) = std::sync::mpsc::sync_channel(8);
}
