// Seeded lock-order violation: `forward` takes alpha → beta while
// `backward` takes beta → alpha — a cycle the gate must refuse.
struct Fx {
    alpha: OrderedMutex<u32>,
    beta: OrderedMutex<u32>,
}

impl Fx {
    fn build() -> Self {
        Self {
            alpha: OrderedMutex::new(lock_order::FX_ALPHA, 0),
            beta: OrderedMutex::new(lock_order::FX_BETA, 0),
        }
    }

    fn forward(&self) {
        let a = self.alpha.lock();
        let mut b = self.beta.lock();
        *b += *a;
    }

    fn backward(&self) {
        let b = self.beta.lock();
        let mut a = self.alpha.lock();
        *a += *b;
    }
}
