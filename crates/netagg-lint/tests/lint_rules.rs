//! Fixture tests: every rule is proven to fire (with the exact span), the
//! clean fixture is proven silent, suppressions work, and the §7 ⇄
//! `names.rs` sync check fails on either direction of drift.

use netagg_lint::contract::Contract;
use netagg_lint::{lint_source, lint_workspace, lockgraph, Diagnostic, Level};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

/// A small but representative contract: one plain metric, three templated
/// ones, the event kinds, two span names, and two thread rows.
fn mini_contract() -> Contract {
    Contract::from_sources(
        "### Metrics contract\n\
         | Name | Type |\n|---|---|\n\
         | `aggbox.tasks_executed` | counter |\n\
         | `aggbox.messages_in` | counter |\n\
         | `mailbox.depth.<name>` | gauge |\n\
         | `net.link.<from>-><to>.frames` | counter |\n\
         ### Structured events\n\
         | Kind | When |\n|---|---|\n\
         | `failure` | declared |\n\
         | `repoint` | re-pointed |\n\
         ### Span and stage names\n\
         | Span | Recorded by |\n|---|---|\n\
         | `span.worker.send` | worker shim |\n\
         | `span.wire.transfer` | receiving hop |\n\
         ### Thread inventory\n\
         | Thread name | Owner |\n|---|---|\n\
         | `aggbox-<b>-listen` | `AggBox` |\n\
         | `master-shim-<a>` | `MasterShim` |\n",
        "pub const AGGBOX_TASKS_EXECUTED: &str = \"aggbox.tasks_executed\";\n\
         pub const AGGBOX_MESSAGES_IN: &str = \"aggbox.messages_in\";\n\
         pub const MAILBOX_DEPTH: &str = \"mailbox.depth.<name>\";\n\
         pub const NET_LINK_FRAMES: &str = \"net.link.<from>-><to>.frames\";\n\
         pub const EVENT_FAILURE: &str = \"failure\";\n\
         pub const EVENT_REPOINT: &str = \"repoint\";\n\
         pub const WORKER_SEND: &str = \"span.worker.send\";\n\
         pub const WIRE_TRANSFER: &str = \"span.wire.transfer\";\n",
    )
}

fn run(name: &str) -> Vec<Diagnostic> {
    // A production-looking path, so every rule applies.
    lint_source(
        &format!("crates/x/src/{name}"),
        &fixture(name),
        &mini_contract(),
    )
}

fn spans(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn no_raw_spawn_fires_on_each_form_with_spans() {
    let diags = run("raw_spawn.rs");
    assert_eq!(spans(&diags, "no-raw-spawn"), vec![5, 6, 7], "{diags:?}");
    assert!(
        diags.iter().all(|d| d.rule == "no-raw-spawn"),
        "no other rule may fire on this fixture: {diags:?}"
    );
    // Spans carry a real column, not a placeholder.
    assert!(diags.iter().all(|d| d.col > 1));
}

#[test]
fn no_unbounded_channel_fires_on_std_and_crossbeam() {
    let diags = run("unbounded.rs");
    assert_eq!(
        spans(&diags, "no-unbounded-channel"),
        vec![5, 6, 7],
        "{diags:?}"
    );
    assert!(diags.iter().all(|d| d.rule == "no-unbounded-channel"));
}

#[test]
fn no_poll_shutdown_anchors_at_the_poll_call() {
    let diags = run("poll_shutdown.rs");
    assert_eq!(spans(&diags, "no-poll-shutdown"), vec![9, 19], "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "no-poll-shutdown"));
}

#[test]
fn metrics_contract_flags_hardcoded_unknown_and_event_names() {
    let diags = run("metric_names.rs");
    assert_eq!(
        spans(&diags, "metrics-contract"),
        vec![5, 6, 7, 8],
        "{diags:?}"
    );
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs[0].contains("AGGBOX_TASKS_EXECUTED"), "{:?}", msgs[0]);
    assert!(msgs[1].contains("MAILBOX_DEPTH"), "{:?}", msgs[1]);
    assert!(msgs[2].contains("not in the DESIGN.md §7 contract"));
    assert!(msgs[3].contains("event"), "{:?}", msgs[3]);
}

#[test]
fn metrics_contract_flags_hardcoded_and_unknown_span_names() {
    let diags = run("span_names.rs");
    assert_eq!(spans(&diags, "metrics-contract"), vec![5, 6], "{diags:?}");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs[0].contains("WORKER_SEND"), "{:?}", msgs[0]);
    assert!(
        msgs[1].contains("not in the DESIGN.md §11 contract"),
        "{:?}",
        msgs[1]
    );
}

#[test]
fn thread_inventory_flags_names_outside_the_table() {
    let diags = run("thread_names.rs");
    assert_eq!(spans(&diags, "thread-inventory"), vec![5, 6], "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "thread-inventory"));
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let diags = run("clean.rs");
    assert!(diags.is_empty(), "false positives: {diags:?}");
}

#[test]
fn suppressions_cover_standalone_and_trailing_and_stale_is_an_error() {
    let diags = run("suppressed.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "no-raw-spawn"),
        "both spawns are suppressed: {diags:?}"
    );
    let stale: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "unused-suppression")
        .collect();
    assert_eq!(stale.len(), 1, "{diags:?}");
    assert_eq!(stale[0].line, 10);
    assert_eq!(
        stale[0].level,
        Level::Error,
        "stale allows must fail the gate"
    );
}

#[test]
fn naming_rules_relax_in_test_paths_but_spawn_rules_do_not() {
    let c = mini_contract();
    let src = fixture("thread_names.rs");
    let diags = lint_source("crates/x/tests/thread_names.rs", &src, &c);
    assert!(diags.is_empty(), "{diags:?}");
    let spawn = fixture("raw_spawn.rs");
    let diags = lint_source("crates/x/tests/raw_spawn.rs", &spawn, &c);
    assert_eq!(spans(&diags, "no-raw-spawn"), vec![5, 6, 7]);
}

#[test]
fn lifecycle_module_is_exempt_from_raw_spawn_only() {
    let c = mini_contract();
    let src = fixture("raw_spawn.rs");
    let diags = lint_source("crates/netagg-net/src/lifecycle.rs", &src, &c);
    assert!(!diags.iter().any(|d| d.rule == "no-raw-spawn"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// Contract-sync drift
// ---------------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn real_sources() -> (String, String) {
    let root = workspace_root();
    (
        fs::read_to_string(root.join("DESIGN.md")).unwrap(),
        fs::read_to_string(root.join("crates/netagg-obs/src/names.rs")).unwrap(),
    )
}

fn sync_errors(design: &str, names: &str) -> Vec<Diagnostic> {
    let c = Contract::from_sources(design, names);
    let mut out = Vec::new();
    netagg_lint::rules::metrics_contract_sync(&c, &mut out);
    out
}

#[test]
fn real_contract_is_in_sync() {
    let (design, names) = real_sources();
    let errs = sync_errors(&design, &names);
    assert!(errs.is_empty(), "drift: {errs:?}");
}

#[test]
fn deleting_any_metric_row_fails_the_gate() {
    let (design, names) = real_sources();
    let c = Contract::from_sources(&design, &names);
    for entry in c
        .metrics
        .iter()
        .chain(c.events.iter())
        .chain(c.spans.iter())
    {
        let row_marker = format!("`{}`", entry.name);
        let pruned: String = design
            .lines()
            .filter(|l| !(l.trim_start().starts_with('|') && l.contains(&row_marker)))
            .map(|l| format!("{l}\n"))
            .collect();
        let errs = sync_errors(&pruned, &names);
        assert!(
            errs.iter()
                .any(|e| e.file.ends_with("names.rs") && e.message.contains(&entry.name)),
            "deleting the `{}` row went unnoticed",
            entry.name
        );
    }
}

#[test]
fn renaming_any_constant_fails_the_gate() {
    let (design, names) = real_sources();
    let c = Contract::from_sources(&design, &names);
    for konst in &c.consts {
        // Target the declaration, not the doc comments that quote the value.
        let mangled = names.replacen(
            &format!(": &str = \"{}\"", konst.value),
            &format!(": &str = \"{}.renamed\"", konst.value),
            1,
        );
        assert_ne!(mangled, names, "rename of `{}` did not apply", konst.ident);
        let errs = sync_errors(&design, &mangled);
        assert!(
            !errs.is_empty(),
            "renaming `{}` went unnoticed",
            konst.ident
        );
    }
}

#[test]
fn reactor_thread_table_must_stay_subset_of_inventory() {
    let (design, names) = real_sources();
    let c = Contract::from_sources(&design, &names);
    assert!(
        !c.reactor_threads.is_empty(),
        "DESIGN.md §12 'Reactor threads' table is missing"
    );
    // In sync today…
    let mut out = Vec::new();
    netagg_lint::rules::thread_inventory_sync(&c, &mut out);
    assert!(out.is_empty(), "§12/§9 drift: {out:?}");
    // …and deleting the §9 row is caught.
    for entry in &c.reactor_threads {
        let row_marker = format!("`{}`", entry.name);
        let pruned: String = design
            .lines()
            .enumerate()
            .filter(|(i, l)| {
                // Drop only the §9 occurrence (before the §12 section).
                let in_inventory = (*i as u32) < entry.line - 1;
                !(in_inventory && l.trim_start().starts_with('|') && l.contains(&row_marker))
            })
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let pc = Contract::from_sources(&pruned, &names);
        let mut errs = Vec::new();
        netagg_lint::rules::thread_inventory_sync(&pc, &mut errs);
        assert!(
            errs.iter().any(|e| e.message.contains(&entry.name)),
            "deleting the §9 `{}` row went unnoticed",
            entry.name
        );
    }
}

#[test]
fn workspace_is_clean() {
    let diags = lint_workspace(&workspace_root()).unwrap();
    let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.level == Level::Error).collect();
    assert!(errors.is_empty(), "workspace violations: {errors:?}");
    assert!(
        diags.is_empty(),
        "stale suppressions or warnings: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Lock-order, blocking-while-locked, and guard-unwrap rules (§15)
// ---------------------------------------------------------------------------

/// A two-lock registry matching the `fx.*` fixtures.
fn lock_contract() -> Contract {
    let mut c = Contract::from_sources(
        "### Lock ranks\n\
         | Rank | Lock | Protects |\n|---|---|---|\n\
         | 1 | `fx.alpha` | fixture |\n\
         | 2 | `fx.beta` | fixture |\n",
        "",
    );
    c.lock_ranks = netagg_lint::contract::parse_rank_consts(
        "pub const FX_ALPHA: LockRank = LockRank::new(1, \"fx.alpha\");\n\
         pub const FX_BETA: LockRank = LockRank::new(2, \"fx.beta\");\n",
    );
    c
}

#[test]
fn lock_block_fixture_flags_blocking_calls_and_guard_unwraps() {
    let c = lock_contract();
    let diags = lint_source("crates/x/src/lock_block.rs", &fixture("lock_block.rs"), &c);
    assert_eq!(
        spans(&diags, "no-block-while-locked"),
        vec![15, 20],
        "{diags:?}"
    );
    assert_eq!(spans(&diags, "no-lock-unwrap"), vec![25, 29], "{diags:?}");
}

#[test]
fn seeded_lock_cycle_fixture_fails_the_gate() {
    let c = lock_contract();
    let reg = lockgraph::Registry::from_contract(&c);
    let lexed = netagg_lint::lexer::lex(&fixture("lock_cycle.rs"));
    let fa = lockgraph::analyze_file("crates/x/src/lock_cycle.rs", &lexed, &reg);
    assert!(fa.diags.is_empty(), "per-file noise: {:?}", fa.diags);
    let mut diags = Vec::new();
    lockgraph::graph_checks(&fa.edges, &c, &reg, &mut diags);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "lock-order" && d.message.contains("cycle")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "lock-order" && d.message.contains("must ascend")),
        "{diags:?}"
    );
    assert!(diags.iter().all(|d| d.level == Level::Error), "{diags:?}");
}

#[test]
fn clean_lock_fixture_is_silent() {
    let c = lock_contract();
    let src = fixture("lock_clean.rs");
    let diags = lint_source("crates/x/src/lock_clean.rs", &src, &c);
    assert!(diags.is_empty(), "false positives: {diags:?}");
    let reg = lockgraph::Registry::from_contract(&c);
    let lexed = netagg_lint::lexer::lex(&src);
    let fa = lockgraph::analyze_file("crates/x/src/lock_clean.rs", &lexed, &reg);
    let mut out = Vec::new();
    lockgraph::graph_checks(&fa.edges, &c, &reg, &mut out);
    assert!(out.is_empty(), "{out:?}");
}

// ---------------------------------------------------------------------------
// Vendored code is out of scope, end to end
// ---------------------------------------------------------------------------

/// One file that violates three rules at once: a raw spawn, a guard
/// unwrap, and a rank-inverted acquisition against the real registry.
const PLANTED: &str = "use std::thread;\n\
    // netagg-lint: lock-binding(pending = scn.pending)\n\
    // netagg-lint: lock-binding(applied = scn.applied)\n\
    fn inverted(pending: &OrderedMutex<u32>, applied: &OrderedMutex<u32>) -> u32 {\n\
        let b = applied.lock();\n\
        let a = pending.lock();\n\
        *a + *b\n\
    }\n\
    fn spawned() {\n\
        thread::spawn(|| {});\n\
    }\n\
    fn unwrapped(m: &std::sync::Mutex<u32>) -> u32 {\n\
        *m.lock().unwrap()\n\
    }\n";

/// A throwaway workspace root carrying the real contract files, with the
/// planted violation at `rel`.
fn planted_root(tag: &str, rel: &str) -> PathBuf {
    let real = workspace_root();
    let root = std::env::temp_dir().join(format!("netagg-lint-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for f in [
        "DESIGN.md",
        "crates/netagg-obs/src/names.rs",
        "crates/netagg-net/src/lock_order.rs",
    ] {
        let dst = root.join(f);
        fs::create_dir_all(dst.parent().unwrap()).unwrap();
        fs::copy(real.join(f), dst).unwrap();
    }
    let planted = root.join(rel);
    fs::create_dir_all(planted.parent().unwrap()).unwrap();
    fs::write(planted, PLANTED).unwrap();
    root
}

#[test]
fn planted_violation_under_vendor_does_not_fire() {
    let root = planted_root("vendor", "vendor/evil/src/evil.rs");
    let diags = lint_workspace(&root).unwrap();
    assert!(diags.is_empty(), "vendored code was linted: {diags:?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn planted_violation_under_crates_fails_the_gate() {
    let root = planted_root("crates", "crates/x/src/evil.rs");
    let diags = lint_workspace(&root).unwrap();
    for rule in ["no-raw-spawn", "no-lock-unwrap", "lock-order"] {
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rule && d.level == Level::Error),
            "{rule} did not fire: {diags:?}"
        );
    }
    let _ = fs::remove_dir_all(&root);
}
