//! Lifecycle integration tests for the unified cancellation/join runtime.
//!
//! These fence the DESIGN.md "Lifecycle & backpressure model" invariants at
//! system scope: tearing down a full [`NetAggDeployment`] mid-request — even
//! with a seeded agg-box kill in flight — must join every scoped thread
//! within the join deadline, lose no worker panic (a harvested panic makes
//! `JoinScope::finish` panic, failing the test), and leave the
//! `runtime.threads_active` gauge at exactly zero.
//!
//! Kill timings come from seeded [`FaultStep`] schedules so a failing
//! timing is reproducible: set `NETAGG_FAULT_SEED` to replay a run.

use bytes::Bytes;
use netagg_core::failure::DetectorConfig;
use netagg_core::lifecycle::DEFAULT_JOIN_DEADLINE;
use netagg_core::prelude::*;
use netagg_net::{ChannelTransport, DetRng, FaultController, FaultStep, FaultTransport, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sum-of-integers aggregation over a trivial text encoding.
struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

fn fast_detector() -> DetectorConfig {
    DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    }
}

/// Seed for the fault schedules. Override with `NETAGG_FAULT_SEED=<u64>` to
/// reproduce a specific run; CI pins it so failures are replayable.
fn fault_seed() -> u64 {
    std::env::var("NETAGG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAE57_11E5)
}

/// Drop an entire deployment mid-request while a seeded fault schedule
/// kills the rack box at an arbitrary protocol moment. Every scoped thread
/// (box listeners/readers/egress/flush/straggler, scheduler pool, shim
/// listeners/readers, failure detectors) must join inside the scope
/// deadline; a hung thread panics `finish()`, a harvested worker panic
/// re-panics, and the shared `runtime.threads_active` gauge must read
/// exactly zero afterwards — so a clean return proves all three.
#[test]
fn dropping_a_deployment_mid_request_joins_every_thread() {
    let seed = fault_seed();
    let mut rng = DetRng::new(seed);
    for round in 0..4u64 {
        let n = rng.gen_range(1, 10);
        let ctl = FaultController::new();
        let transport: Arc<dyn Transport> =
            Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
        let cluster = ClusterSpec::single_rack(3, 1);
        let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
        // Clone the registry out *before* teardown: gauges are shared, so
        // it keeps reporting after the deployment itself is gone.
        let obs = dep.obs().clone();
        let app = dep.register_app("sum", sum_agg(), 1.0);
        let master = dep.master_shim(app);
        let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
        dep.enable_failure_detection(fast_detector());
        let box_addr = dep.boxes()[0].addr();

        let live = obs.gauge("runtime.threads_active").get();
        assert!(
            live > 0.0,
            "seed {seed:#x} round {round}: expected live scoped threads before teardown"
        );

        // Kill the box after a seeded number of further frames, so teardown
        // races an in-flight failure at arbitrary protocol moments.
        ctl.schedule(FaultStep {
            watch: box_addr,
            after_frames: ctl.frames_delivered(box_addr) + n,
            kill_target: box_addr,
        });

        let req = round + 1;
        let pending = master.register_request(req, 3);
        for (i, w) in workers.iter().enumerate() {
            // Sends may fail once the box dies; teardown must cope anyway.
            let _ = w.send_partial(req, Bytes::from((i as i64 + 1).to_string()));
        }
        // Deliberately do NOT wait for the request: the whole point is to
        // tear down with the aggregation (and possibly a replay) in flight.
        drop(pending);

        let t0 = Instant::now();
        drop(workers);
        drop(master);
        drop(dep);
        let elapsed = t0.elapsed();

        // Cancellation wakes blocked threads instead of being polled, so
        // teardown should be nowhere near the join deadline; allow slack
        // for one detector round plus scheduling noise on a loaded CI box.
        assert!(
            elapsed < DEFAULT_JOIN_DEADLINE + Duration::from_secs(3),
            "seed {seed:#x} round {round} (kill after {n} frames): \
             teardown took {elapsed:?}"
        );
        let remaining = obs.gauge("runtime.threads_active").get();
        assert_eq!(
            remaining, 0.0,
            "seed {seed:#x} round {round} (kill after {n} frames): \
             {remaining} scoped threads still alive after full teardown"
        );
    }
}

/// Fault-free variant fencing the wakeup path itself: with nothing dead and
/// a request in flight, full teardown must complete far under the join
/// deadline (blocked receivers are woken by cancellation, not discovered by
/// a poll tick) and still zero the thread gauge.
#[test]
fn clean_teardown_mid_request_is_prompt() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let obs = dep.obs().clone();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    dep.enable_failure_detection(fast_detector());

    let pending = master.register_request(1, 3);
    let _ = workers[0].send_partial(1, Bytes::from("5"));
    let _ = workers[1].send_partial(1, Bytes::from("7"));
    // Third partial withheld: the request stays open across teardown.
    drop(pending);

    let t0 = Instant::now();
    drop(workers);
    drop(master);
    drop(dep);
    let elapsed = t0.elapsed();

    assert!(
        elapsed < Duration::from_secs(2),
        "clean teardown should be wakeup-bounded, took {elapsed:?}"
    );
    assert_eq!(
        obs.gauge("runtime.threads_active").get(),
        0.0,
        "scoped threads survived a clean teardown"
    );
}
