//! Deterministic fault-injection tests for the failure-recovery path.
//!
//! These fence the fan-in ledger (DESIGN.md "Fan-in ledgers"): whatever the
//! kill timing — mid-request, during replay, double failures, duplicate
//! detector firings, replay racing the re-point command — a request must
//! complete with the *exact* total, each logical contributor counted once.
//!
//! Kill timings come from seeded [`FaultStep`] schedules so a failing
//! timing is reproducible: set `NETAGG_FAULT_SEED` to replay a run.

use bytes::Bytes;
use netagg_core::failure::DetectorConfig;
use netagg_core::prelude::*;
use netagg_core::protocol::{Message, RequestId, SourceId, TreeId};
use netagg_net::{
    ChannelTransport, Connection, DetRng, FaultController, FaultStep, FaultTransport, Transport,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sum-of-integers aggregation over a trivial text encoding.
struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

fn parse(b: &Bytes) -> i64 {
    std::str::from_utf8(b).unwrap().parse().unwrap()
}

fn fast_detector() -> DetectorConfig {
    DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    }
}

/// Seed for the fault schedules. Override with `NETAGG_FAULT_SEED=<u64>` to
/// reproduce a specific run; CI pins it so failures are replayable.
fn fault_seed() -> u64 {
    std::env::var("NETAGG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xAE57_11E5)
}

/// Block until every worker's tree-0 assignment is `dest`, or panic after
/// `timeout`. Recovery re-points workers asynchronously (detector rounds),
/// so tests poll rather than assume a fixed delay.
fn wait_assignments(
    workers: &[Arc<netagg_core::shim::WorkerShim>],
    dest: netagg_net::NodeId,
    timeout: Duration,
) {
    let deadline = Instant::now() + timeout;
    loop {
        if workers
            .iter()
            .all(|w| w.assignment(TreeId(0)) == Some(dest))
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "workers not re-pointed at {dest} within {timeout:?}: {:?}",
            workers
                .iter()
                .map(|w| w.assignment(TreeId(0)))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Kill the rack box after the Nth frame delivered to it, for several
/// seeded N. The request total must be exactly 5+7+11=23 for *every* kill
/// timing: before the meta, between worker chunks, after the combine, or
/// not at all (schedule never fires).
#[test]
fn seeded_kill_at_nth_frame_always_totals_exactly() {
    let seed = fault_seed();
    let mut rng = DetRng::new(seed);
    for round in 0..6u64 {
        let n = rng.gen_range(1, 12);
        let ctl = FaultController::new();
        let transport: Arc<dyn Transport> =
            Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
        let cluster = ClusterSpec::single_rack(3, 1);
        let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
        let app = dep.register_app("sum", sum_agg(), 1.0);
        let master = dep.master_shim(app);
        let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
        dep.enable_failure_detection(fast_detector());
        let box_addr = dep.boxes()[0].addr();

        // Arm relative to frames already delivered (route installs and
        // heartbeats count too — the sweep deliberately lands kills at
        // arbitrary protocol moments, not just between data chunks).
        ctl.schedule(FaultStep {
            watch: box_addr,
            after_frames: ctl.frames_delivered(box_addr) + n,
            kill_target: box_addr,
        });

        let req = round + 1;
        let p = master.register_request(req, 3);
        // Sends may fail if the box is already dead; the replay buffer
        // recovers them once the detector re-points the worker.
        let _ = workers[0].send_partial(req, Bytes::from("5"));
        let _ = workers[1].send_partial(req, Bytes::from("7"));
        std::thread::sleep(Duration::from_millis(400));
        let _ = workers[2].send_partial(req, Bytes::from("11"));
        let result = p.wait(Duration::from_secs(10)).unwrap_or_else(|e| {
            panic!("seed {seed:#x} round {round} (kill after {n} frames): {e:?}")
        });
        assert_eq!(
            parse(&result.combined),
            23,
            "seed {seed:#x} round {round}: kill after {n} frames must still total 23"
        );
        ctl.clear_schedule();
        ctl.revive(box_addr);
        dep.shutdown();
    }
}

/// Kill the leaf box mid-request, then kill the root box while the leaf's
/// workers are replaying into it. Recovery must chain down to the master
/// with the exact total.
#[test]
fn kill_during_replay_chains_to_master() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    dep.enable_failure_detection(fast_detector());
    let root = dep.boxes()[0].addr();
    let leaf = dep.boxes()[1].addr();

    // Healthy request through both boxes.
    let p = master.register_request(1, 4);
    for w in &workers {
        w.send_partial(1, Bytes::from("1")).unwrap();
    }
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 4);

    // Rack 1's workers contribute, then their box dies.
    let p = master.register_request(2, 4);
    workers[2].send_partial(2, Bytes::from("5")).unwrap();
    workers[3].send_partial(2, Bytes::from("7")).unwrap();
    ctl.kill(leaf);
    // The moment the root's detector re-points rack 1's workers (replay to
    // the root is now in flight), kill the root too.
    wait_assignments(&workers[2..4], root, Duration::from_secs(5));
    ctl.kill(root);

    // The master's detector fires on the root, adopts the (dead) leaf as
    // its own watched child, detects it too, and re-points everyone here.
    wait_assignments(&workers, master.addr(), Duration::from_secs(8));
    workers[0].send_partial(2, Bytes::from("11")).unwrap();
    workers[1].send_partial(2, Bytes::from("13")).unwrap();
    let result = p.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 5 + 7 + 11 + 13);
    assert_eq!(result.master_inputs, 4, "all four workers direct");

    ctl.revive(leaf);
    ctl.revive(root);
    dep.shutdown();
}

/// Both boxes die before any data moves. The master must adopt the whole
/// orphaned subtree (root, then the root's child box) and serve requests
/// directly — and the recovery metrics must reflect it.
#[test]
fn double_kill_recovers_and_surfaces_metrics() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    dep.enable_failure_detection(fast_detector());
    let root = dep.boxes()[0].addr();
    let leaf = dep.boxes()[1].addr();

    let p = master.register_request(1, 4);
    for w in &workers {
        w.send_partial(1, Bytes::from("2")).unwrap();
    }
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 8);

    ctl.kill(root);
    ctl.kill(leaf);
    // Chained adoption: detect root → adopt leaf → detect leaf.
    wait_assignments(&workers, master.addr(), Duration::from_secs(8));

    let p = master.register_request(2, 4);
    for w in &workers {
        w.send_partial(2, Bytes::from("3")).unwrap();
    }
    let result = p.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 12);
    assert_eq!(result.master_inputs, 4);

    let snap = dep.snapshot();
    assert!(
        snap.counter("shim.master.repoints").unwrap_or(0) >= 1,
        "re-points must be counted"
    );
    assert_eq!(
        snap.gauge("shim.master.sources_outstanding"),
        Some(0.0),
        "nothing owed after completion"
    );
    assert!(
        dep.obs().events().iter().any(|e| e.kind == "repoint"),
        "re-points must be audited as events"
    );

    ctl.revive(root);
    ctl.revive(leaf);
    dep.shutdown();
}

/// The detector (or an operator) declaring the same box failed repeatedly
/// must not change the outcome: the re-point is set-based and idempotent.
#[test]
fn detector_firing_twice_for_same_box_is_idempotent() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    dep.enable_failure_detection(fast_detector());

    let p = master.register_request(1, 3);
    workers[0].send_partial(1, Bytes::from("5")).unwrap();
    workers[1].send_partial(1, Bytes::from("7")).unwrap();
    // Spurious firing BEFORE the box actually dies…
    master.on_child_box_failed(TreeId(0), 0);
    ctl.kill(dep.boxes()[0].addr());
    // …the real detector firing while the box is down…
    wait_assignments(&workers, master.addr(), Duration::from_secs(8));
    // …and a third, late firing after recovery already happened.
    master.on_child_box_failed(TreeId(0), 0);
    workers[2].send_partial(1, Bytes::from("11")).unwrap();
    let result = p.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 23);
    assert_eq!(result.master_inputs, 3);

    // Subsequent requests are unaffected by the duplicate firings.
    let p = master.register_request(2, 3);
    for w in &workers {
        w.send_partial(2, Bytes::from("1")).unwrap();
    }
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 3);

    ctl.revive(dep.boxes()[0].addr());
    dep.shutdown();
}

/// Open a raw wire connection to the master and return it together with
/// a closure-friendly sender. Tests drive the protocol directly to force
/// orderings the in-process shims cannot produce.
fn raw_conn(dep: &NetAggDeployment, local: u32, master: netagg_net::NodeId) -> Box<dyn Connection> {
    dep.transport().connect(local, master).unwrap()
}

fn data_frame(
    app: netagg_core::protocol::AppId,
    request: u64,
    source: SourceId,
    seq: u32,
    last: bool,
    payload: &str,
) -> Bytes {
    Message::Data {
        app,
        request: RequestId(request),
        tree: TreeId(0),
        source,
        seq,
        last,
        ctx: netagg_obs::trace::TraceCtx::NONE,
        sent_ns: 0,
        payload: Bytes::from(payload.to_string()),
    }
    .encode()
}

/// Worker replays land at the master BEFORE the re-point command does.
/// Under counter-based accounting the two replays would satisfy the old
/// "expect 1 input" and complete the request with a partial total. The
/// ledger keys entries by contributor, so worker chunks cannot satisfy a
/// box entry: the request must stay open until the re-point moves it.
#[test]
fn replay_arriving_before_repoint_holds_until_repoint() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);

    let p = master.register_request(7, 2);
    let mut conn = raw_conn(&dep, 9_001, master.addr());
    // Replayed worker chunks arrive first (no redirect was issued yet).
    conn.send(data_frame(app, 7, SourceId::Worker(0), 1, true, "5"))
        .unwrap();
    conn.send(data_frame(app, 7, SourceId::Worker(1), 1, true, "7"))
        .unwrap();
    // The master still owes the box's subtree: must NOT complete.
    assert!(
        p.wait(Duration::from_millis(300)).is_err(),
        "request completed from replays alone while the box was still owed"
    );
    // The re-point arrives; the already-buffered replays satisfy it.
    master.on_child_box_failed(TreeId(0), 0);
    let result = p.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 12);
    assert_eq!(result.master_inputs, 2);
    dep.shutdown();
}

/// A box streams a partial covering worker 0's data, then dies; the
/// workers replay everything. The box's orphaned partial must be excluded
/// from the final aggregate or worker 0 would be counted twice.
#[test]
fn box_partial_then_death_is_not_double_counted() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);

    let p = master.register_request(9, 2);
    let mut conn = raw_conn(&dep, 9_002, master.addr());
    // Box streams a non-final partial (worker 0's "5"), then dies.
    conn.send(data_frame(app, 9, SourceId::Box(0), 1, false, "5"))
        .unwrap();
    master.on_child_box_failed(TreeId(0), 0);
    // Workers replay their originals directly.
    conn.send(data_frame(app, 9, SourceId::Worker(0), 1, true, "5"))
        .unwrap();
    conn.send(data_frame(app, 9, SourceId::Worker(1), 1, true, "7"))
        .unwrap();
    let result = p.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(
        parse(&result.combined),
        12,
        "the dead box's partial must be dropped, not added to the replays"
    );
    assert_eq!(result.master_inputs, 2, "only the two replays count");
    dep.shutdown();
}

/// The box delivers its combined result, completes the request — and THEN
/// is declared failed. Late worker replays for the already-complete
/// request must be suppressed, not re-aggregated.
#[test]
fn box_failure_after_delivery_suppresses_replays() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);

    let p = master.register_request(11, 2);
    let mut conn = raw_conn(&dep, 9_003, master.addr());
    conn.send(data_frame(app, 11, SourceId::Box(0), 1, true, "12"))
        .unwrap();
    // Give the reader a moment to mark the request complete, then fail the
    // box and replay the workers' raw chunks.
    std::thread::sleep(Duration::from_millis(100));
    master.on_child_box_failed(TreeId(0), 0);
    conn.send(data_frame(app, 11, SourceId::Worker(0), 1, true, "5"))
        .unwrap();
    conn.send(data_frame(app, 11, SourceId::Worker(1), 1, true, "7"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let result = p.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(
        parse(&result.combined),
        12,
        "replays after completion must not alter the result"
    );
    assert_eq!(result.master_inputs, 1, "only the box's combined counted");
    dep.shutdown();
}
