//! Focused shim-layer tests: chunking, replay-buffer lifecycle, duplicate
//! suppression, pending-state GC, master-level straggler bypass and the
//! broadcast backpressure path. Complements the end-to-end scenarios in
//! `platform.rs`.

use bytes::Bytes;
use netagg_core::prelude::*;
use netagg_core::protocol::TreeId;
use netagg_core::runtime::DeploymentConfig;
use netagg_core::shim::{MasterShim, MasterShimConfig, TreeSelection};
use netagg_core::straggler::StragglerPolicy;
use netagg_core::tree::{build_tree_specs, master_addr};
use netagg_net::{ChannelTransport, FaultController, FaultTransport, Transport};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Duration;

struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

fn parse(b: &Bytes) -> i64 {
    std::str::from_utf8(b).unwrap().parse().unwrap()
}

#[test]
fn send_partial_chunked_splits_into_expected_chunks() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);

    let pending = master.register_request(1, 2);
    // "11111" chunked at 1 byte: five chunks, each deserialising to 1.
    w0.send_partial_chunked(1, Bytes::from_static(b"11111"), 1)
        .unwrap();
    w1.send_partial(1, Bytes::from_static(b"10")).unwrap();
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 15);
    assert_eq!(w0.stats().chunks_sent.load(Relaxed), 5);
    assert_eq!(w0.stats().bytes_sent.load(Relaxed), 5);

    // Payload smaller than the chunk size goes out whole.
    let pending = master.register_request(2, 2);
    w0.send_partial_chunked(2, Bytes::from_static(b"4"), 1024)
        .unwrap();
    w1.send_partial(2, Bytes::from_static(b"5")).unwrap();
    assert_eq!(
        parse(&pending.wait(Duration::from_secs(5)).unwrap().combined),
        9
    );
    assert_eq!(w0.stats().chunks_sent.load(Relaxed), 6);
    dep.shutdown();
}

#[test]
fn duplicate_resends_are_suppressed_at_the_box() {
    // Models Hadoop speculative execution: a backup task re-emits the same
    // output; per-(source, seq) suppression at the box drops the copies.
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);

    let pending = master.register_request(1, 2);
    w0.send_chunk(1, Bytes::from_static(b"7"), false).unwrap();
    // The speculative duplicate of everything sent so far.
    w0.resend_request(1);
    w0.send_chunk(1, Bytes::from_static(b"0"), true).unwrap();
    w1.send_partial(1, Bytes::from_static(b"3")).unwrap();
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(
        parse(&result.combined),
        10,
        "duplicate 7 must not be re-added"
    );
    assert!(w0.stats().chunks_resent.load(Relaxed) >= 1);
    assert!(
        dep.boxes()[0].stats().duplicates_dropped.load(Relaxed) >= 1,
        "box should have dropped the duplicate"
    );
    dep.shutdown();
}

#[test]
fn complete_request_clears_replay_state() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);

    let pending = master.register_request(1, 2);
    w0.send_partial(1, Bytes::from_static(b"2")).unwrap();
    w1.send_partial(1, Bytes::from_static(b"3")).unwrap();
    pending.wait(Duration::from_secs(5)).unwrap();

    // Before the app acknowledges completion the chunks are replayable...
    w0.resend_request(1);
    let resent = w0.stats().chunks_resent.load(Relaxed);
    assert!(resent >= 1);
    // ...and afterwards they are gone.
    w0.complete_request(1);
    w0.resend_request(1);
    assert_eq!(w0.stats().chunks_resent.load(Relaxed), resent);
    dep.shutdown();
}

#[test]
fn resend_with_nothing_buffered_is_a_noop() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(1, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let w0 = dep.worker_shim(app, 0);
    w0.resend_request(42);
    assert_eq!(w0.stats().chunks_resent.load(Relaxed), 0);
    dep.shutdown();
}

#[test]
fn replay_buffer_evicts_oldest_requests() {
    // The buffer keeps the 64 most recent requests; chunks of older ones
    // can no longer be replayed.
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(1, 0); // direct to master
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let _master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);

    for req in 0..70u64 {
        w0.send_partial(req, Bytes::from_static(b"1")).unwrap();
    }
    w0.resend_request(0); // evicted
    assert_eq!(w0.stats().chunks_resent.load(Relaxed), 0);
    w0.resend_request(69); // still buffered
    assert_eq!(w0.stats().chunks_resent.load(Relaxed), 1);
    dep.shutdown();
}

#[test]
fn assignment_is_master_when_no_boxes_deployed() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 0);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let w0 = dep.worker_shim(app, 0);
    assert_eq!(w0.assignment(TreeId(0)), Some(master_addr(app)));
    assert_eq!(w0.assignment(TreeId(7)), None, "unknown tree has no route");
    assert_eq!(w0.worker_id(), 0);
    dep.shutdown();
}

#[test]
fn abandoned_requests_are_garbage_collected_after_ttl() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 0);
    let specs = build_tree_specs(&cluster);
    let master = MasterShim::start(
        transport,
        netagg_core::protocol::AppId(0),
        sum_agg(),
        &specs,
        MasterShimConfig {
            pending_ttl: Duration::from_millis(50),
            ..MasterShimConfig::default()
        },
    )
    .unwrap();

    let abandoned = master.register_request(1, 2);
    std::thread::sleep(Duration::from_millis(80));
    // Registering any other request runs the opportunistic GC.
    let _fresh = master.register_request(2, 2);
    match abandoned.wait(Duration::from_millis(200)) {
        Err(AggError::Net(msg)) => assert!(msg.contains("not registered"), "{msg}"),
        other => panic!("expected GC'd request error, got {other:?}"),
    }
    master.shutdown();
}

#[test]
fn master_bypasses_a_straggling_root_box() {
    // The master shim runs the same straggler logic as the boxes, with a 4x
    // threshold so box-level bypass gets the first chance. Here the only
    // box straggles, so the master must pull the workers' data directly.
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &cluster,
        DeploymentConfig {
            straggler: Some(StragglerPolicy {
                threshold: Duration::from_millis(150),
                repeat_limit: 1000,
            }),
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);
    // Everything the box emits is delayed far beyond the master's 600 ms
    // effective threshold.
    ctl.delay(dep.boxes()[0].addr(), Duration::from_secs(30));

    let pending = master.register_request(1, 2);
    w0.send_partial(1, Bytes::from_static(b"2")).unwrap();
    w1.send_partial(1, Bytes::from_static(b"3")).unwrap();
    let result = pending.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 5);
    assert_eq!(
        result.master_inputs, 2,
        "both partials should arrive via the bypass"
    );
    assert!(w0.stats().redirects.load(Relaxed) >= 1);
    ctl.clear_delay(dep.boxes()[0].addr());
    dep.shutdown();
}

#[test]
#[should_panic(expected = "Keyed")]
fn send_chunk_rejects_keyed_selection() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(1, 0);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &cluster,
        DeploymentConfig {
            selection: TreeSelection::Keyed,
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let w0 = dep.worker_shim(app, 0);
    let _ = w0.send_chunk(1, Bytes::from_static(b"1"), true);
}

#[test]
fn broadcast_flood_never_blocks_the_master() {
    // Workers that do not consume broadcasts must not stall the sender:
    // the delivery mailbox evicts its oldest entries past the 256-message
    // bound (DropOldest) instead of blocking the control reader.
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(1, 0);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);

    for req in 0..400u64 {
        master.broadcast(req, Bytes::from_static(b"tick")).unwrap();
    }
    // Wait until the shim has taken all 400 off the wire (the counter
    // increments before the mailbox applies its drop policy), so draining
    // below races nothing.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while w0.stats().broadcasts_received.load(Relaxed) < 400 {
        assert!(
            std::time::Instant::now() < deadline,
            "only {} of 400 broadcasts arrived",
            w0.stats().broadcasts_received.load(Relaxed)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // One ordered control connection + DropOldest(256) means exactly the
    // newest 256 broadcasts (requests 144..400) remain, in order.
    let (first, payload) = w0.recv_broadcast(Duration::from_secs(1)).unwrap();
    assert_eq!(first, 144, "the 144 oldest broadcasts must be evicted");
    assert_eq!(payload.as_ref(), b"tick");
    let mut delivered = 1u64;
    let mut expect = 145u64;
    while let Ok((req, _)) = w0.recv_broadcast(Duration::from_millis(50)) {
        assert_eq!(req, expect, "delivery must preserve arrival order");
        expect += 1;
        delivered += 1;
    }
    assert_eq!(delivered, 256, "exactly the mailbox bound is deliverable");
    dep.shutdown();
}

#[test]
fn wait_after_shutdown_reports_shutdown() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 0);
    let specs = build_tree_specs(&cluster);
    let master = MasterShim::start(
        transport,
        netagg_core::protocol::AppId(0),
        sum_agg(),
        &specs,
        MasterShimConfig::default(),
    )
    .unwrap();
    let pending = master.register_request(1, 2);
    master.shutdown();
    assert!(matches!(
        pending.wait(Duration::from_secs(1)),
        Err(AggError::Shutdown)
    ));
}
