//! End-to-end integration tests of the NetAgg platform: deployments over
//! the in-process transport exercising multi-rack trees, multiple trees,
//! keyed selection, scale-out, failure recovery and straggler bypass.

use bytes::Bytes;
use netagg_core::failure::DetectorConfig;
use netagg_core::prelude::*;
use netagg_core::runtime::DeploymentConfig;
use netagg_core::shim::TreeSelection;
use netagg_core::straggler::StragglerPolicy;
use netagg_net::{ChannelTransport, FaultController, FaultTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

/// Sum-of-integers aggregation over a trivial text encoding.
struct Sum;
impl AggregationFunction for Sum {
    type Item = i64;
    fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
        std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| AggError::Corrupt("not an int".into()))
    }
    fn serialize(&self, v: &i64) -> Bytes {
        Bytes::from(v.to_string())
    }
    fn aggregate(&self, items: Vec<i64>) -> i64 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i64 {
        0
    }
}

fn sum_agg() -> Arc<dyn DynAggregator> {
    Arc::new(AggWrapper::new(Sum))
}

fn parse(b: &Bytes) -> i64 {
    std::str::from_utf8(b).unwrap().parse().unwrap()
}

#[test]
fn two_rack_deployment_aggregates_across_boxes() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 4, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();

    for req in 0..5u64 {
        let pending = master.register_request(req, workers.len());
        for (i, w) in workers.iter().enumerate() {
            w.send_partial(req, Bytes::from((i as i64 + 1).to_string()))
                .unwrap();
        }
        let result = pending.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(parse(&result.combined), (1..=8).sum::<i64>());
        assert_eq!(result.emulated_empty, 7);
        // Cross-rack: the master receives ONE aggregate from the root box.
        assert_eq!(result.master_inputs, 1);
    }
    // The upstream rack box and the root box both processed requests.
    for b in dep.boxes() {
        assert!(
            b.stats()
                .requests_completed
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 5
        );
    }
    dep.shutdown();
}

#[test]
fn plain_mode_without_boxes_still_completes() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(6, 0);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..6).map(|w| dep.worker_shim(app, w)).collect();
    let pending = master.register_request(1, 6);
    for (i, w) in workers.iter().enumerate() {
        w.send_partial(1, Bytes::from((i as i64).to_string()))
            .unwrap();
    }
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), (0..6).sum::<i64>());
    // No aggregation on path: the master merged all six partials itself.
    assert_eq!(result.master_inputs, 6);
    dep.shutdown();
}

#[test]
fn multiple_trees_spread_requests_over_scale_out_boxes() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(4, 2).with_trees(2);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..4).map(|w| dep.worker_shim(app, w)).collect();
    for req in 0..20u64 {
        let pending = master.register_request(req, 4);
        for w in &workers {
            w.send_partial(req, Bytes::from("1")).unwrap();
        }
        let result = pending.wait(Duration::from_secs(5)).unwrap();
        assert_eq!(parse(&result.combined), 4);
    }
    // Both boxes served some requests (request hashing spreads trees).
    let c0 = dep.boxes()[0]
        .stats()
        .requests_completed
        .load(std::sync::atomic::Ordering::Relaxed);
    let c1 = dep.boxes()[1]
        .stats()
        .requests_completed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(c0 + c1, 20);
    assert!(
        c0 > 0 && c1 > 0,
        "both boxes should serve requests: {c0}/{c1}"
    );
    dep.shutdown();
}

#[test]
fn keyed_selection_partitions_chunks_across_trees() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(3, 2).with_trees(2);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &cluster,
        DeploymentConfig {
            selection: TreeSelection::Keyed,
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    let pending = master.register_request(9, 3);
    // Each worker sends 10 chunks of value 1, keyed round-robin.
    for w in &workers {
        for k in 0..10u64 {
            w.send_chunk_keyed(9, k, Bytes::from("1")).unwrap();
        }
        w.finish_request(9).unwrap();
    }
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 30);
    // Two trees deliver two root aggregates.
    assert_eq!(result.master_inputs, 2);
    dep.shutdown();
}

#[test]
fn chunked_streams_are_aggregated() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);
    let pending = master.register_request(3, 2);
    for i in 0..9 {
        w0.send_chunk(3, Bytes::from(i.to_string()), false).unwrap();
    }
    w0.send_chunk(3, Bytes::from("9"), true).unwrap();
    w1.send_partial(3, Bytes::from("100")).unwrap();
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), (0..=9).sum::<i64>() + 100);
    dep.shutdown();
}

#[test]
fn box_failure_recovers_via_detector_and_replay() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    dep.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });

    // Healthy request first.
    let p = master.register_request(1, 3);
    for w in &workers {
        w.send_partial(1, Bytes::from("2")).unwrap();
    }
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 6);

    // Kill the box mid-request: two workers sent, one not yet.
    let p = master.register_request(2, 3);
    workers[0].send_partial(2, Bytes::from("5")).unwrap();
    workers[1].send_partial(2, Bytes::from("7")).unwrap();
    ctl.kill(dep.boxes()[0].addr());
    // Detector fires, redirects workers to the master; their replay buffers
    // resend request 2; worker 2's fresh send goes to the master directly.
    std::thread::sleep(Duration::from_millis(400));
    workers[2].send_partial(2, Bytes::from("11")).unwrap();
    let result = p.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 5 + 7 + 11);

    // Subsequent requests work without the box.
    let p = master.register_request(3, 3);
    for w in &workers {
        w.send_partial(3, Bytes::from("1")).unwrap();
    }
    let result = p.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 3);
    assert_eq!(result.master_inputs, 3, "workers now send directly");
    ctl.revive(dep.boxes()[0].addr());
    dep.shutdown();
}

#[test]
fn straggling_box_is_bypassed_per_request() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    // Two racks: rack 1's box will straggle (its sends are delayed).
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &cluster,
        DeploymentConfig {
            straggler: Some(StragglerPolicy {
                threshold: Duration::from_millis(200),
                repeat_limit: 1000, // don't escalate in this test
            }),
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    // Delay every send from rack 1's box (box id 1) far beyond the
    // threshold: the root box should bypass it and pull the workers' data
    // directly via their replay buffers.
    ctl.delay(dep.boxes()[1].addr(), Duration::from_secs(3));

    let p = master.register_request(1, 4);
    for w in &workers {
        w.send_partial(1, Bytes::from("3")).unwrap();
    }
    let result = p.wait(Duration::from_secs(8)).unwrap();
    assert_eq!(parse(&result.combined), 12);
    let redirects = dep.boxes()[0]
        .stats()
        .straggler_redirects
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        redirects >= 1,
        "root box should have bypassed the straggler"
    );
    ctl.clear_delay(dep.boxes()[1].addr());
    dep.shutdown();
}

#[test]
fn multiple_apps_share_one_deployment() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let sum_app = dep.register_app("sum", sum_agg(), 2.0);

    struct Max;
    impl AggregationFunction for Max {
        type Item = i64;
        fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
            Sum.deserialize(b)
        }
        fn serialize(&self, v: &i64) -> Bytes {
            Sum.serialize(v)
        }
        fn aggregate(&self, items: Vec<i64>) -> i64 {
            items.into_iter().max().unwrap()
        }
        fn empty(&self) -> i64 {
            i64::MIN
        }
    }
    let max_app = dep.register_app("max", Arc::new(AggWrapper::new(Max)), 1.0);
    assert_ne!(sum_app, max_app);

    let sum_master = dep.master_shim(sum_app);
    let max_master = dep.master_shim(max_app);
    let sum_workers: Vec<_> = (0..2).map(|w| dep.worker_shim(sum_app, w)).collect();
    let max_workers: Vec<_> = (0..2).map(|w| dep.worker_shim(max_app, w)).collect();

    let ps = sum_master.register_request(1, 2);
    let pm = max_master.register_request(1, 2);
    for (i, w) in sum_workers.iter().enumerate() {
        w.send_partial(1, Bytes::from((10 * (i + 1)).to_string()))
            .unwrap();
    }
    for (i, w) in max_workers.iter().enumerate() {
        w.send_partial(1, Bytes::from((10 * (i + 1)).to_string()))
            .unwrap();
    }
    assert_eq!(
        parse(&ps.wait(Duration::from_secs(5)).unwrap().combined),
        30
    );
    assert_eq!(
        parse(&pm.wait(Duration::from_secs(5)).unwrap().combined),
        20
    );
    dep.shutdown();
}

#[test]
fn works_over_real_tcp_loopback() {
    let transport: Arc<dyn Transport> = Arc::new(netagg_net::TcpTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    let pending = master.register_request(42, 4);
    for w in &workers {
        w.send_partial(42, Bytes::from("25")).unwrap();
    }
    let result = pending.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 100);
    dep.shutdown();
}

#[test]
fn emulated_worker_results_shape() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    let pending = master.register_request(5, 3);
    for w in &workers {
        w.send_partial(5, Bytes::from("4")).unwrap();
    }
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    let per_worker = result.emulated_worker_results();
    assert_eq!(per_worker.len(), 3);
    assert_eq!(parse(&per_worker[0]), 12);
    // Empties carry the identity, so re-aggregating the emulated vector
    // still yields the correct total (commutativity requirement).
    let total: i64 = per_worker.iter().map(parse).sum();
    assert_eq!(total, 12);
    dep.shutdown();
}

#[test]
fn subset_requests_complete_with_request_meta() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();

    // Only workers 0 and 3 participate (one per rack).
    let pending = master.register_request_subset(11, &[0, 3]);
    workers[0].send_partial(11, Bytes::from("5")).unwrap();
    workers[3].send_partial(11, Bytes::from("9")).unwrap();
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 14);
    assert_eq!(result.emulated_empty, 1);

    // A subset confined to one rack: the other rack's box is not involved.
    let pending = master.register_request_subset(12, &[2, 3]);
    workers[2].send_partial(12, Bytes::from("1")).unwrap();
    workers[3].send_partial(12, Bytes::from("2")).unwrap();
    let result = pending.wait(Duration::from_secs(5)).unwrap();
    assert_eq!(parse(&result.combined), 3);

    // Full-membership requests still work afterwards.
    let pending = master.register_request(13, 4);
    for w in &workers {
        w.send_partial(13, Bytes::from("1")).unwrap();
    }
    assert_eq!(
        parse(&pending.wait(Duration::from_secs(5)).unwrap().combined),
        4
    );
    dep.shutdown();
}

#[test]
fn broadcast_reaches_every_worker_once() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    // Give worker-shim listeners a moment to come up before broadcasting.
    std::thread::sleep(Duration::from_millis(50));

    master
        .broadcast(5, Bytes::from_static(b"iteration-0-parameters"))
        .unwrap();
    for w in &workers {
        let (req, payload) = w.recv_broadcast(Duration::from_secs(5)).unwrap();
        assert_eq!(req, 5);
        assert_eq!(payload.as_ref(), b"iteration-0-parameters");
        // Exactly once: no second delivery pending.
        assert!(w.recv_broadcast(Duration::from_millis(100)).is_err());
    }
    dep.shutdown();
}

#[test]
fn broadcast_without_boxes_goes_direct() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(3, 0);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();
    std::thread::sleep(Duration::from_millis(50));
    master.broadcast(9, Bytes::from_static(b"direct")).unwrap();
    for w in &workers {
        let (req, payload) = w.recv_broadcast(Duration::from_secs(5)).unwrap();
        assert_eq!(req, 9);
        assert_eq!(payload.as_ref(), b"direct");
    }
    dep.shutdown();
}

#[test]
fn broadcast_then_aggregate_round_trip() {
    // The iterative-computation pattern the paper's Section 5 sketches:
    // broadcast parameters down, aggregate gradients up.
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut value = 1i64;
    for iter in 0..3u64 {
        master
            .broadcast(iter, Bytes::from(value.to_string()))
            .unwrap();
        let pending = master.register_request(iter, workers.len());
        for w in &workers {
            let (req, payload) = w.recv_broadcast(Duration::from_secs(5)).unwrap();
            assert_eq!(req, iter);
            let received: i64 = std::str::from_utf8(&payload).unwrap().parse().unwrap();
            assert_eq!(received, value, "workers see the broadcast value");
            // Each worker "computes" on the broadcast value.
            w.send_partial(iter, Bytes::from((received + 1).to_string()))
                .unwrap();
        }
        let result = pending.wait(Duration::from_secs(5)).unwrap();
        let expected = workers.len() as i64 * (value + 1);
        value = parse(&result.combined);
        assert_eq!(value, expected, "iteration {iter}");
    }
    dep.shutdown();
}

#[test]
fn streaming_flush_pipelines_partial_aggregates() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch_with(
        transport,
        &cluster,
        DeploymentConfig {
            flush_bytes: Some(1), // flush whenever the tree quiesces
            ..DeploymentConfig::default()
        },
    )
    .unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);

    let pending = master.register_request(1, 2);
    // Stream 50 chunks slowly enough that the flusher fires mid-request
    // (7-byte payloads so two buffered chunks exceed the threshold).
    for i in 0..50 {
        w0.send_chunk(1, Bytes::from("0000001"), false).unwrap();
        if i % 5 == 0 {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    w0.send_chunk(1, Bytes::from("0000001"), true).unwrap();
    w1.send_partial(1, Bytes::from("100")).unwrap();
    let result = pending.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 51 + 100);
    // The box must have streamed at least one intermediate chunk before
    // the final aggregate.
    assert!(
        result.master_inputs >= 2,
        "expected streamed chunks, master saw {}",
        result.master_inputs
    );
    dep.shutdown();
}

#[test]
fn leaf_box_failure_recovers_through_parent_box() {
    // Two racks: rack 1's box (a leaf in the tree) dies; the ROOT box's
    // detector must re-point rack 1's workers at itself.
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::multi_rack(2, 2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = cluster
        .all_workers()
        .into_iter()
        .map(|w| dep.worker_shim(app, w))
        .collect();
    dep.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });

    // Sanity request through both boxes.
    let p = master.register_request(1, 4);
    for w in &workers {
        w.send_partial(1, Bytes::from("1")).unwrap();
    }
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 4);

    // Kill the leaf (rack 1) box. Box 0 is the root in rack 0.
    let leaf_box = dep.boxes()[1].addr();
    ctl.kill(leaf_box);
    std::thread::sleep(Duration::from_millis(400)); // detector fires

    // Rack 1's workers (2 and 3) should now be re-pointed at the root box.
    let root_addr = dep.boxes()[0].addr();
    assert_eq!(
        workers[2].assignment(netagg_core::protocol::TreeId(0)),
        Some(root_addr),
        "worker 2 re-pointed at the root box"
    );

    // A fresh request completes without the leaf box.
    let p = master.register_request(2, 4);
    for w in &workers {
        w.send_partial(2, Bytes::from("3")).unwrap();
    }
    let result = p.wait(Duration::from_secs(10)).unwrap();
    assert_eq!(parse(&result.combined), 12);
    // The master still sees exactly one root aggregate.
    assert_eq!(result.master_inputs, 1);
    ctl.revive(leaf_box);
    dep.shutdown();
}

#[test]
fn box_snapshot_reflects_activity() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(3, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let workers: Vec<_> = (0..3).map(|w| dep.worker_shim(app, w)).collect();

    let before = dep.boxes()[0].snapshot();
    assert_eq!(before.requests_completed, 0);
    assert_eq!(before.active_requests, 0);

    let p = master.register_request(1, 3);
    for w in &workers {
        w.send_partial(1, Bytes::from("2")).unwrap();
    }
    p.wait(Duration::from_secs(5)).unwrap();

    // The box's bookkeeping trails the master's completion by a moment
    // (the scheduler stamps per-app accounting after the task whose own
    // sends already delivered the aggregate), so poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let after = loop {
        let s = dep.boxes()[0].snapshot();
        let settled = s.requests_completed == 1
            && s.active_requests == 0
            && s.apps.first().is_some_and(|a| a.tasks_run > 0);
        if settled || std::time::Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(after.box_id, 0);
    assert_eq!(after.requests_completed, 1);
    assert_eq!(
        after.active_requests, 0,
        "state cleaned up after completion"
    );
    assert!(after.bytes_in >= 3);
    assert!(after.messages_in >= 3);
    assert_eq!(after.apps.len(), 1);
    assert!(after.apps[0].tasks_run > 0);
    dep.shutdown();
}

#[test]
fn error_paths_are_reported() {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport.clone(), &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);

    // Waiting on a request no worker answers times out cleanly.
    let p = master.register_request(1, 2);
    w0.send_partial(1, Bytes::from("1")).unwrap();
    assert!(matches!(
        p.wait(Duration::from_millis(300)),
        Err(AggError::Timeout)
    ));

    // Data for an application the boxes never saw is dropped, not crashed.
    let ghost = netagg_core::protocol::AppId(99);
    let msg = netagg_core::protocol::Message::Data {
        app: ghost,
        request: netagg_core::protocol::RequestId(7),
        tree: netagg_core::protocol::TreeId(0),
        source: netagg_core::protocol::SourceId::Worker(0),
        seq: 1,
        last: true,
        ctx: netagg_obs::trace::TraceCtx::NONE,
        sent_ns: 0,
        payload: Bytes::from_static(b"5"),
    };
    let mut conn = transport.connect(9_999, dep.boxes()[0].addr()).unwrap();
    conn.send(msg.encode()).unwrap();
    // And garbage frames are ignored.
    conn.send(Bytes::from_static(b"\xff\xff\xff garbage"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The box is still healthy: a real request completes.
    let w1 = dep.worker_shim(app, 1);
    let p = master.register_request(2, 2);
    w0.send_partial(2, Bytes::from("2")).unwrap();
    w1.send_partial(2, Bytes::from("3")).unwrap();
    assert_eq!(parse(&p.wait(Duration::from_secs(5)).unwrap().combined), 5);
    dep.shutdown();
}

#[test]
fn worker_stats_count_sends_and_resends() {
    let ctl = FaultController::new();
    let transport: Arc<dyn Transport> =
        Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
    let cluster = ClusterSpec::single_rack(2, 1);
    let mut dep = NetAggDeployment::launch(transport, &cluster).unwrap();
    let app = dep.register_app("sum", sum_agg(), 1.0);
    let master = dep.master_shim(app);
    let w0 = dep.worker_shim(app, 0);
    let w1 = dep.worker_shim(app, 1);
    dep.enable_failure_detection(DetectorConfig {
        interval: Duration::from_millis(30),
        timeout: Duration::from_millis(60),
        misses: 2,
    });

    let p = master.register_request(1, 2);
    w0.send_partial(1, Bytes::from("4")).unwrap();
    w1.send_partial(1, Bytes::from("6")).unwrap();
    p.wait(Duration::from_secs(5)).unwrap();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(w0.stats().chunks_sent.load(Relaxed), 1);
    assert_eq!(w0.stats().bytes_sent.load(Relaxed), 1);
    assert_eq!(w0.stats().chunks_resent.load(Relaxed), 0);

    // Kill the box: the redirect triggers a resend from the replay buffer.
    ctl.kill(dep.boxes()[0].addr());
    std::thread::sleep(Duration::from_millis(400));
    assert!(w0.stats().redirects.load(Relaxed) >= 1);
    assert!(w0.stats().chunks_resent.load(Relaxed) >= 1);
    ctl.revive(dep.boxes()[0].addr());
    dep.shutdown();
}
