//! Property-based tests of the platform's core invariants: the local
//! aggregation tree computes order-independent reductions regardless of
//! arrival order, fan-in and thread count; the protocol codec roundtrips
//! arbitrary payloads; tree-spec construction conserves workers.

use bytes::Bytes;
use netagg_core::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use netagg_core::aggbox::tree::LocalAggTree;
use netagg_core::protocol::{AppId, Message, RequestId, SourceId, TreeId};
use netagg_core::tree::{build_tree_specs, ClusterSpec, RackSpec};
use netagg_core::{AggError, AggWrapper, AggregationFunction};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

struct Sum;
impl AggregationFunction for Sum {
    type Item = i128;
    fn deserialize(&self, b: &Bytes) -> Result<i128, AggError> {
        if b.len() != 16 {
            return Err(AggError::Corrupt("len".into()));
        }
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(i128::from_be_bytes(a))
    }
    fn serialize(&self, v: &i128) -> Bytes {
        Bytes::copy_from_slice(&v.to_be_bytes())
    }
    fn aggregate(&self, items: Vec<i128>) -> i128 {
        items.into_iter().sum()
    }
    fn empty(&self) -> i128 {
        0
    }
}

fn scheduler(threads: usize) -> Arc<TaskScheduler> {
    let s = TaskScheduler::new(SchedulerConfig {
        threads,
        adaptive: true,
        ema_alpha: 0.2,
        seed: 1,
    });
    s.register_app(AppId(1), 1.0);
    Arc::new(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The local tree's result equals the plain sum for any input set,
    /// fan-in and thread count (associativity/commutativity in practice).
    #[test]
    fn local_tree_sums_any_stream(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 0..300),
        fanin in 2usize..16,
        threads in 1usize..8,
    ) {
        let sched = scheduler(threads);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), fanin);
        for v in &values {
            tree.push(&sched, AppId(1), Sum.serialize(&(*v as i128)));
        }
        tree.end_input(&sched, AppId(1));
        let out = tree.wait_complete(Duration::from_secs(30)).unwrap();
        let got = Sum.deserialize(&out).unwrap();
        let want: i128 = values.iter().map(|v| *v as i128).sum();
        prop_assert_eq!(got, want);
    }

    /// Protocol messages roundtrip for arbitrary payload bytes and ids.
    #[test]
    fn protocol_data_roundtrips(
        app in any::<u16>(),
        request in any::<u64>(),
        tree in any::<u32>(),
        worker in any::<u32>(),
        seq in any::<u32>(),
        last in any::<bool>(),
        trace_id in any::<u64>(),
        parent_span_id in any::<u64>(),
        sent_ns in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let m = Message::Data {
            app: AppId(app),
            request: RequestId(request),
            tree: TreeId(tree),
            source: SourceId::Worker(worker),
            seq,
            last,
            ctx: netagg_obs::trace::TraceCtx { trace_id, parent_span_id },
            sent_ns,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    /// Random byte strings never panic the decoder (they error or decode).
    #[test]
    fn protocol_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(Bytes::from(bytes));
    }

    /// Tree-spec construction assigns every worker exactly once and wires
    /// parents consistently, for arbitrary rack shapes.
    #[test]
    fn tree_specs_conserve_workers(
        rack_sizes in proptest::collection::vec((1u32..8, 0u32..3), 1..5),
        trees in 1u32..4,
        master_rack_sel in any::<u32>(),
    ) {
        let mut next = 0;
        let racks: Vec<RackSpec> = rack_sizes
            .iter()
            .map(|&(workers, boxes)| {
                let r = RackSpec {
                    workers: (next..next + workers).collect(),
                    boxes,
                };
                next += workers;
                r
            })
            .collect();
        let cluster = ClusterSpec {
            master_rack: (master_rack_sel as usize) % racks.len(),
            racks,
            num_trees: trees,
        };
        let specs = build_tree_specs(&cluster);
        prop_assert_eq!(specs.len(), trees as usize);
        let all = cluster.all_workers();
        for spec in &specs {
            // Every worker is either assigned to a box or direct.
            let mut covered: Vec<u32> = spec
                .worker_assignment
                .keys()
                .copied()
                .chain(spec.direct_workers.iter().copied())
                .collect();
            covered.sort_unstable();
            prop_assert_eq!(&covered, &all);
            // Every assigned box exists in the spec and every box chains to
            // the master.
            for (&w, &b) in &spec.worker_assignment {
                let tb = spec.tree_box(b);
                prop_assert!(tb.is_some(), "worker {} assigned to missing box {}", w, b);
                prop_assert!(tb.unwrap().worker_children.contains(&w));
            }
            for tb in &spec.boxes {
                // Walk to the master with a hop bound (no cycles).
                let mut cur = tb.box_id;
                let mut hops = 0;
                loop {
                    match spec.tree_box(cur).unwrap().parent {
                        netagg_core::tree::Parent::Master => break,
                        netagg_core::tree::Parent::Box(p) => {
                            cur = p;
                            hops += 1;
                            prop_assert!(hops <= spec.boxes.len(), "cycle in tree");
                        }
                    }
                }
                prop_assert!(tb.expected_sources() > 0);
            }
            // Master sees at least one source when there are workers.
            prop_assert!(spec.expected_master_sources() > 0);
        }
    }


    /// The `laws` checkers accept a lawful function for arbitrary payload
    /// sets and split points.
    #[test]
    fn laws_hold_for_sum(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 0..12),
        split in 0usize..12,
    ) {
        use netagg_core::laws;
        let payloads: Vec<Bytes> =
            values.iter().map(|v| Sum.serialize(&(*v as i128))).collect();
        prop_assert!(laws::check_laws(&Sum, &payloads).unwrap().is_none());
        let c = laws::check_merge(&Sum, &payloads, split).unwrap();
        prop_assert!(c.holds());
    }

    /// A deliberately unlawful function — "count the inputs" — is always
    /// flagged: it breaks merge consistency (two halves re-merge to 2) and
    /// the identity law (padding inflates the count).
    #[test]
    fn laws_flag_input_counting(
        values in proptest::collection::vec(-1_000i64..1_000, 2..10),
    ) {
        use netagg_core::laws;
        struct Count;
        impl AggregationFunction for Count {
            type Item = i128;
            fn deserialize(&self, b: &Bytes) -> Result<i128, AggError> {
                Sum.deserialize(b)
            }
            fn serialize(&self, v: &i128) -> Bytes {
                Sum.serialize(v)
            }
            fn aggregate(&self, items: Vec<i128>) -> i128 {
                items.len() as i128
            }
            fn empty(&self) -> i128 {
                0
            }
        }
        let payloads: Vec<Bytes> =
            values.iter().map(|v| Sum.serialize(&(*v as i128))).collect();
        let verdict = laws::check_laws(&Count, &payloads).unwrap();
        let v = verdict.expect("counting must be flagged");
        prop_assert!(
            v.law == "merge consistency" || v.law == "identity",
            "unexpected law: {}", v.law
        );
    }

    /// Scheduler accounting: tasks_run equals submissions once idle.
    #[test]
    fn scheduler_runs_every_task(
        counts in proptest::collection::vec(1usize..40, 1..4),
        threads in 1usize..6,
    ) {
        let sched = TaskScheduler::new(SchedulerConfig {
            threads,
            adaptive: true,
            ema_alpha: 0.3,
            seed: 9,
        });
        for (i, &n) in counts.iter().enumerate() {
            let app = AppId(i as u16);
            sched.register_app(app, 1.0);
            for _ in 0..n {
                sched.submit(app, Box::new(|| {}));
            }
        }
        prop_assert!(sched.wait_idle(Duration::from_secs(30)));
        let cpu = sched.cpu_times();
        for (i, &n) in counts.iter().enumerate() {
            let c = cpu.iter().find(|c| c.app == AppId(i as u16)).unwrap();
            prop_assert_eq!(c.tasks_run, n as u64);
        }
    }
}
