//! The unified lifecycle & backpressure runtime every threaded layer of
//! the platform is built on: cancellation tokens whose `cancel()` wakes
//! blocked receivers immediately, deadline-joining named-thread scopes,
//! and bounded mailboxes with explicit overflow policies.
//!
//! The implementation lives in [`netagg_net::lifecycle`] (the transport
//! layer participates too — `recv_cancellable`/`accept_cancellable` need
//! the same token type); this module re-exports it as the platform-level
//! namespace. See DESIGN.md §9 for the thread inventory and the
//! cancellation invariants.

pub use netagg_net::lifecycle::{
    CancelToken, JoinScope, Mailbox, MailboxRecvError, MailboxRecvTimeoutError, MailboxSendError,
    MailboxTryRecvError, OrderedMutex, OrderedMutexGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard, OverflowPolicy, ScopeError, WakerGuard, DEFAULT_JOIN_DEADLINE,
};
