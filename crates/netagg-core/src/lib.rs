//! NetAgg: a software middlebox platform for application-specific on-path
//! aggregation in data centres (Mai et al., CoNEXT 2014).
//!
//! The platform has two components:
//!
//! * **Agg boxes** ([`aggbox`]) — dedicated nodes attached to switches via
//!   high-bandwidth links. Each executes application-provided aggregation
//!   functions, decomposed into fine-grained *aggregation tasks* arranged
//!   in a local aggregation tree and run to completion by a cooperative
//!   [`aggbox::scheduler::TaskScheduler`] over a fixed thread pool.
//!   Multiple applications share a box through adaptive weighted fair
//!   queuing.
//! * **Shim layers** ([`shim`]) — interposed at edge servers. The worker
//!   shim redirects partial results to the first on-path agg box; the
//!   master shim tracks per-request state, receives the fully aggregated
//!   result and emulates the empty per-worker results the unmodified
//!   master logic expects.
//!
//! Boxes cooperate along per-application *aggregation trees*
//! ([`tree::TreeSpec`]); multiple trees per application exploit path
//! diversity; multiple boxes per switch scale a tier out. Failures of
//! downstream boxes are detected and routed around ([`failure`]), and
//! per-request straggling boxes are bypassed ([`straggler`]).
//!
//! # Quick example
//!
//! ```
//! use bytes::Bytes;
//! use netagg_core::prelude::*;
//! use netagg_net::ChannelTransport;
//! use std::sync::Arc;
//!
//! // A top-1 "max" aggregation: payloads are decimal integers.
//! struct Max;
//! impl AggregationFunction for Max {
//!     type Item = i64;
//!     fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
//!         std::str::from_utf8(b)
//!             .ok()
//!             .and_then(|s| s.parse().ok())
//!             .ok_or_else(|| AggError::Corrupt("not an integer".into()))
//!     }
//!     fn serialize(&self, item: &i64) -> Bytes {
//!         Bytes::from(item.to_string())
//!     }
//!     fn aggregate(&self, items: Vec<i64>) -> i64 {
//!         items.into_iter().max().unwrap_or(i64::MIN)
//!     }
//!     fn empty(&self) -> i64 {
//!         i64::MIN
//!     }
//! }
//!
//! let transport = Arc::new(ChannelTransport::new());
//! let cluster = ClusterSpec::single_rack(/*workers=*/4, /*boxes=*/1);
//! let mut deployment = NetAggDeployment::launch(transport, &cluster).unwrap();
//! let app = deployment.register_app("max", Arc::new(AggWrapper::new(Max)), 1.0);
//!
//! let master = deployment.master_shim(app);
//! let workers: Vec<_> = (0..4).map(|w| deployment.worker_shim(app, w)).collect();
//!
//! let pending = master.register_request(7, 4);
//! for (i, w) in workers.iter().enumerate() {
//!     w.send_partial(7, Bytes::from((10 * (i + 1)).to_string())).unwrap();
//! }
//! let result = pending.wait(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(result.combined.as_ref(), b"40");
//! // Empty results are emulated for all but one worker.
//! assert_eq!(result.emulated_empty, 3);
//! deployment.shutdown();
//! ```

#![warn(missing_docs)]

pub mod aggbox;
pub mod failure;
pub mod laws;
pub mod ledger;
pub mod lifecycle;
pub mod protocol;
pub mod runtime;
pub mod shim;
pub mod straggler;
pub mod tree;

use bytes::Bytes;
use std::fmt;

/// Errors surfaced by aggregation functions and the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// Payload could not be deserialised.
    Corrupt(String),
    /// The platform failed to deliver or collect results.
    Net(String),
    /// A request timed out (also the straggler signal).
    Timeout,
    /// The deployment is shutting down.
    Shutdown,
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Corrupt(e) => write!(f, "corrupt payload: {e}"),
            AggError::Net(e) => write!(f, "network error: {e}"),
            AggError::Timeout => write!(f, "request timed out"),
            AggError::Shutdown => write!(f, "deployment shut down"),
        }
    }
}

impl std::error::Error for AggError {}

/// Deterministic 64-bit mix (splitmix64 finaliser) used to map requests to
/// aggregation trees; master and worker shims must agree on it.
pub fn protocol_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl From<netagg_net::NetError> for AggError {
    fn from(e: netagg_net::NetError) -> Self {
        match e {
            netagg_net::NetError::Timeout => AggError::Timeout,
            netagg_net::NetError::Cancelled => AggError::Shutdown,
            other => AggError::Net(other.to_string()),
        }
    }
}

/// An application-provided aggregation function with its serialiser, the
/// typed interface the paper's *aggregation wrapper* adapts (Section 3.2.1).
///
/// The function must be **associative and commutative**: the platform
/// aggregates partial results in arbitrary order and grouping.
pub trait AggregationFunction: Send + Sync + 'static {
    /// The deserialised partial-result type the function merges.
    type Item: Send + 'static;

    /// Decode one partial result (or intermediate aggregate) from its wire
    /// form.
    fn deserialize(&self, payload: &Bytes) -> Result<Self::Item, AggError>;

    /// Encode an item to its wire form.
    fn serialize(&self, item: &Self::Item) -> Bytes;

    /// Merge a batch of items into one. `items` is never empty.
    fn aggregate(&self, items: Vec<Self::Item>) -> Self::Item;

    /// The identity element, used by the master shim to emulate the empty
    /// partial results of workers whose data was aggregated on-path.
    fn empty(&self) -> Self::Item;
}

/// Object-safe aggregation over serialised payloads: what an agg box
/// actually executes. [`AggWrapper`] adapts any [`AggregationFunction`].
pub trait DynAggregator: Send + Sync {
    /// Deserialise, aggregate and re-serialise a batch of payloads.
    fn aggregate_serialized(&self, inputs: Vec<Bytes>) -> Result<Bytes, AggError>;

    /// Serialised identity element.
    fn empty_serialized(&self) -> Bytes;
}

/// The paper's *aggregation wrapper*: adapts a typed
/// [`AggregationFunction`] to the erased [`DynAggregator`] interface agg
/// boxes schedule.
pub struct AggWrapper<F: AggregationFunction> {
    func: F,
}

impl<F: AggregationFunction> AggWrapper<F> {
    /// Wrap a typed aggregation function.
    pub fn new(func: F) -> Self {
        Self { func }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.func
    }
}

impl<F: AggregationFunction> DynAggregator for AggWrapper<F> {
    fn aggregate_serialized(&self, inputs: Vec<Bytes>) -> Result<Bytes, AggError> {
        let mut items = Vec::with_capacity(inputs.len());
        for b in &inputs {
            items.push(self.func.deserialize(b)?);
        }
        if items.is_empty() {
            return Ok(self.func.serialize(&self.func.empty()));
        }
        let out = self.func.aggregate(items);
        Ok(self.func.serialize(&out))
    }

    fn empty_serialized(&self) -> Bytes {
        self.func.serialize(&self.func.empty())
    }
}

/// Convenience re-exports for applications integrating with NetAgg.
pub mod prelude {
    pub use crate::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
    pub use crate::protocol::{AppId, RequestId, TreeId};
    pub use crate::runtime::NetAggDeployment;
    pub use crate::shim::{AggregatedResult, MasterShim, WorkerShim};
    pub use crate::tree::{ClusterSpec, RackSpec, TreeSpec};
    pub use crate::{AggError, AggWrapper, AggregationFunction, DynAggregator};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl AggregationFunction for Sum {
        type Item = u64;
        fn deserialize(&self, b: &Bytes) -> Result<u64, AggError> {
            if b.len() != 8 {
                return Err(AggError::Corrupt("want 8 bytes".into()));
            }
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            Ok(u64::from_be_bytes(a))
        }
        fn serialize(&self, item: &u64) -> Bytes {
            Bytes::copy_from_slice(&item.to_be_bytes())
        }
        fn aggregate(&self, items: Vec<u64>) -> u64 {
            items.into_iter().sum()
        }
        fn empty(&self) -> u64 {
            0
        }
    }

    #[test]
    fn wrapper_roundtrips_and_aggregates() {
        let w = AggWrapper::new(Sum);
        let ins: Vec<Bytes> = [1u64, 2, 3]
            .iter()
            .map(|v| Bytes::copy_from_slice(&v.to_be_bytes()))
            .collect();
        let out = w.aggregate_serialized(ins).unwrap();
        assert_eq!(Sum.deserialize(&out).unwrap(), 6);
    }

    #[test]
    fn wrapper_rejects_corrupt_input() {
        let w = AggWrapper::new(Sum);
        let r = w.aggregate_serialized(vec![Bytes::from_static(b"bad")]);
        assert!(matches!(r, Err(AggError::Corrupt(_))));
    }

    #[test]
    fn wrapper_empty_input_yields_identity() {
        let w = AggWrapper::new(Sum);
        let out = w.aggregate_serialized(vec![]).unwrap();
        assert_eq!(Sum.deserialize(&out).unwrap(), 0);
        assert_eq!(w.empty_serialized(), Sum.serialize(&0));
    }
}
