//! Deployment wiring: launch agg boxes over a transport, register
//! applications, hand out shims, and (optionally) arm failure detection.

use crate::aggbox::runtime::{ChildBoxInfo, RouteInstall};
use crate::aggbox::scheduler::SchedulerConfig;
use crate::aggbox::{AggBox, AggBoxConfig};
use crate::failure::{DetectorConfig, FailureDetector, WatchSet, WatchedChild};
use crate::protocol::AppId;
use crate::shim::{MasterShim, MasterShimConfig, TreeSelection, WorkerShim};
use crate::straggler::StragglerPolicy;
use crate::tree::{build_tree_specs, master_addr, ClusterSpec, Parent, TreeSpec};
use crate::{AggError, DynAggregator};
use netagg_net::{MeteredTransport, Transport};
use netagg_obs::{MetricsRegistry, MetricsSnapshot};
use std::collections::HashMap;
use std::sync::Arc;

/// Platform-wide options.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Scheduler options applied to every box.
    pub scheduler: SchedulerConfig,
    /// Local aggregation tree fan-in on the boxes.
    pub fanin: usize,
    /// Straggler bypass policy for boxes and master shims; `None` disables.
    pub straggler: Option<StragglerPolicy>,
    /// Tree selection used by the shims.
    pub selection: TreeSelection,
    /// Stream partial aggregates downstream once a request buffers this
    /// many bytes at a box (`None` = emit only final aggregates).
    pub flush_bytes: Option<usize>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            fanin: 8,
            straggler: None,
            selection: TreeSelection::PerRequest,
            flush_bytes: None,
        }
    }
}

struct AppRecord {
    id: AppId,
    #[allow(dead_code)]
    name: String,
    agg: Arc<dyn DynAggregator>,
}

/// A running NetAgg deployment: the boxes, tree specs and registered apps.
pub struct NetAggDeployment {
    transport: Arc<dyn Transport>,
    cfg: DeploymentConfig,
    specs: Vec<TreeSpec>,
    boxes: Vec<Arc<AggBox>>,
    apps: Vec<AppRecord>,
    master_shims: HashMap<AppId, Arc<MasterShim>>,
    detectors: Vec<FailureDetector>,
    next_app: u16,
    obs: MetricsRegistry,
}

impl NetAggDeployment {
    /// Launch the agg boxes of a cluster with default options.
    pub fn launch(transport: Arc<dyn Transport>, cluster: &ClusterSpec) -> Result<Self, AggError> {
        Self::launch_with(transport, cluster, DeploymentConfig::default())
    }

    /// Launch with explicit options, publishing metrics into a fresh
    /// deployment-private registry (see [`NetAggDeployment::snapshot`]).
    pub fn launch_with(
        transport: Arc<dyn Transport>,
        cluster: &ClusterSpec,
        cfg: DeploymentConfig,
    ) -> Result<Self, AggError> {
        Self::launch_with_obs(transport, cluster, cfg, MetricsRegistry::new())
    }

    /// Launch with explicit options and an externally owned metrics
    /// registry, so several deployments (or a surrounding harness) can
    /// share one registry and one snapshot.
    pub fn launch_with_obs(
        transport: Arc<dyn Transport>,
        cluster: &ClusterSpec,
        cfg: DeploymentConfig,
        obs: MetricsRegistry,
    ) -> Result<Self, AggError> {
        let specs = build_tree_specs(cluster);
        // Hand the registry to the transport itself first (the TCP
        // reactor publishes `net.tcp.*` and counts its shard threads in
        // `runtime.threads_active` — DESIGN.md §12), then wrap it in a
        // metered decorator so `net.*` traffic counters come for free.
        transport.attach_obs(&obs);
        let transport: Arc<dyn Transport> = Arc::new(MeteredTransport::new(transport, obs.clone()));
        let mut boxes = Vec::new();
        for b in 0..cluster.total_boxes() {
            let mut bc = AggBoxConfig::new(b, crate::tree::box_addr(b));
            bc.scheduler = cfg.scheduler.clone();
            bc.fanin = cfg.fanin;
            if let Some(p) = cfg.straggler {
                bc.straggler_threshold = Some(p.threshold);
                bc.straggler_repeat_limit = p.repeat_limit;
            }
            bc.flush_bytes = cfg.flush_bytes;
            bc.obs = Some(obs.clone());
            boxes.push(AggBox::start(transport.clone(), bc)?);
        }
        Ok(Self {
            transport,
            cfg,
            specs,
            boxes,
            apps: Vec::new(),
            master_shims: HashMap::new(),
            detectors: Vec::new(),
            next_app: 0,
            obs,
        })
    }

    /// Register an application: installs its aggregation function and the
    /// per-tree routes on every box. Returns the application id.
    pub fn register_app(&mut self, name: &str, agg: Arc<dyn DynAggregator>, share: f64) -> AppId {
        let app = AppId(self.next_app);
        self.next_app += 1;
        for b in &self.boxes {
            b.register_app(app, agg.clone(), share);
        }
        for spec in &self.specs {
            for tb in &spec.boxes {
                let Some(aggbox) = self.boxes.iter().find(|b| b.box_id() == tb.box_id) else {
                    continue;
                };
                let child_boxes: HashMap<u32, ChildBoxInfo> = tb
                    .box_children
                    .iter()
                    .map(|c| (*c, ChildBoxInfo::from_spec(spec, app, *c)))
                    .collect();
                aggbox.install_route(RouteInstall {
                    app,
                    tree: spec.tree,
                    parent: spec.parent_addr(app, tb.box_id),
                    owed: spec.children_sources(tb.box_id),
                    child_boxes,
                    children_addrs: spec.children_addrs(app, tb.box_id),
                });
            }
        }
        self.apps.push(AppRecord {
            id: app,
            name: name.to_string(),
            agg,
        });
        app
    }

    /// The master shim of an application (started on first use).
    pub fn master_shim(&mut self, app: AppId) -> Arc<MasterShim> {
        if let Some(s) = self.master_shims.get(&app) {
            return s.clone();
        }
        let agg = self
            .apps
            .iter()
            .find(|a| a.id == app)
            .expect("app registered")
            .agg
            .clone();
        let cfg = MasterShimConfig {
            selection: self.cfg.selection,
            straggler_threshold: self.cfg.straggler.map(|p| p.threshold),
            obs: Some(self.obs.clone()),
            ..MasterShimConfig::default()
        };
        let shim = MasterShim::start(self.transport.clone(), app, agg, &self.specs, cfg)
            .expect("start master shim");
        self.master_shims.insert(app, shim.clone());
        shim
    }

    /// A worker shim for one application worker.
    pub fn worker_shim(&mut self, app: AppId, worker: u32) -> Arc<WorkerShim> {
        WorkerShim::start_with_obs(
            self.transport.clone(),
            app,
            worker,
            &self.specs,
            self.cfg.selection,
            Some(self.obs.clone()),
        )
        .expect("start worker shim")
    }

    /// Arm failure detection: every parent of boxes (master shims and
    /// boxes) probes its child boxes and re-routes around failures. Call
    /// after registering all applications and creating master shims.
    pub fn enable_failure_detection(&mut self, cfg: DetectorConfig) {
        let apps: Vec<AppId> = self.apps.iter().map(|a| a.id).collect();
        // Master-side detectors (watch root boxes).
        for (&app, shim) in &self.master_shims {
            let watch = WatchSet::default();
            for spec in &self.specs {
                for tb in spec.boxes.iter().filter(|b| b.parent == Parent::Master) {
                    watch.add(WatchedChild {
                        box_id: tb.box_id,
                        addr: tb.addr,
                        children_addrs: spec.children_addrs(app, tb.box_id),
                        apps_trees: vec![(app, spec.tree)],
                    });
                }
            }
            if watch.is_empty() {
                continue;
            }
            let shim2 = shim.clone();
            let specs = self.specs.clone();
            let adopt = watch.clone();
            self.detectors.push(FailureDetector::start_watching(
                self.transport.clone(),
                master_addr(app),
                master_addr(app),
                watch,
                cfg.clone(),
                Box::new(move |box_id| {
                    for spec in &specs {
                        let Some(tb) = spec.tree_box(box_id) else {
                            continue;
                        };
                        shim2.on_child_box_failed(spec.tree, box_id);
                        // Adopt the failed box's child boxes: the master
                        // is their parent now, so it must watch them too
                        // (double-kill chains).
                        for c in &tb.box_children {
                            if let Some(cb) = spec.tree_box(*c) {
                                adopt.add(WatchedChild {
                                    box_id: cb.box_id,
                                    addr: cb.addr,
                                    children_addrs: spec.children_addrs(app, cb.box_id),
                                    apps_trees: vec![(app, spec.tree)],
                                });
                            }
                        }
                    }
                }),
                Some(self.obs.clone()),
            ));
        }
        // Box-side detectors (watch child boxes). Box liveness is
        // app-independent, so each box runs one detector covering all apps
        // (the watch set merges per-app entries by box id).
        for aggbox in &self.boxes {
            let watch = WatchSet::default();
            for spec in &self.specs {
                let Some(tb) = spec.tree_box(aggbox.box_id()) else {
                    continue;
                };
                for c in &tb.box_children {
                    let cb = spec.tree_box(*c).expect("child box in spec");
                    // A redirect must be issued per app; children_addrs are
                    // per app for workers.
                    for &app in &apps {
                        watch.add(WatchedChild {
                            box_id: cb.box_id,
                            addr: cb.addr,
                            children_addrs: spec.children_addrs(app, cb.box_id),
                            apps_trees: vec![(app, spec.tree)],
                        });
                    }
                }
            }
            if watch.is_empty() {
                continue;
            }
            let owner = aggbox.clone();
            let specs = self.specs.clone();
            let apps2 = apps.clone();
            let adopt = watch.clone();
            self.detectors.push(FailureDetector::start_watching(
                self.transport.clone(),
                aggbox.addr(),
                aggbox.addr(),
                watch,
                cfg.clone(),
                Box::new(move |box_id| {
                    for spec in &specs {
                        let Some(tb) = spec.tree_box(box_id) else {
                            continue;
                        };
                        for &app in &apps2 {
                            owner.on_child_box_failed(app, spec.tree, box_id);
                        }
                        // Adopt the failed box's own child boxes so a
                        // chained failure below it is detected as well.
                        for c in &tb.box_children {
                            if let Some(cb) = spec.tree_box(*c) {
                                for &app in &apps2 {
                                    adopt.add(WatchedChild {
                                        box_id: cb.box_id,
                                        addr: cb.addr,
                                        children_addrs: spec.children_addrs(app, cb.box_id),
                                        apps_trees: vec![(app, spec.tree)],
                                    });
                                }
                            }
                        }
                    }
                }),
                Some(self.obs.clone()),
            ));
        }
    }

    /// The running agg boxes, indexed by global box id.
    pub fn boxes(&self) -> &[Arc<AggBox>] {
        &self.boxes
    }

    /// The aggregation-tree specs derived from the cluster.
    pub fn tree_specs(&self) -> &[TreeSpec] {
        &self.specs
    }

    /// The transport the deployment runs over (metered: all traffic it
    /// carries shows up in [`NetAggDeployment::snapshot`]).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The deployment-wide metrics registry. Boxes, shims, detectors and
    /// the transport all publish into it; see DESIGN.md ("Observability")
    /// for the metric names.
    pub fn obs(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// A point-in-time snapshot of every metric the deployment publishes
    /// (serialisable with [`MetricsSnapshot::to_json`] /
    /// [`MetricsSnapshot::to_text`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Stop detectors, shims and boxes.
    pub fn shutdown(&mut self) {
        for mut d in self.detectors.drain(..) {
            d.stop();
        }
        for (_, s) in self.master_shims.drain() {
            s.shutdown();
        }
        for b in &self.boxes {
            b.shutdown();
        }
    }
}

impl Drop for NetAggDeployment {
    fn drop(&mut self) {
        self.shutdown();
    }
}
