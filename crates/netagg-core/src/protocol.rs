//! Wire protocol between shim layers and agg boxes.
//!
//! Messages are hand-encoded binary frames (the paper uses an efficient
//! binary protocol over KryoNet rather than HTTP/XML). Every data message
//! carries the application, request and tree identifiers so one box can
//! multiplex many applications and trees over shared connections.

use bytes::{BufMut, Bytes, BytesMut};
use netagg_net::wire;
use netagg_net::NetError;
use netagg_obs::trace::TraceCtx;

/// Identifies an application deployed on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

/// Identifies one request (query, job) of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Identifies one aggregation tree of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeId(pub u32);

/// Logical identity of a data source within a tree: a worker or a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceId {
    /// A worker shim, by worker id.
    Worker(u32),
    /// An agg box, by global box id.
    Box(u32),
}

impl SourceId {
    fn encode(&self, dst: &mut BytesMut) {
        match self {
            SourceId::Worker(w) => {
                dst.put_u8(0);
                dst.put_u32(*w);
            }
            SourceId::Box(b) => {
                dst.put_u8(1);
                dst.put_u32(*b);
            }
        }
    }

    fn decode(src: &mut Bytes) -> Result<Self, NetError> {
        match wire::get_u8(src)? {
            0 => Ok(SourceId::Worker(wire::get_u32(src)?)),
            1 => Ok(SourceId::Box(wire::get_u32(src)?)),
            t => Err(NetError::Corrupt(format!("bad source tag {t}"))),
        }
    }
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A chunk of (partial or already partially aggregated) result data
    /// moving up a tree. `last` marks the final chunk from this source for
    /// this request.
    Data {
        /// Application the data belongs to.
        app: AppId,
        /// Request the data belongs to.
        request: RequestId,
        /// Aggregation tree carrying the data.
        tree: TreeId,
        /// Who produced this chunk.
        source: SourceId,
        /// Monotonic per-(request, source) chunk number.
        seq: u32,
        /// Final chunk from this source for this request.
        last: bool,
        /// Causal trace context (DESIGN.md §11): `parent_span_id` is the
        /// sender's hop-span id. [`TraceCtx::NONE`] when tracing is off.
        ctx: TraceCtx,
        /// Sender's send time on the `netagg_obs::trace::now_ns` axis
        /// (0 when tracing is off); lets the receiver record the
        /// wire-transfer span.
        sent_ns: u64,
        /// Serialised partial result or intermediate aggregate.
        payload: Bytes,
    },
    /// Master shim -> box: per-request metadata (the paper's shim-layer
    /// request tracking): exactly which sources the box should expect.
    /// Carrying the set (not a count) keeps the receiving box's fan-in
    /// ledger exact under failure re-points (see `netagg_core::ledger`).
    RequestMeta {
        /// Application of the request.
        app: AppId,
        /// The request being described.
        request: RequestId,
        /// Tree the metadata applies to.
        tree: TreeId,
        /// The distinct sources participating in the request at the
        /// receiving box.
        sources: Vec<SourceId>,
        /// Causal trace context flowing *down* the tree: the master's
        /// root-span id, so the box's request span parents correctly.
        ctx: TraceCtx,
    },
    /// Parent -> children of a failed/straggling box: send future data for
    /// `request` (or all requests if `None`... encoded as request with
    /// `all = true`) to `new_parent` instead. `last_seq` is the
    /// highest sequence number per the paper's duplicate suppression.
    Redirect {
        /// Application the redirect applies to.
        app: AppId,
        /// When `false`, applies only to `request`; when `true`, permanent.
        permanent: bool,
        /// Request to redirect (ignored when permanent).
        request: RequestId,
        /// Tree whose assignment changes.
        tree: TreeId,
        /// Transport address future data should go to.
        new_parent: u32,
    },
    /// Liveness probe and its answer (failure detection service).
    Heartbeat {
        /// Address of the prober.
        from: u32,
        /// Correlates the ack with the probe.
        nonce: u64,
    },
    /// Answer to a [`Message::Heartbeat`].
    HeartbeatAck {
        /// Identity of the responder.
        from: u32,
        /// Echo of the probe's nonce.
        nonce: u64,
    },
    /// One-to-many distribution *down* a tree (the multicast extension the
    /// paper sketches in Section 5): the master sends once per root box;
    /// each box replicates to its children; workers receive it.
    Broadcast {
        /// Application the broadcast belongs to.
        app: AppId,
        /// Request (iteration) identifier.
        request: RequestId,
        /// Tree to distribute down.
        tree: TreeId,
        /// The data to replicate to every worker.
        payload: Bytes,
    },
}

const TAG_DATA: u8 = 1;
const TAG_META: u8 = 2;
const TAG_REDIRECT: u8 = 3;
const TAG_HB: u8 = 4;
const TAG_HB_ACK: u8 = 5;
const TAG_BCAST: u8 = 6;

impl Message {
    /// Serialise to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        match self {
            Message::Data {
                app,
                request,
                tree,
                source,
                seq,
                last,
                ctx,
                sent_ns,
                payload,
            } => {
                b.put_u8(TAG_DATA);
                b.put_u16(app.0);
                b.put_u64(request.0);
                b.put_u32(tree.0);
                source.encode(&mut b);
                b.put_u32(*seq);
                b.put_u8(u8::from(*last));
                wire::put_trace(&mut b, ctx);
                b.put_u64(*sent_ns);
                wire::put_bytes(&mut b, payload);
            }
            Message::RequestMeta {
                app,
                request,
                tree,
                sources,
                ctx,
            } => {
                b.put_u8(TAG_META);
                b.put_u16(app.0);
                b.put_u64(request.0);
                b.put_u32(tree.0);
                wire::put_trace(&mut b, ctx);
                b.put_u32(sources.len() as u32);
                for s in sources {
                    s.encode(&mut b);
                }
            }
            Message::Redirect {
                app,
                permanent,
                request,
                tree,
                new_parent,
            } => {
                b.put_u8(TAG_REDIRECT);
                b.put_u16(app.0);
                b.put_u8(u8::from(*permanent));
                b.put_u64(request.0);
                b.put_u32(tree.0);
                b.put_u32(*new_parent);
            }
            Message::Heartbeat { from, nonce } => {
                b.put_u8(TAG_HB);
                b.put_u32(*from);
                b.put_u64(*nonce);
            }
            Message::HeartbeatAck { from, nonce } => {
                b.put_u8(TAG_HB_ACK);
                b.put_u32(*from);
                b.put_u64(*nonce);
            }
            Message::Broadcast {
                app,
                request,
                tree,
                payload,
            } => {
                b.put_u8(TAG_BCAST);
                b.put_u16(app.0);
                b.put_u64(request.0);
                b.put_u32(tree.0);
                wire::put_bytes(&mut b, payload);
            }
        }
        b.freeze()
    }

    /// Parse a frame; errors on unknown tags or truncation.
    pub fn decode(mut src: Bytes) -> Result<Self, NetError> {
        match wire::get_u8(&mut src)? {
            TAG_DATA => {
                let app = get_app(&mut src)?;
                let request = RequestId(wire::get_u64(&mut src)?);
                let tree = TreeId(wire::get_u32(&mut src)?);
                let source = SourceId::decode(&mut src)?;
                let seq = wire::get_u32(&mut src)?;
                let last = wire::get_u8(&mut src)? != 0;
                let ctx = wire::get_trace(&mut src)?;
                let sent_ns = wire::get_u64(&mut src)?;
                let payload = wire::get_bytes(&mut src)?;
                Ok(Message::Data {
                    app,
                    request,
                    tree,
                    source,
                    seq,
                    last,
                    ctx,
                    sent_ns,
                    payload,
                })
            }
            TAG_META => {
                let app = get_app(&mut src)?;
                let request = RequestId(wire::get_u64(&mut src)?);
                let tree = TreeId(wire::get_u32(&mut src)?);
                let ctx = wire::get_trace(&mut src)?;
                let n = wire::get_u32(&mut src)? as usize;
                if n > src.len() {
                    return Err(NetError::Corrupt("meta source count too large".into()));
                }
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    sources.push(SourceId::decode(&mut src)?);
                }
                Ok(Message::RequestMeta {
                    app,
                    request,
                    tree,
                    sources,
                    ctx,
                })
            }
            TAG_REDIRECT => Ok(Message::Redirect {
                app: get_app(&mut src)?,
                permanent: wire::get_u8(&mut src)? != 0,
                request: RequestId(wire::get_u64(&mut src)?),
                tree: TreeId(wire::get_u32(&mut src)?),
                new_parent: wire::get_u32(&mut src)?,
            }),
            TAG_HB => Ok(Message::Heartbeat {
                from: wire::get_u32(&mut src)?,
                nonce: wire::get_u64(&mut src)?,
            }),
            TAG_HB_ACK => Ok(Message::HeartbeatAck {
                from: wire::get_u32(&mut src)?,
                nonce: wire::get_u64(&mut src)?,
            }),
            TAG_BCAST => Ok(Message::Broadcast {
                app: get_app(&mut src)?,
                request: RequestId(wire::get_u64(&mut src)?),
                tree: TreeId(wire::get_u32(&mut src)?),
                payload: wire::get_bytes(&mut src)?,
            }),
            t => Err(NetError::Corrupt(format!("unknown message tag {t}"))),
        }
    }
}

fn get_app(src: &mut Bytes) -> Result<AppId, NetError> {
    if src.len() < 2 {
        return Err(NetError::Corrupt("missing app id".into()));
    }
    let hi = wire::get_u8(src)? as u16;
    let lo = wire::get_u8(src)? as u16;
    Ok(AppId((hi << 8) | lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let b = m.encode();
        let d = Message::decode(b).unwrap();
        assert_eq!(m, d);
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(Message::Data {
            app: AppId(513),
            request: RequestId(u64::MAX - 5),
            tree: TreeId(3),
            source: SourceId::Worker(17),
            seq: 42,
            last: true,
            ctx: TraceCtx {
                trace_id: 0x8000_0000_0000_0007,
                parent_span_id: 19,
            },
            sent_ns: 123_456_789,
            payload: Bytes::from_static(b"partial result bytes"),
        });
        roundtrip(Message::Data {
            app: AppId(0),
            request: RequestId(0),
            tree: TreeId(0),
            source: SourceId::Box(9),
            seq: 0,
            last: false,
            ctx: TraceCtx::NONE,
            sent_ns: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn meta_roundtrip() {
        roundtrip(Message::RequestMeta {
            app: AppId(7),
            request: RequestId(1),
            tree: TreeId(0),
            sources: vec![SourceId::Worker(3), SourceId::Box(1), SourceId::Worker(12)],
            ctx: TraceCtx {
                trace_id: 0x8000_0000_0000_0001,
                parent_span_id: 0x8000_0000_0000_0001,
            },
        });
        roundtrip(Message::RequestMeta {
            app: AppId(7),
            request: RequestId(2),
            tree: TreeId(1),
            sources: Vec::new(),
            ctx: TraceCtx::NONE,
        });
    }

    #[test]
    fn redirect_roundtrip() {
        roundtrip(Message::Redirect {
            app: AppId(7),
            permanent: true,
            request: RequestId(10),
            tree: TreeId(2),
            new_parent: 88,
        });
        roundtrip(Message::Redirect {
            app: AppId(7),
            permanent: false,
            request: RequestId(10),
            tree: TreeId(2),
            new_parent: 88,
        });
    }

    #[test]
    fn heartbeat_roundtrip() {
        roundtrip(Message::Heartbeat { from: 4, nonce: 99 });
        roundtrip(Message::HeartbeatAck { from: 4, nonce: 99 });
    }

    #[test]
    fn broadcast_roundtrip() {
        roundtrip(Message::Broadcast {
            app: AppId(3),
            request: RequestId(77),
            tree: TreeId(1),
            payload: Bytes::from_static(b"model parameters"),
        });
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Message::decode(Bytes::from_static(b"")).is_err());
        assert!(Message::decode(Bytes::from_static(&[99, 1, 2, 3])).is_err());
        // Truncated data message.
        let m = Message::Data {
            app: AppId(1),
            request: RequestId(2),
            tree: TreeId(3),
            source: SourceId::Worker(4),
            seq: 5,
            last: false,
            ctx: TraceCtx::NONE,
            sent_ns: 0,
            payload: Bytes::from_static(b"xyz"),
        };
        let enc = m.encode();
        let truncated = enc.slice(0..enc.len() - 2);
        assert!(Message::decode(truncated).is_err());
    }
}
