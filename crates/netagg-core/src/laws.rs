//! Checkers for the algebraic laws an [`AggregationFunction`] must obey.
//!
//! The platform aggregates partial results **in arbitrary order and
//! grouping** (Section 3.2.1): boxes merge whatever subset of inputs has
//! arrived, re-serialise the intermediate aggregate and feed it to the next
//! tier. A function that is not merge-consistent, order-insensitive or
//! identity-respecting produces different answers depending on tree shape,
//! fan-in and timing — bugs that only surface under load. This module lets
//! applications assert the laws directly (typically from a property-based
//! test):
//!
//! ```
//! use bytes::Bytes;
//! use netagg_core::laws;
//! use netagg_core::{AggError, AggregationFunction};
//!
//! struct Sum;
//! impl AggregationFunction for Sum {
//!     type Item = i64;
//!     fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
//!         std::str::from_utf8(b)
//!             .ok()
//!             .and_then(|s| s.parse().ok())
//!             .ok_or_else(|| AggError::Corrupt("not an int".into()))
//!     }
//!     fn serialize(&self, v: &i64) -> Bytes { Bytes::from(v.to_string()) }
//!     fn aggregate(&self, items: Vec<i64>) -> i64 { items.into_iter().sum() }
//!     fn empty(&self) -> i64 { 0 }
//! }
//!
//! let payloads: Vec<Bytes> = ["3", "1", "4", "1", "5"]
//!     .iter().map(|s| Bytes::from(*s)).collect();
//! laws::assert_laws(&Sum, &payloads);
//! ```
//!
//! All checks operate on *serialised* payloads and compare *serialised*
//! outputs, exactly like the platform does. Functions whose serialisation
//! is not canonical (e.g. floating-point accumulation where merge order
//! changes low-order bits) should use the `check_*` variants and compare
//! with an application-specific tolerance instead of the `assert_*` form.

use crate::{AggError, AggregationFunction};
use bytes::Bytes;

/// Deserialise, aggregate and re-serialise — what one box tier does. The
/// body mirrors [`crate::AggWrapper::aggregate_serialized`] but works on a
/// plain borrow so the checkers don't demand `'static` functions.
fn tier<F: AggregationFunction>(f: &F, inputs: Vec<Bytes>) -> Result<Bytes, AggError> {
    let mut items = Vec::with_capacity(inputs.len());
    for b in &inputs {
        items.push(f.deserialize(b)?);
    }
    if items.is_empty() {
        return Ok(f.serialize(&f.empty()));
    }
    Ok(f.serialize(&f.aggregate(items)))
}

/// Outcome of one law check: the two serialised results that must agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawCheck {
    /// Law under test, for diagnostics.
    pub law: &'static str,
    /// Result of the reference evaluation (one flat aggregation).
    pub expected: Bytes,
    /// Result of the restructured evaluation (split / reordered / padded).
    pub actual: Bytes,
}

impl LawCheck {
    /// Whether the two serialised results are byte-identical.
    pub fn holds(&self) -> bool {
        self.expected == self.actual
    }
}

/// Merge consistency: aggregating all payloads at once must equal
/// aggregating two halves separately and merging the re-serialised
/// intermediate aggregates — the fundamental on-path aggregation step.
/// `split` is clamped to `1..payloads.len()`.
pub fn check_merge<F: AggregationFunction>(
    f: &F,
    payloads: &[Bytes],
    split: usize,
) -> Result<LawCheck, AggError> {
    let expected = tier(f, payloads.to_vec())?;
    let actual = if payloads.len() < 2 {
        expected.clone()
    } else {
        let split = split.clamp(1, payloads.len() - 1);
        let left = tier(f, payloads[..split].to_vec())?;
        let right = tier(f, payloads[split..].to_vec())?;
        tier(f, vec![left, right])?
    };
    Ok(LawCheck {
        law: "merge consistency",
        expected,
        actual,
    })
}

/// Order insensitivity: reversing the payloads must not change the result
/// (the platform gives no ordering guarantee across workers or chunks).
pub fn check_commutative<F: AggregationFunction>(
    f: &F,
    payloads: &[Bytes],
) -> Result<LawCheck, AggError> {
    let expected = tier(f, payloads.to_vec())?;
    let mut reversed = payloads.to_vec();
    reversed.reverse();
    let actual = tier(f, reversed)?;
    Ok(LawCheck {
        law: "order insensitivity",
        expected,
        actual,
    })
}

/// Identity: mixing the serialised identity element into the inputs must
/// not change the result (the master shim emulates empty results with it).
pub fn check_identity<F: AggregationFunction>(
    f: &F,
    payloads: &[Bytes],
) -> Result<LawCheck, AggError> {
    let expected = tier(f, payloads.to_vec())?;
    let identity = f.serialize(&f.empty());
    let mut padded = Vec::with_capacity(payloads.len() + 2);
    padded.push(identity.clone());
    padded.extend(payloads.iter().cloned());
    padded.push(identity);
    let actual = tier(f, padded)?;
    Ok(LawCheck {
        law: "identity",
        expected,
        actual,
    })
}

/// Serialisation stability: deserialising and re-serialising any payload —
/// which every box on the path does — must be idempotent after one pass.
pub fn check_roundtrip<F: AggregationFunction>(
    f: &F,
    payload: &Bytes,
) -> Result<LawCheck, AggError> {
    let once = f.serialize(&f.deserialize(payload)?);
    let twice = f.serialize(&f.deserialize(&once)?);
    Ok(LawCheck {
        law: "serialisation stability",
        expected: once,
        actual: twice,
    })
}

/// Run every law against the payloads (merge consistency at every split
/// point) and return the first violation, if any.
pub fn check_laws<F: AggregationFunction>(
    f: &F,
    payloads: &[Bytes],
) -> Result<Option<LawCheck>, AggError> {
    for split in 1..payloads.len().max(1) {
        let c = check_merge(f, payloads, split)?;
        if !c.holds() {
            return Ok(Some(c));
        }
    }
    for c in [
        check_commutative(f, payloads)?,
        check_identity(f, payloads)?,
    ] {
        if !c.holds() {
            return Ok(Some(c));
        }
    }
    for p in payloads {
        let c = check_roundtrip(f, p)?;
        if !c.holds() {
            return Ok(Some(c));
        }
    }
    Ok(None)
}

/// Panic with a diagnostic if any law fails on the payloads. Intended for
/// use inside tests of application aggregation functions.
///
/// # Panics
///
/// Panics when a payload fails to deserialise or a law is violated.
pub fn assert_laws<F: AggregationFunction>(f: &F, payloads: &[Bytes]) {
    match check_laws(f, payloads) {
        Ok(None) => {}
        Ok(Some(c)) => panic!(
            "aggregation law violated: {} (expected {:?}, got {:?})",
            c.law, c.expected, c.actual
        ),
        Err(e) => panic!("aggregation law check failed to run: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl AggregationFunction for Sum {
        type Item = i64;
        fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
            std::str::from_utf8(b)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| AggError::Corrupt("not an int".into()))
        }
        fn serialize(&self, v: &i64) -> Bytes {
            Bytes::from(v.to_string())
        }
        fn aggregate(&self, items: Vec<i64>) -> i64 {
            items.into_iter().sum()
        }
        fn empty(&self) -> i64 {
            0
        }
    }

    /// Mean is the textbook non-associative reduction: merging averages of
    /// halves is not the average of the whole.
    struct NaiveMean;
    impl AggregationFunction for NaiveMean {
        type Item = f64;
        fn deserialize(&self, b: &Bytes) -> Result<f64, AggError> {
            std::str::from_utf8(b)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| AggError::Corrupt("not a float".into()))
        }
        fn serialize(&self, v: &f64) -> Bytes {
            Bytes::from(format!("{v:.6}"))
        }
        fn aggregate(&self, items: Vec<f64>) -> f64 {
            items.iter().sum::<f64>() / items.len() as f64
        }
        fn empty(&self) -> f64 {
            0.0
        }
    }

    /// First-item "aggregation" is order-sensitive.
    struct TakeFirst;
    impl AggregationFunction for TakeFirst {
        type Item = String;
        fn deserialize(&self, b: &Bytes) -> Result<String, AggError> {
            Ok(String::from_utf8_lossy(b).into_owned())
        }
        fn serialize(&self, v: &String) -> Bytes {
            Bytes::from(v.clone())
        }
        fn aggregate(&self, items: Vec<String>) -> String {
            items.into_iter().next().unwrap_or_default()
        }
        fn empty(&self) -> String {
            String::new()
        }
    }

    fn payloads(vals: &[&str]) -> Vec<Bytes> {
        vals.iter().map(|s| Bytes::from(s.to_string())).collect()
    }

    #[test]
    fn sum_satisfies_every_law() {
        assert_laws(&Sum, &payloads(&["3", "1", "4", "1", "5", "-9"]));
        assert_laws(&Sum, &payloads(&["42"]));
        assert_laws(&Sum, &payloads(&[]));
    }

    #[test]
    fn naive_mean_fails_merge_consistency() {
        let v = check_laws(&NaiveMean, &payloads(&["1", "2", "6"]))
            .unwrap()
            .expect("mean must be flagged");
        assert_eq!(v.law, "merge consistency");
        assert!(!v.holds());
    }

    #[test]
    fn take_first_fails_order_insensitivity() {
        // Merge-consistent for 2 items at split 1 (left half wins either
        // way), so the commutativity check is what catches it.
        let v = check_laws(&TakeFirst, &payloads(&["a", "b"]))
            .unwrap()
            .expect("take-first must be flagged");
        assert_eq!(v.law, "order insensitivity");
    }

    #[test]
    fn identity_violation_is_detected() {
        // empty() = 1 breaks the identity law for products... emulate with
        // a sum whose claimed identity is wrong.
        struct BadIdentity;
        impl AggregationFunction for BadIdentity {
            type Item = i64;
            fn deserialize(&self, b: &Bytes) -> Result<i64, AggError> {
                Sum.deserialize(b)
            }
            fn serialize(&self, v: &i64) -> Bytes {
                Sum.serialize(v)
            }
            fn aggregate(&self, items: Vec<i64>) -> i64 {
                items.into_iter().sum()
            }
            fn empty(&self) -> i64 {
                1 // wrong: the additive identity is 0
            }
        }
        let v = check_laws(&BadIdentity, &payloads(&["5", "7"]))
            .unwrap()
            .expect("bad identity must be flagged");
        assert_eq!(v.law, "identity");
    }

    #[test]
    fn corrupt_payloads_surface_as_errors() {
        assert!(matches!(
            check_laws(&Sum, &payloads(&["1", "oops"])),
            Err(AggError::Corrupt(_))
        ));
    }

    #[test]
    fn roundtrip_detects_unstable_serialisation() {
        // Deserialise trims whitespace, serialise does not re-add it: the
        // FIRST pass is not idempotent if the original had padding — but
        // one pass through a box canonicalises, so stability compares pass
        // one vs pass two and holds here.
        struct Trimmed;
        impl AggregationFunction for Trimmed {
            type Item = String;
            fn deserialize(&self, b: &Bytes) -> Result<String, AggError> {
                Ok(String::from_utf8_lossy(b).trim().to_string())
            }
            fn serialize(&self, v: &String) -> Bytes {
                Bytes::from(v.clone())
            }
            fn aggregate(&self, items: Vec<String>) -> String {
                let mut items = items;
                items.sort();
                items.join(",")
            }
            fn empty(&self) -> String {
                String::new()
            }
        }
        let c = check_roundtrip(&Trimmed, &Bytes::from_static(b"  padded  ")).unwrap();
        assert!(c.holds(), "one pass canonicalises; two passes agree");
        assert_eq!(c.expected.as_ref(), b"padded");
    }
}
