//! Exact fan-in ledgers for failure-tolerant aggregation accounting.
//!
//! The seed implementation tracked "how many inputs are still expected"
//! as an integer and patched it with `expected_extra` deltas whenever a
//! box failed or was bypassed. Counter arithmetic is inherently racy
//! under re-pointing: a worker replay that arrives *before* the
//! re-point command can satisfy the old count (one replayed `last`
//! chunk looked like the single expected box input and completed the
//! request with a partial sum). A [`FanInLedger`] instead tracks the
//! *set* of logical contributors still owed. A `Worker(w)` end can
//! never satisfy a `Box(b)` entry, so completion is immune to the
//! ordering of redirects, replays and failure notifications.
//!
//! Invariants (see DESIGN.md "Fan-in ledger"):
//!
//! * `owed` and `ignored` are disjoint; a key moves from `owed` to
//!   `ignored` exactly once (via [`FanInLedger::repoint`]).
//! * A request is complete iff `owed` is non-empty and every owed key
//!   has ended (`owed ⊆ ended`).
//! * `repoint` is idempotent: repeated detector firings, straggler
//!   redirects racing the failure detector, and replayed duplicates
//!   all collapse to a single ledger transition.
//! * If a box already delivered its combined partial (its key is in
//!   `ended`) and *then* fails, its behind-sources are ignored rather
//!   than owed — their replays are duplicates of data the box already
//!   folded in (duplicate suppression).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// What [`FanInLedger::accept_chunk`] decided about an incoming chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDisposition {
    /// New data from this contributor; `first` is true on the first
    /// chunk ever accepted from it.
    Fresh {
        /// True if this is the first chunk accepted from the source.
        first: bool,
    },
    /// Sequence number at or below the last accepted one — a replayed
    /// duplicate that must not be aggregated again.
    Duplicate,
    /// The contributor has been moved to the ignored set (its subtree
    /// was re-pointed away, or its parent box already delivered a
    /// combined partial covering it).
    Ignored,
}

/// Result of a [`FanInLedger::repoint`] transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepointOutcome {
    /// The box key was owed; it is now ignored and `added` of its
    /// behind-sources became directly owed.
    Moved {
        /// Number of behind-sources newly inserted into the owed set.
        added: usize,
    },
    /// The box had already delivered its combined partial before the
    /// failure was observed; its behind-sources were ignored so their
    /// replays are suppressed as duplicates.
    DuplicateSuppressed,
    /// This box key was already re-pointed — repeated detector firing
    /// or a straggler redirect racing the failure detector. No-op.
    AlreadyRepointed,
    /// The box key was not in the owed set (for example a subset
    /// request this box does not participate in). Recorded as
    /// re-pointed so later firings stay no-ops.
    NotOwed,
}

/// Set-based accounting of which logical contributors a fan-in point
/// (master shim or agg box) is still owed for one in-flight request.
#[derive(Debug, Clone, Default)]
pub struct FanInLedger<K: Eq + Hash + Copy> {
    owed: HashSet<K>,
    ended: HashSet<K>,
    seen: HashSet<K>,
    ignored: HashSet<K>,
    last_seq: HashMap<K, u32>,
    repointed: HashSet<K>,
}

impl<K: Eq + Hash + Copy> FanInLedger<K> {
    /// Create a ledger owing exactly the given contributors.
    pub fn new(owed: impl IntoIterator<Item = K>) -> Self {
        FanInLedger {
            owed: owed.into_iter().collect(),
            ended: HashSet::new(),
            seen: HashSet::new(),
            ignored: HashSet::new(),
            last_seq: HashMap::new(),
            repointed: HashSet::new(),
        }
    }

    /// Replace the owed set (subset requests deliver the participating
    /// set after the ledger was provisioned from the full route).
    /// Keys already ignored by an earlier re-point stay ignored.
    pub fn set_requirement(&mut self, owed: impl IntoIterator<Item = K>) {
        self.owed = owed
            .into_iter()
            .filter(|k| !self.ignored.contains(k))
            .collect();
    }

    /// Record an incoming chunk from `key` with per-source sequence
    /// number `seq` and classify it.
    pub fn accept_chunk(&mut self, key: K, seq: u32) -> ChunkDisposition {
        if self.ignored.contains(&key) {
            return ChunkDisposition::Ignored;
        }
        if let Some(&prev) = self.last_seq.get(&key) {
            if seq <= prev {
                return ChunkDisposition::Duplicate;
            }
        }
        self.last_seq.insert(key, seq);
        let first = self.seen.insert(key);
        ChunkDisposition::Fresh { first }
    }

    /// Record that `key` delivered its final chunk. Returns false if
    /// the key is ignored or had already ended (nothing changed).
    pub fn note_end(&mut self, key: K) -> bool {
        if self.ignored.contains(&key) {
            return false;
        }
        self.ended.insert(key)
    }

    /// Move a failed (or bypassed) box's obligations to its
    /// behind-sources. Idempotent; see [`RepointOutcome`].
    pub fn repoint(&mut self, box_key: K, behind: &[K]) -> RepointOutcome {
        if !self.repointed.insert(box_key) {
            return RepointOutcome::AlreadyRepointed;
        }
        if self.ended.contains(&box_key) {
            // The box's combined partial is already in; replays from
            // its behind-sources would double-count.
            for b in behind {
                if !self.ended.contains(b) {
                    self.owed.remove(b);
                    self.ignored.insert(*b);
                }
            }
            return RepointOutcome::DuplicateSuppressed;
        }
        if !self.owed.remove(&box_key) {
            return RepointOutcome::NotOwed;
        }
        self.ignored.insert(box_key);
        let mut added = 0;
        for b in behind {
            if !self.ignored.contains(b) && self.owed.insert(*b) {
                added += 1;
            }
        }
        RepointOutcome::Moved { added }
    }

    /// True iff the owed set is non-empty and every owed contributor
    /// has ended.
    pub fn is_complete(&self) -> bool {
        !self.owed.is_empty() && self.owed.iter().all(|k| self.ended.contains(k))
    }

    /// Owed contributors that have not yet ended.
    pub fn outstanding(&self) -> usize {
        self.owed.iter().filter(|k| !self.ended.contains(k)).count()
    }

    /// Number of contributors currently owed.
    pub fn owed_len(&self) -> usize {
        self.owed.len()
    }

    /// Number of contributors that delivered a final chunk.
    pub fn ended_len(&self) -> usize {
        self.ended.len()
    }

    /// Whether `key` is currently owed.
    pub fn is_owed(&self, key: &K) -> bool {
        self.owed.contains(key)
    }

    /// Whether chunks from `key` are being discarded.
    pub fn is_ignored(&self, key: &K) -> bool {
        self.ignored.contains(key)
    }

    /// Whether `key` delivered its final chunk.
    pub fn has_ended(&self, key: &K) -> bool {
        self.ended.contains(key)
    }

    /// Whether any chunk has been accepted from `key`.
    pub fn has_seen(&self, key: &K) -> bool {
        self.seen.contains(key)
    }

    /// Number of distinct contributors a chunk has been accepted from.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Whether `key` was already re-pointed.
    pub fn was_repointed(&self, key: &K) -> bool {
        self.repointed.contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_single_box_completes() {
        let mut l = FanInLedger::new([1u32]);
        assert_eq!(
            l.accept_chunk(1, 1),
            ChunkDisposition::Fresh { first: true }
        );
        assert!(!l.is_complete());
        assert!(l.note_end(1));
        assert!(l.is_complete());
    }

    #[test]
    fn replay_before_repoint_does_not_complete() {
        // Master owes one box; a worker replay lands first. The old
        // counter would have completed here; the ledger must not.
        let mut l = FanInLedger::new([100u32]);
        assert_eq!(
            l.accept_chunk(1, 1),
            ChunkDisposition::Fresh { first: true }
        );
        l.note_end(1);
        assert!(!l.is_complete(), "worker end must not satisfy a box entry");
        // All three behind-sources become owed; worker 1 already ended,
        // so its new entry is satisfied immediately.
        assert_eq!(
            l.repoint(100, &[1, 2, 3]),
            RepointOutcome::Moved { added: 3 }
        );
        assert!(!l.is_complete());
        l.note_end(2);
        l.note_end(3);
        assert!(l.is_complete());
    }

    #[test]
    fn repoint_is_idempotent() {
        let mut l = FanInLedger::new([100u32]);
        assert_eq!(l.repoint(100, &[1, 2]), RepointOutcome::Moved { added: 2 });
        assert_eq!(l.repoint(100, &[1, 2]), RepointOutcome::AlreadyRepointed);
        assert_eq!(l.owed_len(), 2);
        l.note_end(1);
        l.note_end(2);
        assert!(l.is_complete());
    }

    #[test]
    fn box_that_ended_then_failed_suppresses_replays() {
        let mut l = FanInLedger::new([100u32]);
        l.accept_chunk(100, 1);
        l.note_end(100);
        assert!(l.is_complete());
        assert_eq!(l.repoint(100, &[1, 2]), RepointOutcome::DuplicateSuppressed);
        assert!(l.is_complete());
        assert_eq!(l.accept_chunk(1, 1), ChunkDisposition::Ignored);
        assert_eq!(l.accept_chunk(2, 1), ChunkDisposition::Ignored);
    }

    #[test]
    fn seq_duplicates_are_dropped() {
        let mut l = FanInLedger::new([1u32]);
        assert_eq!(
            l.accept_chunk(1, 1),
            ChunkDisposition::Fresh { first: true }
        );
        assert_eq!(l.accept_chunk(1, 1), ChunkDisposition::Duplicate);
        assert_eq!(
            l.accept_chunk(1, 2),
            ChunkDisposition::Fresh { first: false }
        );
    }

    #[test]
    fn chained_repoint_moves_grandchildren() {
        // Root box 100 fails -> owes leaf box 200 + worker 1; then
        // leaf box 200 fails -> owes workers 2, 3.
        let mut l = FanInLedger::new([100u32]);
        assert_eq!(
            l.repoint(100, &[200, 1]),
            RepointOutcome::Moved { added: 2 }
        );
        assert_eq!(l.repoint(200, &[2, 3]), RepointOutcome::Moved { added: 2 });
        l.note_end(1);
        l.note_end(2);
        assert!(!l.is_complete());
        l.note_end(3);
        assert!(l.is_complete());
    }

    #[test]
    fn repoint_of_unowed_box_is_recorded_noop() {
        let mut l = FanInLedger::new([1u32]);
        assert_eq!(l.repoint(100, &[2]), RepointOutcome::NotOwed);
        assert_eq!(l.repoint(100, &[2]), RepointOutcome::AlreadyRepointed);
        assert_eq!(l.owed_len(), 1);
    }

    #[test]
    fn set_requirement_respects_ignored() {
        let mut l = FanInLedger::new([100u32]);
        l.repoint(100, &[1, 2]);
        l.set_requirement([100, 1]);
        assert!(!l.is_owed(&100), "ignored keys must not be re-owed");
        assert!(l.is_owed(&1));
        l.note_end(1);
        assert!(l.is_complete());
    }

    #[test]
    fn empty_owed_is_not_complete() {
        let l: FanInLedger<u32> = FanInLedger::new([]);
        assert!(!l.is_complete());
    }
}
