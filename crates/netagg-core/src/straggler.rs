//! Straggler handling policy (Section 3.1, "Handling stragglers").
//!
//! The mechanism lives where the data lives: each parent of agg boxes (the
//! boxes themselves in [`crate::aggbox::runtime`], the master shim in
//! [`crate::shim`]) monitors active requests. If a request has started
//! flowing but an expected child box has contributed nothing within the
//! threshold, that box is bypassed *for this request*: its children are
//! told (via a per-request `Redirect`) to resend the request's data
//! directly to the monitoring node, which stops expecting the box. Worker
//! shims serve resends from a bounded replay buffer.
//!
//! Repeated slowness across requests escalates to the permanent failure
//! procedure ([`crate::failure`]): the box's children re-point permanently
//! and future requests no longer expect it.

use std::time::Duration;

/// Tunable straggler policy shared by agg boxes and the master shim.
#[derive(Debug, Clone, Copy)]
pub struct StragglerPolicy {
    /// How long a request may run without a contribution from an expected
    /// box before that box is bypassed. Application-specific (the paper
    /// uses an application-specific threshold).
    pub threshold: Duration,
    /// Straggler events after which a box is treated as permanently failed.
    pub repeat_limit: u32,
}

impl StragglerPolicy {
    /// Policy with the given threshold and the default repeat limit.
    pub fn new(threshold: Duration) -> Self {
        Self {
            threshold,
            repeat_limit: 3,
        }
    }
}

impl Default for StragglerPolicy {
    fn default() -> Self {
        Self::new(Duration::from_millis(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = StragglerPolicy::default();
        assert!(p.threshold > Duration::ZERO);
        assert!(p.repeat_limit >= 1);
    }
}
