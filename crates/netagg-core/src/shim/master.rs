//! Master-side shim layer.
//!
//! Tracks per-request state (the paper's "partial result collection"),
//! receives root aggregates (or raw partials from direct workers when no
//! boxes are deployed), performs the final cross-tree merge and emulates
//! empty per-worker results. It is also the parent of the root boxes, so
//! it runs the same straggler bypass the boxes do.

use crate::aggbox::runtime::ChildBoxInfo;
use crate::ledger::{ChunkDisposition, FanInLedger, RepointOutcome};
use crate::lifecycle::{CancelToken, JoinScope, OrderedMutex, WakerGuard, DEFAULT_JOIN_DEADLINE};
use crate::protocol::{AppId, Message, RequestId, SourceId, TreeId};
use crate::shim::worker::per_request_tree;
use crate::shim::TreeSelection;
use crate::tree::{master_addr, Parent, TreeSpec};
use crate::{AggError, DynAggregator};
use bytes::Bytes;
use netagg_net::lock_order;
use netagg_net::{Connection, NetError, NodeId, Transport};
use netagg_obs::trace::{self, TraceCtx, TraceRecorder};
use netagg_obs::{names, Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::Condvar;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fully aggregated answer to one request.
#[derive(Debug, Clone)]
pub struct AggregatedResult {
    /// The combined result (all partial results merged).
    pub combined: Bytes,
    /// How many empty per-worker results the shim emulated (the paper's
    /// "empty partial results": the master logic sees one real result and
    /// `expected_workers - 1` empties).
    pub emulated_empty: usize,
    /// Serialised identity element used for the emulated empties.
    pub empty_payload: Bytes,
    /// Number of source messages merged at the master (roots + directs).
    pub master_inputs: usize,
    /// Total payload bytes the master received for this request.
    pub master_input_bytes: usize,
}

impl AggregatedResult {
    /// The per-worker result vector the unmodified master logic iterates
    /// over: one combined result plus emulated empties.
    pub fn emulated_worker_results(&self) -> Vec<Bytes> {
        let mut v = Vec::with_capacity(self.emulated_empty + 1);
        v.push(self.combined.clone());
        for _ in 0..self.emulated_empty {
            v.push(self.empty_payload.clone());
        }
        v
    }
}

/// Master shim configuration.
#[derive(Debug, Clone)]
pub struct MasterShimConfig {
    /// How requests map onto aggregation trees.
    pub selection: TreeSelection,
    /// Per-request straggler bypass threshold for root boxes.
    pub straggler_threshold: Option<Duration>,
    /// Drop per-request state not claimed by a waiter within this age
    /// (abandoned requests would otherwise accumulate forever).
    pub pending_ttl: Duration,
    /// Metrics registry the shim publishes to (`shim.master.*`,
    /// `straggler.master_bypasses`). `None` disables metrics.
    pub obs: Option<MetricsRegistry>,
}

impl Default for MasterShimConfig {
    fn default() -> Self {
        Self {
            selection: TreeSelection::PerRequest,
            straggler_threshold: None,
            pending_ttl: Duration::from_secs(600),
            obs: None,
        }
    }
}

/// Pre-resolved `shim.master.*` metric handles.
struct MasterObs {
    requests_registered: Arc<Counter>,
    requests_completed: Arc<Counter>,
    messages_in: Arc<Counter>,
    bytes_in: Arc<Counter>,
    emulated_empties: Arc<Counter>,
    duplicates_dropped: Arc<Counter>,
    repoints: Arc<Counter>,
    requests_inflight: Arc<Gauge>,
    sources_outstanding: Arc<Gauge>,
    request_wait_us: Arc<Histogram>,
    master_bypasses: Arc<Counter>,
    tracer: Arc<TraceRecorder>,
    /// Component label for master-side spans, e.g. `master-1`.
    component: Arc<str>,
    registry: MetricsRegistry,
}

impl MasterObs {
    fn new(registry: MetricsRegistry, app: AppId) -> Self {
        Self {
            requests_registered: registry.counter(names::SHIM_MASTER_REQUESTS_REGISTERED),
            requests_completed: registry.counter(names::SHIM_MASTER_REQUESTS_COMPLETED),
            messages_in: registry.counter(names::SHIM_MASTER_MESSAGES_IN),
            bytes_in: registry.counter(names::SHIM_MASTER_BYTES_IN),
            emulated_empties: registry.counter(names::SHIM_MASTER_EMULATED_EMPTIES),
            duplicates_dropped: registry.counter(names::SHIM_MASTER_DUPLICATES_DROPPED),
            repoints: registry.counter(names::SHIM_MASTER_REPOINTS),
            requests_inflight: registry.gauge(names::SHIM_MASTER_REQUESTS_INFLIGHT),
            sources_outstanding: registry.gauge(names::SHIM_MASTER_SOURCES_OUTSTANDING),
            request_wait_us: registry.histogram(names::SHIM_MASTER_REQUEST_WAIT_US),
            master_bypasses: registry.counter(names::STRAGGLER_MASTER_BYPASSES),
            tracer: registry.tracer(),
            component: format!("master-{}", app.0).into(),
            registry,
        }
    }

    /// Refresh the per-request ledger gauges. Called with the pending map
    /// locked after any transition that changes owed/ended accounting.
    fn update_ledger_gauges(&self, pending: &HashMap<RequestId, Pending>) {
        let inflight = pending.values().filter(|p| !p.complete).count();
        let outstanding: usize = pending
            .values()
            .filter(|p| !p.complete)
            .map(|p| p.ledger.outstanding())
            .sum();
        self.requests_inflight.set(inflight as f64);
        self.sources_outstanding.set(outstanding as f64);
    }
}

struct TreeRoute {
    /// The logical contributors the master is owed per request on this
    /// tree (root boxes and direct workers). Updated when a root box
    /// fails; new requests seed their ledger from it.
    owed: std::collections::HashSet<SourceId>,
    child_boxes: HashMap<u32, ChildBoxInfo>,
}

/// Trace anchor of one sampled request at the master: the root span's id
/// is the trace id itself (DESIGN.md §11), so only the start is kept.
#[derive(Debug, Clone, Copy)]
struct PendingTrace {
    trace_id: u64,
    /// Registration (or first-data) time on the shared monotonic axis.
    start_ns: u64,
}

struct Pending {
    expected_workers: usize,
    /// Set-based fan-in accounting, keyed by (tree, source): completion
    /// means every owed contributor has delivered its final chunk.
    /// Replaces the old `expected`/`expected_extra` counters, which were
    /// racy under failure re-points (see DESIGN.md §8).
    ledger: FanInLedger<(TreeId, SourceId)>,
    /// Received chunks tagged by contributor, so the final merge can drop
    /// everything from contributors the ledger ignored (exact duplicate
    /// suppression when a box streamed partial chunks and then failed).
    inputs: Vec<((TreeId, SourceId), Bytes)>,
    registered_at: Instant,
    first_data: Option<Instant>,
    complete: bool,
    /// `Some` when the request is trace-sampled (DESIGN.md §11).
    trace: Option<PendingTrace>,
}

/// How many delivered request ids the shim remembers for duplicate
/// suppression of late replays. Replays trail the failure they recover
/// from by at most the in-flight window, so a few thousand ids is far
/// more history than any redelivery can span.
const DELIVERED_MEMORY: usize = 4096;

struct Inner {
    app: AppId,
    addr: NodeId,
    agg: Arc<dyn DynAggregator>,
    transport: Arc<dyn Transport>,
    cfg: MasterShimConfig,
    specs: Vec<TreeSpec>,
    routes: OrderedMutex<HashMap<TreeId, TreeRoute>>,
    pending: OrderedMutex<HashMap<RequestId, Pending>>,
    /// Recently delivered request ids (reaped from `pending` by `wait`).
    /// Late replayed chunks for these are duplicates and must not
    /// resurrect a fresh ledger entry — that would complete the request
    /// a second time and leak the resurrected entry. Bounded FIFO.
    delivered: OrderedMutex<(VecDeque<RequestId>, HashSet<RequestId>)>,
    cv: Condvar,
    num_trees: u32,
    cancel: CancelToken,
    /// Cached control-plane connections (RequestMeta, Broadcast, straggler
    /// redirects), one per destination. Persistent connections keep
    /// control traffic ordered per peer and avoid a dial per message.
    ctrl_conns: OrderedMutex<HashMap<NodeId, Box<dyn Connection>>>,
    obs: Option<MasterObs>,
}

/// A handle to one registered request.
pub struct PendingRequest {
    inner: Arc<Inner>,
    request: RequestId,
}

/// The master-side shim.
pub struct MasterShim {
    inner: Arc<Inner>,
    scope: JoinScope,
    /// Wakes `PendingRequest::wait` condvar sleepers on cancellation.
    _cv_waker: WakerGuard,
}

impl MasterShim {
    /// Bind the master address and start the shim's listener (and, when
    /// configured, its straggler monitor).
    pub fn start(
        transport: Arc<dyn Transport>,
        app: AppId,
        agg: Arc<dyn DynAggregator>,
        specs: &[TreeSpec],
        cfg: MasterShimConfig,
    ) -> Result<Arc<Self>, NetError> {
        let addr = master_addr(app);
        let mut listener = transport.bind(addr)?;
        let mut routes = HashMap::new();
        for spec in specs {
            let mut child_boxes = HashMap::new();
            for b in &spec.boxes {
                if b.parent == crate::tree::Parent::Master && b.expected_sources() > 0 {
                    child_boxes.insert(b.box_id, ChildBoxInfo::from_spec(spec, app, b.box_id));
                }
            }
            routes.insert(
                spec.tree,
                TreeRoute {
                    owed: spec.master_sources().into_iter().collect(),
                    child_boxes,
                },
            );
        }
        let obs = cfg.obs.clone().map(|reg| MasterObs::new(reg, app));
        let cancel = CancelToken::new();
        let scope = JoinScope::with_obs(
            format!("master-shim-{}", app.0),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            cfg.obs.as_ref(),
        );
        let inner = Arc::new(Inner {
            app,
            addr,
            agg,
            transport,
            cfg,
            specs: specs.to_vec(),
            routes: OrderedMutex::new(lock_order::MASTER_ROUTES, routes),
            pending: OrderedMutex::new(lock_order::MASTER_PENDING, HashMap::new()),
            delivered: OrderedMutex::new(
                lock_order::MASTER_DELIVERED,
                (VecDeque::new(), HashSet::new()),
            ),
            cv: Condvar::new(),
            num_trees: specs.len() as u32,
            cancel: cancel.clone(),
            ctrl_conns: OrderedMutex::new(lock_order::MASTER_CTRL_CONNS, HashMap::new()),
            obs,
        });
        // Wake condvar waiters on cancellation (takes the pending lock so a
        // waiter between its cancel check and its park cannot miss the
        // notify). Weak: a strong ref here would cycle through the token.
        let weak = Arc::downgrade(&inner);
        let cv_waker = cancel.register_waker(move || {
            if let Some(i) = weak.upgrade() {
                drop(i.pending.lock());
                i.cv.notify_all();
            }
        });
        let shim = Arc::new(Self {
            inner: inner.clone(),
            scope,
            _cv_waker: cv_waker,
        });
        {
            let inner = inner.clone();
            let shim2 = Arc::downgrade(&shim);
            shim.scope
                .spawn(format!("master-shim-{}", app.0), move || loop {
                    match listener.accept_cancellable(&inner.cancel) {
                        Ok(conn) => {
                            if let Some(s) = shim2.upgrade() {
                                let inner = inner.clone();
                                s.scope
                                    .spawn(
                                        format!("master-shim-{}-reader", inner.app.0),
                                        move || reader_loop(&inner, conn),
                                    )
                                    .expect("spawn master shim reader");
                            }
                        }
                        Err(NetError::Timeout) => continue,
                        Err(_) => return, // cancelled or listener torn down
                    }
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        if inner.cfg.straggler_threshold.is_some() {
            let inner = inner.clone();
            shim.scope
                .spawn(format!("master-shim-{}-straggler", app.0), move || {
                    straggler_loop(&inner)
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        Ok(shim)
    }

    /// Register a request before (or while) workers send their partials.
    /// `expected_workers` is the number of workers participating; the shim
    /// uses it to emulate that many minus one empty results.
    pub fn register_request(&self, request: u64, expected_workers: usize) -> PendingRequest {
        let request = RequestId(request);
        if let Some(o) = &self.inner.obs {
            o.requests_registered.inc();
        }
        let mut pending = self.inner.pending.lock();
        // Opportunistic GC: drop abandoned request state older than the TTL
        // (completed results nobody waited for, or requests that never
        // finished).
        let ttl = self.inner.cfg.pending_ttl;
        pending.retain(|_, p| p.registered_at.elapsed() < ttl);
        let p = pending
            .entry(request)
            .or_insert_with(|| fresh_pending(&self.inner, request));
        p.expected_workers = expected_workers;
        if let Some(o) = &self.inner.obs {
            o.update_ledger_gauges(&pending);
        }
        PendingRequest {
            inner: self.inner.clone(),
            request,
        }
    }

    /// Register a request that only a *subset* of the workers participates
    /// in (e.g. a search query routed to some shards). The shim sends
    /// per-request metadata to the on-path boxes so they know how many
    /// sources to expect (the paper's `RequestMeta` flow: the master shim
    /// records request information and forwards it to the agg boxes).
    pub fn register_request_subset(&self, request: u64, workers: &[u32]) -> PendingRequest {
        let rid = RequestId(request);
        if let Some(o) = &self.inner.obs {
            o.requests_registered.inc();
        }
        let subset: std::collections::HashSet<u32> = workers.iter().copied().collect();
        // Root-span ctx rides down with the metadata so box-side views can
        // reference the master's root span (root span id == trace id).
        let meta_ctx = self.inner.obs.as_ref().map_or(TraceCtx::NONE, |o| {
            if o.tracer.sampled(request) {
                let tid = trace::trace_id(self.inner.app.0, request);
                TraceCtx {
                    trace_id: tid,
                    parent_span_id: tid,
                }
            } else {
                TraceCtx::NONE
            }
        });
        let mut master_owed: Vec<(TreeId, SourceId)> = Vec::new();
        for tree_id in trees_for_request(&self.inner, rid) {
            let Some(spec) = self.inner.specs.iter().find(|s| s.tree == tree_id) else {
                continue;
            };
            // Compute each box's participating source *set* bottom-up:
            // direct workers in the subset plus child boxes with non-empty
            // participating subtrees.
            let mut part: HashMap<u32, Vec<SourceId>> = HashMap::new();
            let mut order: Vec<&crate::tree::TreeBox> = spec.boxes.iter().collect();
            // Children before parents: sort by depth (walk to master).
            let depth = |mut b: u32| -> usize {
                let mut d = 0;
                while let Some(Parent::Box(p)) = spec.tree_box(b).map(|t| t.parent) {
                    d += 1;
                    b = p;
                }
                d
            };
            order.sort_by_key(|tb| std::cmp::Reverse(depth(tb.box_id)));
            for tb in order {
                let mut sources: Vec<SourceId> = tb
                    .worker_children
                    .iter()
                    .filter(|w| subset.contains(w))
                    .map(|w| SourceId::Worker(*w))
                    .collect();
                sources.extend(
                    tb.box_children
                        .iter()
                        .filter(|c| part.get(c).map(|v| !v.is_empty()).unwrap_or(false))
                        .map(|c| SourceId::Box(*c)),
                );
                part.insert(tb.box_id, sources);
            }
            // Tell every participating box exactly which sources to expect.
            for tb in &spec.boxes {
                let Some(sources) = part.get(&tb.box_id) else {
                    continue;
                };
                if sources.is_empty() {
                    continue;
                }
                let msg = Message::RequestMeta {
                    app: self.inner.app,
                    request: rid,
                    tree: tree_id,
                    ctx: meta_ctx,
                    sources: sources.clone(),
                };
                let _ = send_ctrl(&self.inner, tb.addr, msg.encode());
            }
            // Master-facing owed entries for this tree. A root box that
            // already failed (dropped from the route's owed set) is
            // substituted by its participating children directly.
            {
                let routes = self.inner.routes.lock();
                let route = routes.get(&tree_id);
                for tb in &spec.boxes {
                    if tb.parent != Parent::Master {
                        continue;
                    }
                    let Some(sources) = part.get(&tb.box_id) else {
                        continue;
                    };
                    if sources.is_empty() {
                        continue;
                    }
                    let still_routed = route
                        .map(|r| r.owed.contains(&SourceId::Box(tb.box_id)))
                        .unwrap_or(true);
                    if still_routed {
                        master_owed.push((tree_id, SourceId::Box(tb.box_id)));
                    } else {
                        master_owed.extend(sources.iter().map(|s| (tree_id, *s)));
                    }
                }
            }
            master_owed.extend(
                spec.direct_workers
                    .iter()
                    .filter(|w| subset.contains(w))
                    .map(|w| (tree_id, SourceId::Worker(*w))),
            );
        }
        let mut pending = self.inner.pending.lock();
        let p = pending
            .entry(rid)
            .or_insert_with(|| fresh_pending(&self.inner, rid));
        p.expected_workers = workers.len();
        p.ledger.set_requirement(master_owed);
        if let Some(o) = &self.inner.obs {
            o.update_ledger_gauges(&pending);
        }
        PendingRequest {
            inner: self.inner.clone(),
            request: rid,
        }
    }

    /// Distribute `payload` to every worker down the request's aggregation
    /// tree (the one-to-many extension the paper sketches in Section 5):
    /// the master sends one copy per root box (or per direct worker when no
    /// boxes are deployed); boxes replicate to their children over their
    /// high-bandwidth links.
    pub fn broadcast(&self, request: u64, payload: Bytes) -> Result<(), AggError> {
        let rid = RequestId(request);
        for tree_id in trees_for_request(&self.inner, rid) {
            let Some(spec) = self.inner.specs.iter().find(|s| s.tree == tree_id) else {
                continue;
            };
            let msg = Message::Broadcast {
                app: self.inner.app,
                request: rid,
                tree: tree_id,
                payload: payload.clone(),
            };
            let mut targets: Vec<NodeId> = spec
                .boxes
                .iter()
                .filter(|b| b.parent == Parent::Master && b.expected_sources() > 0)
                .map(|b| b.addr)
                .collect();
            targets.extend(
                spec.direct_workers
                    .iter()
                    .map(|w| crate::tree::worker_addr(self.inner.app, *w)),
            );
            for t in targets {
                send_ctrl(&self.inner, t, msg.encode()).map_err(AggError::from)?;
            }
        }
        Ok(())
    }

    /// React to a confirmed root-box failure (called by the failure
    /// detector): *move* the box's behind-sources into direct-to-master
    /// ledger entries, for the route (future requests) and every
    /// in-flight request. Idempotent under repeated detector firings,
    /// straggler redirects racing the detector, and replayed duplicates.
    pub fn on_child_box_failed(&self, tree: TreeId, failed_box: u32) {
        // Lock order: pending before routes (matches the reader path).
        let mut pending = self.inner.pending.lock();
        let mut routes = self.inner.routes.lock();
        let Some(r) = routes.get_mut(&tree) else {
            return;
        };
        // Route-level idempotency: only the first firing finds the entry.
        let Some(info) = r.child_boxes.remove(&failed_box) else {
            return;
        };
        r.owed.remove(&SourceId::Box(failed_box));
        for s in &info.behind_sources {
            r.owed.insert(*s);
        }
        // Adopt the failed box's child boxes so a later failure of one
        // of them re-points as well (double-kill chains).
        for (id, child) in &info.child_boxes {
            r.child_boxes.entry(*id).or_insert_with(|| child.clone());
        }
        drop(routes);
        let behind: Vec<(TreeId, SourceId)> =
            info.behind_sources.iter().map(|s| (tree, *s)).collect();
        let mut repointed = 0u64;
        let mut completed = 0u64;
        for (rid, p) in pending.iter_mut() {
            if p.complete {
                continue;
            }
            match p.ledger.repoint((tree, SourceId::Box(failed_box)), &behind) {
                RepointOutcome::Moved { .. } | RepointOutcome::DuplicateSuppressed => {
                    repointed += 1;
                    // Mark the adoption in the request's trace: the span
                    // tree stays connected across the failure because the
                    // replayed chunks' fresh ctx re-attaches here.
                    if let (Some(o), Some(t)) = (&self.inner.obs, p.trace) {
                        let now = trace::now_ns();
                        o.tracer.record_span(
                            names::spans::MASTER_REPOINT,
                            &o.component,
                            t.trace_id,
                            o.tracer.next_span_id(),
                            t.trace_id,
                            rid.0,
                            now,
                            now,
                        );
                    }
                }
                RepointOutcome::AlreadyRepointed | RepointOutcome::NotOwed => {}
            }
            if p.ledger.is_complete() {
                p.complete = true;
                completed += 1;
            }
        }
        if let Some(o) = &self.inner.obs {
            // Count the route transition even when no request was in
            // flight, so the audit trail always records the failure.
            o.repoints.add(repointed.max(1));
            o.requests_completed.add(completed);
            o.registry.emit(
                names::EVENT_REPOINT,
                format!(
                    "master shim (app {}) re-pointed failed box {} on tree {} \
                     across {} in-flight requests",
                    self.inner.app.0, failed_box, tree.0, repointed
                ),
            );
            o.update_ledger_gauges(&pending);
        }
        if completed > 0 {
            self.inner.cv.notify_all();
        }
    }

    /// The master shim's transport address.
    pub fn addr(&self) -> NodeId {
        self.inner.addr
    }

    /// Stop all shim threads: cancel the token (waking blocked accepts,
    /// reads and `wait` condvar sleepers immediately) and join the scope
    /// under its deadline. Idempotent.
    pub fn shutdown(&self) {
        self.inner.cancel.cancel();
        self.scope.finish();
        // Requests abandoned mid-flight never reach the `wait` success
        // path, so their root span would be missing and every hop span of
        // the trace would dangle. Close them start → now so partial traces
        // still form one connected tree (DESIGN.md §11). Completed entries
        // already recorded their root in `wait`.
        if let Some(o) = &self.inner.obs {
            let mut pending = self.inner.pending.lock();
            for (rid, p) in pending.drain() {
                if let Some(t) = p.trace.filter(|_| !p.complete) {
                    o.tracer.record_span(
                        names::spans::MASTER_REQUEST,
                        &o.component,
                        t.trace_id,
                        t.trace_id,
                        0,
                        rid.0,
                        t.start_ns,
                        trace::now_ns(),
                    );
                }
            }
        }
    }
}

/// Send a control frame over a cached per-destination connection,
/// redialling once on a stale connection (the agg-box egress idiom).
fn send_ctrl(inner: &Inner, dest: NodeId, frame: Bytes) -> Result<(), NetError> {
    let mut conns = inner.ctrl_conns.lock();
    let mut last = NetError::NotFound(dest);
    for _ in 0..2 {
        let conn = match conns.entry(dest) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: the cache lock serializes racing dials to one per destination
                match inner.transport.connect(inner.addr, dest) {
                    Ok(c) => v.insert(c),
                    Err(e) => {
                        last = e;
                        continue;
                    }
                }
            }
        };
        // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: the first send must precede any racing redial that would replace the cached conn
        match conn.send(frame.clone()) {
            Ok(()) => return Ok(()),
            Err(e) => {
                conns.remove(&dest); // stale connection: redial once
                last = e;
            }
        }
    }
    Err(last)
}

impl Drop for MasterShim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl PendingRequest {
    /// Block until the fully aggregated result is available.
    pub fn wait(&self, timeout: Duration) -> Result<AggregatedResult, AggError> {
        let deadline = Instant::now() + timeout;
        let mut pending = self.inner.pending.lock();
        loop {
            if self.inner.cancel.is_cancelled() {
                return Err(AggError::Shutdown);
            }
            let p = pending
                .get(&self.request)
                .ok_or_else(|| AggError::Net("request not registered".into()))?;
            if p.complete {
                let p = pending.remove(&self.request).unwrap();
                // Remember the delivery (bounded memory) so late replayed
                // chunks cannot resurrect the request. Lock order:
                // pending before delivered, matching the reader path.
                {
                    let mut delivered = self.inner.delivered.lock();
                    delivered.0.push_back(self.request);
                    delivered.1.insert(self.request);
                    if delivered.0.len() > DELIVERED_MEMORY {
                        if let Some(old) = delivered.0.pop_front() {
                            delivered.1.remove(&old);
                        }
                    }
                }
                drop(pending);
                if let Some(o) = &self.inner.obs {
                    // Registration → fully merged result, as the unmodified
                    // master logic experiences it.
                    o.request_wait_us.record_duration(p.registered_at.elapsed());
                    o.emulated_empties
                        .add(p.expected_workers.saturating_sub(1) as u64);
                }
                // Final aggregation step across tree roots / direct workers
                // (Section 3.1: with multiple trees the master merges the
                // roots' results). Chunks from contributors the ledger
                // ignored (a box that streamed partials and then failed,
                // with its workers replaying) are dropped here: exact
                // duplicate suppression.
                let kept: Vec<Bytes> = p
                    .inputs
                    .iter()
                    .filter(|(k, _)| !p.ledger.is_ignored(k))
                    .map(|(_, b)| b.clone())
                    .collect();
                let master_inputs = kept.len();
                let master_input_bytes = kept.iter().map(Bytes::len).sum();
                let combined = self.inner.agg.aggregate_serialized(kept)?;
                // Close the request's root span: registration → fully
                // merged result. Its span id is the trace id itself, so
                // every hop recorded anywhere hangs below this one.
                if let (Some(o), Some(t)) = (&self.inner.obs, p.trace) {
                    o.tracer.record_span(
                        names::spans::MASTER_REQUEST,
                        &o.component,
                        t.trace_id,
                        t.trace_id,
                        0,
                        self.request.0,
                        t.start_ns,
                        trace::now_ns(),
                    );
                }
                return Ok(AggregatedResult {
                    combined,
                    emulated_empty: p.expected_workers.saturating_sub(1),
                    empty_payload: self.inner.agg.empty_serialized(),
                    master_inputs,
                    master_input_bytes,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(AggError::Timeout);
            }
            self.inner.cv.wait_for(pending.inner(), deadline - now);
        }
    }

    /// The request this handle tracks.
    pub fn request_id(&self) -> u64 {
        self.request.0
    }
}

/// Trees that carry data for a request under the configured selection.
fn trees_for_request(inner: &Inner, request: RequestId) -> Vec<TreeId> {
    match inner.cfg.selection {
        TreeSelection::PerRequest => vec![per_request_tree(request, inner.num_trees)],
        TreeSelection::Keyed => (0..inner.num_trees).map(TreeId).collect(),
    }
}

/// Provision per-request state with a fan-in ledger seeded from the
/// current routing table (the owed contributor set of every tree the
/// request uses). Callers hold the pending lock; this takes routes
/// (lock order: pending before routes).
fn fresh_pending(inner: &Inner, request: RequestId) -> Pending {
    let routes = inner.routes.lock();
    let mut owed: Vec<(TreeId, SourceId)> = Vec::new();
    for tree in trees_for_request(inner, request) {
        if let Some(r) = routes.get(&tree) {
            owed.extend(r.owed.iter().map(|s| (tree, *s)));
        }
    }
    let trace = inner.obs.as_ref().and_then(|o| {
        o.tracer.sampled(request.0).then(|| PendingTrace {
            trace_id: trace::trace_id(inner.app.0, request.0),
            start_ns: trace::now_ns(),
        })
    });
    Pending {
        expected_workers: 0,
        ledger: FanInLedger::new(owed),
        inputs: Vec::new(),
        registered_at: Instant::now(),
        first_data: None,
        complete: false,
        trace,
    }
}

fn reader_loop(inner: &Arc<Inner>, mut conn: Box<dyn Connection>) {
    loop {
        let frame = match conn.recv_cancellable(&inner.cancel) {
            Ok(f) => f,
            Err(NetError::Timeout) => continue,
            Err(_) => return, // cancelled, peer closed, or transport error
        };
        let Ok(msg) = Message::decode(frame) else {
            continue;
        };
        match msg {
            Message::Data {
                app,
                request,
                tree,
                source,
                seq,
                last,
                ctx,
                sent_ns,
                payload,
            } => {
                if app != inner.app {
                    continue;
                }
                let mut recv_span: Option<(u64, u64)> = None;
                if let Some(o) = &inner.obs {
                    o.messages_in.inc();
                    o.bytes_in.add(payload.len() as u64);
                    // Stitch the final hop: sender stamp → arrival here.
                    if ctx.is_active() && o.tracer.enabled() {
                        let now = trace::now_ns();
                        let wire = o.tracer.next_span_id();
                        o.tracer.record_span(
                            names::spans::WIRE_TRANSFER,
                            &o.component,
                            ctx.trace_id,
                            wire,
                            ctx.parent_span_id,
                            request.0,
                            sent_ns.min(now),
                            now,
                        );
                        recv_span = Some((wire, now));
                    }
                }
                let mut pending = inner.pending.lock();
                // A chunk for an already-delivered request (a worker
                // replaying after the waiter reaped the result) is a
                // duplicate; seeding a fresh ledger for it would complete
                // the request a second time. Lock order: pending before
                // delivered, matching the reap in `PendingRequest::wait`.
                if inner.delivered.lock().1.contains(&request) {
                    if let Some(o) = &inner.obs {
                        o.duplicates_dropped.inc();
                    }
                    continue;
                }
                // Unregistered requests are recorded (the data may arrive
                // before register_request on another thread); the ledger
                // is seeded from the routing table either way.
                let p = pending
                    .entry(request)
                    .or_insert_with(|| fresh_pending(inner, request));
                if p.complete {
                    continue;
                }
                let key = (tree, source);
                match p.ledger.accept_chunk(key, seq) {
                    ChunkDisposition::Ignored | ChunkDisposition::Duplicate => {
                        if let Some(o) = &inner.obs {
                            o.duplicates_dropped.inc();
                        }
                        continue;
                    }
                    ChunkDisposition::Fresh { .. } => {}
                }
                p.first_data.get_or_insert_with(Instant::now);
                if !payload.is_empty() {
                    p.inputs.push((key, payload));
                }
                if last {
                    p.ledger.note_end(key);
                    if p.ledger.is_complete() {
                        p.complete = true;
                        if let Some(o) = &inner.obs {
                            o.requests_completed.inc();
                        }
                        inner.cv.notify_all();
                    }
                }
                if let Some(o) = &inner.obs {
                    o.update_ledger_gauges(&pending);
                    // Ingest span for accepted chunks (duplicates keep only
                    // the wire-transfer span above).
                    if let Some((wire, start)) = recv_span {
                        o.tracer.record_span(
                            names::spans::MASTER_RECV,
                            &o.component,
                            ctx.trace_id,
                            o.tracer.next_span_id(),
                            wire,
                            request.0,
                            start,
                            trace::now_ns(),
                        );
                    }
                }
            }
            Message::Heartbeat { nonce, .. } => {
                let _ = conn.send(
                    Message::HeartbeatAck {
                        from: u32::MAX,
                        nonce,
                    }
                    .encode(),
                );
            }
            _ => {}
        }
    }
}

/// Straggler bypass at the master, mirroring the agg-box logic: a root box
/// that contributed nothing within the threshold (while other data flowed)
/// is bypassed for that request.
fn straggler_loop(inner: &Arc<Inner>) {
    // Hierarchical thresholds: the master waits longer than the boxes so
    // box-level bypass (closer to the data) resolves stragglers first.
    let threshold = inner.cfg.straggler_threshold.expect("monitor enabled") * 4;
    loop {
        if inner.cancel.wait_timeout(threshold / 4) {
            return;
        }
        let mut redirects: Vec<(RequestId, TreeId, Vec<NodeId>)> = Vec::new();
        {
            // Lock order: pending before routes (matches fresh_pending).
            let mut pending = inner.pending.lock();
            let routes = inner.routes.lock();
            for (request, p) in pending.iter_mut() {
                if p.complete || p.registered_at.elapsed() < threshold {
                    continue;
                }
                for tree in trees_for_request(inner, *request) {
                    let Some(route) = routes.get(&tree) else {
                        continue;
                    };
                    for (box_id, info) in &route.child_boxes {
                        let key = (tree, SourceId::Box(*box_id));
                        if p.ledger.has_seen(&key) || p.ledger.was_repointed(&key) {
                            continue;
                        }
                        let behind: Vec<(TreeId, SourceId)> =
                            info.behind_sources.iter().map(|s| (tree, *s)).collect();
                        // Per-request bypass shares the re-point transition
                        // (and its idempotency) with the failure path.
                        if let RepointOutcome::Moved { .. } = p.ledger.repoint(key, &behind) {
                            redirects.push((*request, tree, info.children_addrs.clone()));
                        }
                    }
                }
            }
        }
        for (request, tree, children) in redirects {
            if let Some(o) = &inner.obs {
                o.master_bypasses.inc();
                o.registry.emit_for_request(
                    names::EVENT_STRAGGLER,
                    format!(
                        "master shim (app {}) bypassed a root box for request {} tree {}",
                        inner.app.0, request.0, tree.0
                    ),
                    request.0,
                );
            }
            let msg = Message::Redirect {
                app: inner.app,
                permanent: false,
                request,
                tree,
                new_parent: inner.addr,
            };
            for child in children {
                let _ = send_ctrl(inner, child, msg.encode());
            }
        }
        // Bypass may complete requests whose other sources already ended.
        let mut pending = inner.pending.lock();
        let mut completed = false;
        for p in pending.values_mut() {
            if p.complete {
                continue;
            }
            if p.ledger.is_complete() {
                p.complete = true;
                completed = true;
                if let Some(o) = &inner.obs {
                    o.requests_completed.inc();
                }
            }
        }
        if let Some(o) = &inner.obs {
            o.update_ledger_gauges(&pending);
        }
        if completed {
            inner.cv.notify_all();
        }
    }
}
