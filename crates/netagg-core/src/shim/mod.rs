//! Shim layers: transparent interception of application data flows
//! (Section 3.2.2).
//!
//! The paper wraps Java sockets so applications redirect traffic to agg
//! boxes without modification. In this Rust reproduction the shims are
//! explicit objects with the same responsibilities: the [`WorkerShim`]
//! redirects partial results to the worker's first on-path agg box (and
//! handles redirects from failure/straggler recovery via a replay buffer);
//! the [`MasterShim`] tracks per-request state, performs the final
//! cross-tree aggregation and emulates the empty per-worker results the
//! master application logic expects.

mod master;
mod worker;

pub use master::{AggregatedResult, MasterShim, MasterShimConfig, PendingRequest};
pub use worker::{TreeSelection, WorkerShim, WorkerStats};
