//! Worker-side shim layer.

use crate::lifecycle::{
    CancelToken, JoinScope, Mailbox, MailboxRecvTimeoutError, OrderedMutex, OrderedRwLock,
    OverflowPolicy, DEFAULT_JOIN_DEADLINE,
};
use crate::protocol::{AppId, Message, RequestId, SourceId, TreeId};
use crate::tree::{box_addr, master_addr, worker_addr, TreeSpec};
use crate::AggError;
use bytes::Bytes;
use netagg_net::lock_order;
use netagg_net::{Connection, NetError, NodeId, Transport};
use netagg_obs::trace::{self, TraceCtx, TraceRecorder};
use netagg_obs::{names, Counter, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Depth of the broadcast delivery mailbox. An application that does not
/// consume broadcasts keeps only the newest `BROADCAST_DEPTH` payloads
/// (`DropOldest`); delivery never blocks the control reader.
const BROADCAST_DEPTH: usize = 256;

/// How partial results are spread over multiple aggregation trees
/// (Section 3.1, "Multiple aggregation trees per application").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeSelection {
    /// The whole request uses one tree chosen by hashing the request id
    /// (online services such as search).
    PerRequest,
    /// Each chunk picks its tree from a caller-provided key hash (batch
    /// applications partition by key); `finish_request` closes every tree.
    Keyed,
}

/// Worker-shim counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Payload bytes sent (excluding protocol framing).
    pub bytes_sent: AtomicU64,
    /// Data chunks sent.
    pub chunks_sent: AtomicU64,
    /// Chunks resent after redirects (failure/straggler recovery).
    pub chunks_resent: AtomicU64,
    /// Redirect messages received.
    pub redirects: AtomicU64,
    /// Broadcast messages received off the wire (counted before the
    /// bounded delivery mailbox applies its drop policy, so tests can wait
    /// for arrival independently of eviction).
    pub broadcasts_received: AtomicU64,
}

/// Pre-resolved `shim.worker.*` metric handles.
struct WorkerObs {
    chunks_sent: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    chunks_resent: Arc<Counter>,
    redirects_applied: Arc<Counter>,
    tracer: Arc<TraceRecorder>,
    /// Component label for recorded spans, e.g. `worker-0-2`.
    component: String,
}

impl WorkerObs {
    fn new(registry: &MetricsRegistry, app: AppId, worker: u32) -> Self {
        Self {
            chunks_sent: registry.counter(names::SHIM_WORKER_CHUNKS_SENT),
            bytes_sent: registry.counter(names::SHIM_WORKER_BYTES_SENT),
            chunks_resent: registry.counter(names::SHIM_WORKER_CHUNKS_RESENT),
            redirects_applied: registry.counter(names::SHIM_WORKER_REDIRECTS_APPLIED),
            tracer: registry.tracer(),
            component: format!("worker-{}-{}", app.0, worker),
        }
    }
}

/// Replay entries kept for straggler/failure resends.
#[derive(Clone)]
struct SentChunk {
    tree: TreeId,
    seq: u32,
    last: bool,
    payload: Bytes,
}

struct Inner {
    app: AppId,
    worker: u32,
    addr: NodeId,
    transport: Arc<dyn Transport>,
    selection: TreeSelection,
    num_trees: u32,
    /// Destination per tree: the worker's first on-path box, or the master.
    assignments: OrderedRwLock<HashMap<TreeId, NodeId>>,
    conns: OrderedMutex<HashMap<NodeId, Box<dyn Connection>>>,
    seqs: OrderedMutex<HashMap<RequestId, u32>>,
    replay: OrderedMutex<ReplayBuffer>,
    /// Broadcasts received down the tree, delivered to the application
    /// through a bounded `DropOldest` mailbox (a non-consuming application
    /// keeps the newest [`BROADCAST_DEPTH`] payloads).
    broadcasts: Mailbox<(u64, Bytes)>,
    stats: WorkerStats,
    obs: Option<WorkerObs>,
    cancel: CancelToken,
}

struct ReplayBuffer {
    per_request: HashMap<RequestId, Vec<SentChunk>>,
    order: VecDeque<RequestId>,
    capacity: usize,
}

impl ReplayBuffer {
    fn record(&mut self, request: RequestId, chunk: SentChunk) {
        if !self.per_request.contains_key(&request) {
            self.order.push_back(request);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.per_request.remove(&old);
                }
            }
        }
        self.per_request.entry(request).or_default().push(chunk);
    }
}

/// The worker-side shim: intercepts outgoing partial results and redirects
/// them to the assigned agg box.
pub struct WorkerShim {
    inner: Arc<Inner>,
    scope: JoinScope,
}

impl WorkerShim {
    /// Start a worker shim: binds the worker's address (to receive
    /// redirects) and derives tree assignments from the specs.
    pub fn start(
        transport: Arc<dyn Transport>,
        app: AppId,
        worker: u32,
        specs: &[TreeSpec],
        selection: TreeSelection,
    ) -> Result<Arc<Self>, NetError> {
        Self::start_with_obs(transport, app, worker, specs, selection, None)
    }

    /// Like [`WorkerShim::start`], but additionally publishing
    /// `shim.worker.*` metrics to `obs`.
    pub fn start_with_obs(
        transport: Arc<dyn Transport>,
        app: AppId,
        worker: u32,
        specs: &[TreeSpec],
        selection: TreeSelection,
        obs: Option<MetricsRegistry>,
    ) -> Result<Arc<Self>, NetError> {
        let addr = worker_addr(app, worker);
        let mut assignments = HashMap::new();
        for spec in specs {
            let dest = match spec.worker_assignment.get(&worker) {
                Some(b) => box_addr(*b),
                None => master_addr(app),
            };
            assignments.insert(spec.tree, dest);
        }
        let mut listener = transport.bind(addr)?;
        let cancel = CancelToken::new();
        let scope = JoinScope::with_obs(
            format!("worker-shim-{}-{}", app.0, worker),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            obs.as_ref(),
        );
        let mailbox_name = format!("worker{}-{}.broadcast", app.0, worker);
        let broadcasts = match &obs {
            Some(reg) => Mailbox::with_obs(
                mailbox_name,
                BROADCAST_DEPTH,
                OverflowPolicy::DropOldest,
                cancel.clone(),
                reg,
            ),
            None => Mailbox::new(
                mailbox_name,
                BROADCAST_DEPTH,
                OverflowPolicy::DropOldest,
                cancel.clone(),
            ),
        };
        let inner = Arc::new(Inner {
            app,
            worker,
            addr,
            transport,
            selection,
            num_trees: specs.len() as u32,
            assignments: OrderedRwLock::new(lock_order::WORKER_ASSIGNMENTS, assignments),
            conns: OrderedMutex::new(lock_order::WORKER_CONNS, HashMap::new()),
            seqs: OrderedMutex::new(lock_order::WORKER_SEQS, HashMap::new()),
            replay: OrderedMutex::new(
                lock_order::WORKER_REPLAY,
                ReplayBuffer {
                    per_request: HashMap::new(),
                    order: VecDeque::new(),
                    capacity: 64,
                },
            ),
            broadcasts,
            stats: WorkerStats::default(),
            obs: obs.as_ref().map(|reg| WorkerObs::new(reg, app, worker)),
            cancel,
        });
        let shim = Arc::new(Self {
            inner: inner.clone(),
            scope,
        });
        {
            // Accept control connections (redirects, broadcasts) and spawn
            // a named reader per connection into the scope.
            let shim2 = Arc::downgrade(&shim);
            let inner = inner.clone();
            shim.scope
                .spawn(format!("worker-shim-{}-{}", app.0, worker), move || loop {
                    match listener.accept_cancellable(&inner.cancel) {
                        Ok(conn) => {
                            if let Some(s) = shim2.upgrade() {
                                let inner = inner.clone();
                                s.scope
                                    .spawn(
                                        format!(
                                            "worker-shim-{}-{}-ctrl",
                                            inner.app.0, inner.worker
                                        ),
                                        move || control_loop(&inner, conn),
                                    )
                                    .expect("spawn worker shim control reader");
                            }
                        }
                        Err(NetError::Timeout) => continue,
                        Err(_) => return, // cancelled or listener torn down
                    }
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        Ok(shim)
    }

    /// The worker this shim serves.
    pub fn worker_id(&self) -> u32 {
        self.inner.worker
    }

    /// Counters exposed for the harness and tests.
    pub fn stats(&self) -> &WorkerStats {
        &self.inner.stats
    }

    /// Send a complete partial result for a request (single chunk).
    pub fn send_partial(&self, request: u64, payload: Bytes) -> Result<(), AggError> {
        self.send_chunk(request, payload, true)
    }

    /// Send a large partial result split into `chunk_bytes`-sized chunks
    /// (the payload must be splittable at byte granularity only if the
    /// application's deserialiser can handle it — for record-oriented data
    /// prefer chunking at record boundaries and calling `send_chunk`).
    pub fn send_partial_chunked(
        &self,
        request: u64,
        payload: Bytes,
        chunk_bytes: usize,
    ) -> Result<(), AggError> {
        assert!(chunk_bytes > 0);
        if payload.len() <= chunk_bytes {
            return self.send_chunk(request, payload, true);
        }
        let mut offset = 0;
        while offset < payload.len() {
            let end = (offset + chunk_bytes).min(payload.len());
            let last = end == payload.len();
            self.send_chunk(request, payload.slice(offset..end), last)?;
            offset = end;
        }
        Ok(())
    }

    /// Send one chunk; `last` closes this worker's contribution on the
    /// request's tree. Only valid under [`TreeSelection::PerRequest`].
    pub fn send_chunk(&self, request: u64, payload: Bytes, last: bool) -> Result<(), AggError> {
        assert_eq!(
            self.inner.selection,
            TreeSelection::PerRequest,
            "use send_chunk_keyed / finish_request under Keyed selection"
        );
        let request = RequestId(request);
        let tree = per_request_tree(request, self.inner.num_trees);
        self.inner.send_on_tree(request, tree, payload, last)
    }

    /// Send one chunk on the tree selected by `key_hash` (Keyed mode).
    pub fn send_chunk_keyed(
        &self,
        request: u64,
        key_hash: u64,
        payload: Bytes,
    ) -> Result<(), AggError> {
        assert_eq!(self.inner.selection, TreeSelection::Keyed);
        let request = RequestId(request);
        let tree = TreeId((key_hash % self.inner.num_trees as u64) as u32);
        self.inner.send_on_tree(request, tree, payload, false)
    }

    /// Close this worker's contribution on every tree (Keyed mode).
    pub fn finish_request(&self, request: u64) -> Result<(), AggError> {
        assert_eq!(self.inner.selection, TreeSelection::Keyed);
        let request = RequestId(request);
        for t in 0..self.inner.num_trees {
            self.inner
                .send_on_tree(request, TreeId(t), Bytes::new(), true)?;
        }
        Ok(())
    }

    /// Drop replay state for a completed request.
    pub fn complete_request(&self, request: u64) {
        let request = RequestId(request);
        let mut replay = self.inner.replay.lock();
        replay.per_request.remove(&request);
        replay.order.retain(|r| *r != request);
        self.inner.seqs.lock().remove(&request);
    }

    /// Current destination for a tree (exposed for tests).
    pub fn assignment(&self, tree: TreeId) -> Option<NodeId> {
        self.inner.assignments.read().get(&tree).copied()
    }

    /// Re-send a request's buffered chunks to the current assignments with
    /// their original sequence numbers. This is what a speculative backup
    /// task's duplicate output looks like on the wire: the agg box's
    /// per-source duplicate suppression drops the copies (Section 3.1,
    /// "Handling stragglers"/Hadoop speculative execution).
    pub fn resend_request(&self, request: u64) {
        let request = RequestId(request);
        let trees: Vec<(TreeId, NodeId)> = self
            .inner
            .assignments
            .read()
            .iter()
            .map(|(t, d)| (*t, *d))
            .collect();
        for (tree, dest) in trees {
            self.inner.resend(Some(request), tree, dest);
        }
    }

    /// Receive the next broadcast distributed down the tree (the paper's
    /// one-to-many extension): returns `(request id, payload)`.
    pub fn recv_broadcast(&self, timeout: Duration) -> Result<(u64, Bytes), AggError> {
        match self.inner.broadcasts.recv_timeout(timeout) {
            Ok(v) => Ok(v),
            Err(MailboxRecvTimeoutError::Timeout) => Err(AggError::Timeout),
            Err(_) => Err(AggError::Shutdown), // cancelled or closed
        }
    }

    /// Stop the shim's threads: cancel the token (waking blocked accepts,
    /// control reads and broadcast receivers immediately) and join the
    /// scope under its deadline. Idempotent.
    pub fn shutdown(&self) {
        self.inner.cancel.cancel();
        self.scope.finish();
    }
}

impl Drop for WorkerShim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tree used by a whole request under per-request selection. Master and
/// workers must agree, so this tiny hash is shared.
pub(crate) fn per_request_tree(request: RequestId, num_trees: u32) -> TreeId {
    TreeId((crate::protocol_hash(request.0) % num_trees.max(1) as u64) as u32)
}

impl Inner {
    fn send_on_tree(
        &self,
        request: RequestId,
        tree: TreeId,
        payload: Bytes,
        last: bool,
    ) -> Result<(), AggError> {
        let dest = self
            .assignments
            .read()
            .get(&tree)
            .copied()
            .ok_or_else(|| AggError::Net(format!("no assignment for tree {}", tree.0)))?;
        let seq = {
            let mut seqs = self.seqs.lock();
            let s = seqs.entry(request).or_insert(0);
            *s += 1;
            *s
        };
        let chunk = SentChunk {
            tree,
            seq,
            last,
            payload: payload.clone(),
        };
        self.replay.lock().record(request, chunk);
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.stats.chunks_sent.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.bytes_sent.add(payload.len() as u64);
            o.chunks_sent.inc();
        }
        self.send_data(
            dest,
            request,
            tree,
            seq,
            last,
            payload,
            names::spans::WORKER_SEND,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn send_data(
        &self,
        dest: NodeId,
        request: RequestId,
        tree: TreeId,
        seq: u32,
        last: bool,
        payload: Bytes,
        span_name: &'static str,
    ) -> Result<(), AggError> {
        // Per-chunk trace context: the worker is the leaf of the causal
        // tree, so the chunk's parent on the wire is this send span and the
        // send span's own parent is the request root (trace id).
        let span = self.obs.as_ref().and_then(|o| {
            o.tracer.sampled(request.0).then(|| {
                let tid = trace::trace_id(self.app.0, request.0);
                (tid, o.tracer.next_span_id(), trace::now_ns())
            })
        });
        let (ctx, sent_ns) = match span {
            Some((tid, span_id, start_ns)) => (
                TraceCtx {
                    trace_id: tid,
                    parent_span_id: span_id,
                },
                start_ns,
            ),
            None => (TraceCtx::NONE, 0),
        };
        let msg = Message::Data {
            app: self.app,
            request,
            tree,
            source: SourceId::Worker(self.worker),
            seq,
            last,
            ctx,
            sent_ns,
            payload,
        };
        let frame = msg.encode();
        let result = (|| {
            let mut conns = self.conns.lock();
            for attempt in 0..2 {
                let conn = match conns.entry(dest) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: the cache lock serializes racing dials to one per destination
                        match self.transport.connect(self.addr, dest) {
                            Ok(c) => v.insert(c),
                            Err(e) => {
                                if attempt == 1 {
                                    return Err(e.into());
                                }
                                continue;
                            }
                        }
                    }
                };
                // netagg-lint: allow(no-block-while-locked) deliberate §15 exception: the first send must precede any racing redial that would replace the cached conn
                match conn.send(frame.clone()) {
                    Ok(()) => return Ok(()),
                    Err(_) => {
                        conns.remove(&dest);
                    }
                }
            }
            Err(AggError::Net(format!("send to {dest} failed")))
        })();
        if let (Some((tid, span_id, start_ns)), Some(o)) = (span, &self.obs) {
            o.tracer.record_span(
                span_name,
                &o.component,
                tid,
                span_id,
                tid,
                request.0,
                start_ns,
                trace::now_ns(),
            );
        }
        result
    }

    /// Resend the replay buffer for one request (or all) to a new parent.
    fn resend(&self, request: Option<RequestId>, tree: TreeId, dest: NodeId) {
        let replay = self.replay.lock();
        let targets: Vec<(RequestId, Vec<SentChunk>)> = replay
            .per_request
            .iter()
            .filter(|(r, _)| request.map(|want| **r == want).unwrap_or(true))
            .map(|(r, cs)| (*r, cs.clone()))
            .collect();
        drop(replay);
        for (req, chunks) in targets {
            for c in chunks.into_iter().filter(|c| c.tree == tree) {
                self.stats.chunks_resent.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &self.obs {
                    o.chunks_resent.inc();
                }
                let _ = self.send_data(
                    dest,
                    req,
                    c.tree,
                    c.seq,
                    c.last,
                    c.payload,
                    names::spans::WORKER_RESEND,
                );
            }
        }
    }
}

fn control_loop(inner: &Arc<Inner>, mut conn: Box<dyn Connection>) {
    loop {
        let frame = match conn.recv_cancellable(&inner.cancel) {
            Ok(f) => f,
            Err(NetError::Timeout) => continue,
            Err(_) => return, // cancelled, peer closed, or transport error
        };
        let Ok(msg) = Message::decode(frame) else {
            continue;
        };
        match msg {
            Message::Redirect {
                app,
                permanent,
                request,
                tree,
                new_parent,
            } => {
                if app != inner.app {
                    continue;
                }
                inner.stats.redirects.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &inner.obs {
                    o.redirects_applied.inc();
                }
                if permanent {
                    inner.assignments.write().insert(tree, new_parent);
                    // Resend everything still buffered on that tree so
                    // requests in flight at the failed box recover.
                    inner.resend(None, tree, new_parent);
                } else {
                    inner.resend(Some(request), tree, new_parent);
                }
            }
            Message::Heartbeat { nonce, .. } => {
                let _ = conn.send(
                    Message::HeartbeatAck {
                        from: inner.worker,
                        nonce,
                    }
                    .encode(),
                );
            }
            Message::Broadcast {
                app,
                request,
                payload,
                ..
            } if app == inner.app => {
                inner
                    .stats
                    .broadcasts_received
                    .fetch_add(1, Ordering::Relaxed);
                // DropOldest: never blocks; a non-consuming application
                // keeps only the newest BROADCAST_DEPTH payloads.
                let _ = inner.broadcasts.send((request.0, payload));
            }
            _ => {}
        }
    }
}
