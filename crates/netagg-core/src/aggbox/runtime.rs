//! The agg box runtime: network layer, per-request local aggregation
//! trees, duplicate suppression, straggler bypass and redirect handling.
//!
//! One `AggBox` hosts the aggregation functions of many applications. Data
//! messages are demultiplexed per `(app, request, tree)` into a
//! [`LocalAggTree`] whose combine tasks run on the box's cooperative
//! [`TaskScheduler`]; the finished aggregate is forwarded to the tree
//! parent (next box or master) by a dedicated egress thread over
//! persistent connections.

use crate::aggbox::scheduler::{SchedulerConfig, TaskScheduler};
use crate::aggbox::tree::{LocalAggTree, TraceTarget};
use crate::ledger::{ChunkDisposition, FanInLedger, RepointOutcome};
use crate::lifecycle::{
    CancelToken, JoinScope, Mailbox, OrderedMutex, OrderedRwLock, OverflowPolicy,
    DEFAULT_JOIN_DEADLINE,
};
use crate::protocol::{AppId, Message, RequestId, SourceId, TreeId};
use crate::DynAggregator;
use bytes::Bytes;
use netagg_net::lock_order;
use netagg_net::{Connection, NetError, NodeId, Transport};
use netagg_obs::trace::{self, TraceCtx, TraceRecorder};
use netagg_obs::{names, Counter, Histogram, MetricsRegistry};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Depth of the egress mailbox. Completion callbacks run on scheduler pool
/// threads, so the egress queue must never block them: overflow drops the
/// oldest message and the drop is metric-accounted (DESIGN.md §9).
const EGRESS_DEPTH: usize = 4096;

/// Configuration of one agg box.
#[derive(Debug, Clone)]
pub struct AggBoxConfig {
    /// Global logical id (must match the tree specs).
    pub box_id: u32,
    /// Transport address to bind.
    pub addr: NodeId,
    /// Cooperative task scheduler options.
    pub scheduler: SchedulerConfig,
    /// Local aggregation tree fan-in.
    pub fanin: usize,
    /// How long a request may go without data from an expected source
    /// (after its first data arrived) before the box bypasses that source's
    /// box (straggler handling). `None` disables.
    pub straggler_threshold: Option<Duration>,
    /// After this many straggler events, a child box is treated as failed.
    pub straggler_repeat_limit: u32,
    /// Stream partial aggregates downstream once a request has buffered
    /// this many bytes, instead of holding the whole request in memory
    /// (`None` = emit only the final aggregate).
    pub flush_bytes: Option<usize>,
    /// Metrics registry the box (and its scheduler) publishes to
    /// (`aggbox.*`, `straggler.*`). `None` disables metrics.
    pub obs: Option<MetricsRegistry>,
}

impl AggBoxConfig {
    /// Default configuration for a box with the given id and address.
    pub fn new(box_id: u32, addr: NodeId) -> Self {
        Self {
            box_id,
            addr,
            scheduler: SchedulerConfig::default(),
            fanin: 8,
            straggler_threshold: None,
            straggler_repeat_limit: 3,
            flush_bytes: None,
            obs: None,
        }
    }
}

/// Information about one child box of this box within a tree, used by the
/// straggler/failure machinery. The structure is recursive: when a child
/// box fails, its parent *adopts* the grandchild box infos so a later
/// failure of one of those can be re-pointed too (chained failures).
#[derive(Debug, Clone, Default)]
pub struct ChildBoxInfo {
    /// The logical sources feeding that child (its direct children:
    /// workers and boxes). On failure these move into the parent's owed
    /// set (see `crate::ledger::FanInLedger::repoint`).
    pub behind_sources: Vec<SourceId>,
    /// Transport addresses of its children (workers and boxes).
    pub children_addrs: Vec<NodeId>,
    /// The child's own child boxes, adopted on its failure.
    pub child_boxes: HashMap<u32, ChildBoxInfo>,
}

impl ChildBoxInfo {
    /// Build the recursive info for `box_id` within `spec`, resolving
    /// worker addresses for one application.
    pub fn from_spec(spec: &crate::tree::TreeSpec, app: AppId, box_id: u32) -> Self {
        let child_boxes = spec
            .tree_box(box_id)
            .map(|tb| {
                tb.box_children
                    .iter()
                    .map(|c| (*c, ChildBoxInfo::from_spec(spec, app, *c)))
                    .collect()
            })
            .unwrap_or_default();
        Self {
            behind_sources: spec.children_sources(box_id),
            children_addrs: spec.children_addrs(app, box_id),
            child_boxes,
        }
    }
}

/// Per-(app, tree) routing state installed at deployment time.
#[derive(Debug, Clone)]
pub struct RouteInstall {
    /// Application the route belongs to.
    pub app: AppId,
    /// Tree the route belongs to.
    pub tree: TreeId,
    /// Where this box's output goes (next box or master shim address).
    pub parent: NodeId,
    /// The distinct sources expected per request (workers and child
    /// boxes). Requests seed their fan-in ledger from this set.
    pub owed: Vec<SourceId>,
    /// Child boxes by global box id.
    pub child_boxes: HashMap<u32, ChildBoxInfo>,
    /// Addresses of this box's direct children (workers and boxes), used
    /// to replicate broadcasts down the tree.
    pub children_addrs: Vec<NodeId>,
}

struct Route {
    parent: NodeId,
    owed: HashSet<SourceId>,
    child_boxes: HashMap<u32, ChildBoxInfo>,
    children_addrs: Vec<NodeId>,
}

/// Trace anchor of one sampled request at this box: the per-request span
/// every local span (queue wait, combine, forward, repoint) parents to.
#[derive(Debug, Clone, Copy)]
struct ReqTrace {
    trace_id: u64,
    /// The `span.box.request` span id (recorded at completion).
    span_id: u64,
    /// First-data arrival on the shared monotonic axis.
    start_ns: u64,
}

struct ReqState {
    tree: Arc<LocalAggTree>,
    /// Sequence number of the next outgoing chunk (streaming flushes).
    out_seq: u32,
    first_data: Instant,
    /// Set-based accounting of which sources are still owed (replaces the
    /// old counter + `expected_extra` arithmetic; see DESIGN.md §8).
    ledger: FanInLedger<SourceId>,
    input_closed: bool,
    /// `Some` when the request is trace-sampled (DESIGN.md §11).
    trace: Option<ReqTrace>,
}

/// Bounded FIFO of recently emitted request output chunks (kept so a late
/// per-request redirect can resend everything that went to a slow or dead
/// parent).
struct OutReplay {
    map: HashMap<(AppId, RequestId, TreeId), Vec<Bytes>>,
    order: std::collections::VecDeque<(AppId, RequestId, TreeId)>,
    capacity: usize,
}

impl OutReplay {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
        }
    }

    fn record(&mut self, key: (AppId, RequestId, TreeId), payload: Bytes) {
        use std::collections::hash_map::Entry;
        match self.map.entry(key) {
            Entry::Occupied(mut e) => e.get_mut().push(payload),
            Entry::Vacant(v) => {
                v.insert(vec![payload]);
                self.order.push_back(key);
                while self.order.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.map.remove(&old);
                    }
                }
            }
        }
    }

    fn get(&self, key: &(AppId, RequestId, TreeId)) -> Option<Vec<Bytes>> {
        self.map.get(key).cloned()
    }

    /// Every retained entry for `(app, tree)`, in emission order — the
    /// resend set for a permanent re-point (the old parent died and may
    /// have taken any of these with it).
    fn matching(&self, app: AppId, tree: TreeId) -> Vec<(RequestId, Vec<Bytes>)> {
        self.order
            .iter()
            .filter(|(a, _, t)| *a == app && *t == tree)
            .filter_map(|k| self.map.get(k).map(|c| (k.1, c.clone())))
            .collect()
    }
}

/// Pre-resolved metric handles mirroring [`BoxStats`] into a
/// [`MetricsRegistry`] (plus latency and event streams the legacy counters
/// do not carry).
struct BoxObs {
    messages_in: std::sync::Arc<Counter>,
    bytes_in: std::sync::Arc<Counter>,
    requests_completed: std::sync::Arc<Counter>,
    duplicates_dropped: std::sync::Arc<Counter>,
    send_errors: std::sync::Arc<Counter>,
    request_agg_us: std::sync::Arc<Histogram>,
    straggler_redirects: std::sync::Arc<Counter>,
    straggler_escalations: std::sync::Arc<Counter>,
    repoints: std::sync::Arc<Counter>,
    tracer: Arc<TraceRecorder>,
    /// Component label for box-side spans, e.g. `aggbox-2`.
    component: Arc<str>,
    /// Component label for scheduler-task spans, e.g. `aggbox-2-sched`.
    component_sched: Arc<str>,
    registry: MetricsRegistry,
}

impl BoxObs {
    fn new(registry: MetricsRegistry, box_id: u32) -> Self {
        Self {
            messages_in: registry.counter(names::AGGBOX_MESSAGES_IN),
            bytes_in: registry.counter(names::AGGBOX_BYTES_IN),
            requests_completed: registry.counter(names::AGGBOX_REQUESTS_COMPLETED),
            duplicates_dropped: registry.counter(names::AGGBOX_DUPLICATES_DROPPED),
            send_errors: registry.counter(names::AGGBOX_SEND_ERRORS),
            request_agg_us: registry.histogram(names::AGGBOX_REQUEST_AGG_US),
            straggler_redirects: registry.counter(names::STRAGGLER_REDIRECTS),
            straggler_escalations: registry.counter(names::STRAGGLER_ESCALATIONS),
            repoints: registry.counter(names::AGGBOX_REPOINTS),
            tracer: registry.tracer(),
            component: format!("aggbox-{box_id}").into(),
            component_sched: format!("aggbox-{box_id}-sched").into(),
            registry,
        }
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Default)]
pub struct BoxStats {
    /// Payload bytes received.
    pub bytes_in: AtomicU64,
    /// Protocol messages received.
    pub messages_in: AtomicU64,
    /// Requests whose final aggregate was forwarded.
    pub requests_completed: AtomicU64,
    /// Data chunks dropped by duplicate suppression.
    pub duplicates_dropped: AtomicU64,
    /// Straggler bypasses issued for child boxes.
    pub straggler_redirects: AtomicU64,
    /// Egress sends that failed after retry.
    pub send_errors: AtomicU64,
}

/// Point-in-time view of one agg box (see [`AggBox::snapshot`]).
#[derive(Debug, Clone)]
pub struct BoxSnapshot {
    /// Global logical id of the box.
    pub box_id: u32,
    /// Payload bytes received so far.
    pub bytes_in: u64,
    /// Protocol messages received so far.
    pub messages_in: u64,
    /// Requests whose final aggregate was forwarded.
    pub requests_completed: u64,
    /// Chunks dropped by duplicate suppression.
    pub duplicates_dropped: u64,
    /// Straggler bypasses issued.
    pub straggler_redirects: u64,
    /// Egress sends that failed after retry.
    pub send_errors: u64,
    /// Requests with open state right now.
    pub active_requests: usize,
    /// Bytes buffered across all local aggregation trees right now.
    pub buffered_bytes: usize,
    /// Aggregation tasks waiting for a pool thread right now.
    pub tasks_queued: usize,
    /// Per-application CPU accounting.
    pub apps: Vec<crate::aggbox::scheduler::AppCpu>,
}

struct Inner {
    cfg: AggBoxConfig,
    transport: Arc<dyn Transport>,
    scheduler: Arc<TaskScheduler>,
    apps: OrderedRwLock<HashMap<AppId, Arc<dyn DynAggregator>>>,
    routes: OrderedRwLock<HashMap<(AppId, TreeId), Route>>,
    states: OrderedMutex<HashMap<(AppId, RequestId, TreeId), ReqState>>,
    /// Per-request output redirections (straggler bypass upstream of us).
    out_redirects: OrderedMutex<HashMap<(AppId, RequestId, TreeId), NodeId>>,
    /// Recently completed outputs, kept so a late per-request redirect can
    /// resend an aggregate that already went to the (slow or dead) parent.
    out_replay: OrderedMutex<OutReplay>,
    /// Straggler event counts per child box.
    straggler_counts: OrderedMutex<HashMap<u32, u32>>,
    /// Bounded hand-off to the egress thread (`DropOldest`: completion
    /// callbacks run on scheduler threads and must never block here).
    egress: Mailbox<(NodeId, Message)>,
    cancel: CancelToken,
    stats: BoxStats,
    obs: Option<BoxObs>,
}

/// A running agg box.
pub struct AggBox {
    inner: Arc<Inner>,
    scope: JoinScope,
}

impl AggBox {
    /// Bind the box's address and start its listener, egress and straggler
    /// threads.
    pub fn start(transport: Arc<dyn Transport>, cfg: AggBoxConfig) -> Result<Arc<Self>, NetError> {
        let mut listener = transport.bind(cfg.addr)?;
        let cancel = CancelToken::new();
        let box_id = cfg.box_id;
        let scope = JoinScope::with_obs(
            format!("aggbox-{box_id}"),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            cfg.obs.as_ref(),
        );
        let egress = match &cfg.obs {
            Some(reg) => Mailbox::with_obs(
                format!("aggbox{box_id}.egress"),
                EGRESS_DEPTH,
                OverflowPolicy::DropOldest,
                cancel.clone(),
                reg,
            ),
            None => Mailbox::new(
                format!("aggbox{box_id}.egress"),
                EGRESS_DEPTH,
                OverflowPolicy::DropOldest,
                cancel.clone(),
            ),
        };
        let scheduler = Arc::new(TaskScheduler::new_with_obs(
            cfg.scheduler.clone(),
            cfg.obs.clone(),
        ));
        let obs = cfg.obs.clone().map(|reg| BoxObs::new(reg, box_id));
        let inner = Arc::new(Inner {
            cfg,
            transport: transport.clone(),
            scheduler,
            apps: OrderedRwLock::new(lock_order::AGG_APPS, HashMap::new()),
            routes: OrderedRwLock::new(lock_order::AGG_ROUTES, HashMap::new()),
            states: OrderedMutex::new(lock_order::AGG_STATES, HashMap::new()),
            out_redirects: OrderedMutex::new(lock_order::AGG_OUT_REDIRECTS, HashMap::new()),
            out_replay: OrderedMutex::new(lock_order::AGG_OUT_REPLAY, OutReplay::new(64)),
            straggler_counts: OrderedMutex::new(lock_order::AGG_STRAGGLER, HashMap::new()),
            egress,
            cancel,
            stats: BoxStats::default(),
            obs,
        });
        let boxed = Arc::new(Self {
            inner: inner.clone(),
            scope,
        });
        // Listener thread: accepts connections and spawns a reader each.
        {
            let this = Arc::downgrade(&boxed);
            let inner = inner.clone();
            boxed
                .scope
                .spawn(format!("aggbox-{box_id}-listen"), move || loop {
                    match listener.accept_cancellable(&inner.cancel) {
                        Ok(conn) => {
                            if let Some(strong) = this.upgrade() {
                                strong.spawn_reader(conn);
                            }
                        }
                        Err(NetError::Timeout) => continue,
                        Err(_) => return, // cancelled or listener torn down
                    }
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        // Egress thread.
        {
            let inner = inner.clone();
            boxed
                .scope
                .spawn(format!("aggbox-{box_id}-egress"), move || {
                    egress_loop(&inner)
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        // Streaming flusher.
        if inner.cfg.flush_bytes.is_some() {
            let inner = inner.clone();
            boxed
                .scope
                .spawn(format!("aggbox-{box_id}-flush"), move || flush_loop(&inner))
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        // Straggler monitor.
        if inner.cfg.straggler_threshold.is_some() {
            let inner = inner.clone();
            boxed
                .scope
                .spawn(format!("aggbox-{box_id}-straggler"), move || {
                    straggler_loop(&inner)
                })
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        Ok(boxed)
    }

    /// Register an application's aggregation function with a target
    /// resource share.
    pub fn register_app(&self, app: AppId, agg: Arc<dyn DynAggregator>, share: f64) {
        self.inner.scheduler.register_app(app, share);
        self.inner.apps.write().insert(app, agg);
    }

    /// Install routing for one (application, tree).
    pub fn install_route(&self, route: RouteInstall) {
        self.inner.routes.write().insert(
            (route.app, route.tree),
            Route {
                parent: route.parent,
                owed: route.owed.into_iter().collect(),
                child_boxes: route.child_boxes,
                children_addrs: route.children_addrs,
            },
        );
    }

    /// React to a confirmed failure of a child box: future requests expect
    /// that box's children directly (the failure detector has already told
    /// them to re-point here), and every in-flight request's ledger moves
    /// the box's obligations onto its behind-sources. Idempotent under
    /// repeated detector firings.
    pub fn on_child_box_failed(&self, app: AppId, tree: TreeId, failed_box: u32) {
        child_box_failed(&self.inner, app, tree, failed_box);
    }

    /// Counters exposed for the harness and tests.
    pub fn stats(&self) -> &BoxStats {
        &self.inner.stats
    }

    /// A point-in-time observability snapshot: counters, live request
    /// state, scheduler accounting — what a production middlebox would
    /// export to its metrics endpoint.
    pub fn snapshot(&self) -> BoxSnapshot {
        let states = self.inner.states.lock();
        let active_requests = states.len();
        let buffered_bytes: usize = states.values().map(|s| s.tree.pending_bytes()).sum();
        drop(states);
        BoxSnapshot {
            box_id: self.inner.cfg.box_id,
            bytes_in: self.inner.stats.bytes_in.load(Ordering::Relaxed),
            messages_in: self.inner.stats.messages_in.load(Ordering::Relaxed),
            requests_completed: self.inner.stats.requests_completed.load(Ordering::Relaxed),
            duplicates_dropped: self.inner.stats.duplicates_dropped.load(Ordering::Relaxed),
            straggler_redirects: self.inner.stats.straggler_redirects.load(Ordering::Relaxed),
            send_errors: self.inner.stats.send_errors.load(Ordering::Relaxed),
            active_requests,
            buffered_bytes,
            tasks_queued: self.inner.scheduler.queued(),
            apps: self.inner.scheduler.cpu_times(),
        }
    }

    /// The box's cooperative task scheduler.
    pub fn scheduler(&self) -> &Arc<TaskScheduler> {
        &self.inner.scheduler
    }

    /// Transport address the box is bound to.
    pub fn addr(&self) -> NodeId {
        self.inner.cfg.addr
    }

    /// Global logical id of the box.
    pub fn box_id(&self) -> u32 {
        self.inner.cfg.box_id
    }

    /// Stop all threads: cancel the box's token (waking every blocked
    /// accept, recv and egress dequeue immediately) and join the scope
    /// under its deadline. Idempotent.
    pub fn shutdown(&self) {
        self.inner.cancel.cancel();
        self.scope.finish();
        // Requests still open at teardown never reach `on_complete`, so
        // their box request span would never be recorded — and the
        // queue-wait / combine spans parented beneath it would be orphans.
        // Close them start → now, so a box killed mid-request still leaves
        // one connected trace tree (DESIGN.md §11).
        if let Some(o) = &self.inner.obs {
            let mut states = self.inner.states.lock();
            for ((_, request, _), st) in states.drain() {
                if let Some(rt) = st.trace {
                    o.tracer.record_span(
                        names::spans::BOX_REQUEST,
                        &o.component,
                        rt.trace_id,
                        rt.span_id,
                        rt.trace_id,
                        request.0,
                        rt.start_ns,
                        trace::now_ns(),
                    );
                }
            }
        }
    }

    fn spawn_reader(self: &Arc<Self>, conn: Box<dyn Connection>) {
        let inner = self.inner.clone();
        // After cancellation the scope drops the closure instead of
        // spawning: a connection accepted during teardown is simply closed.
        self.scope
            .spawn(format!("aggbox-{}-reader", inner.cfg.box_id), move || {
                reader_loop(&inner, conn)
            })
            .expect("spawn reader");
    }
}

impl Drop for AggBox {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reader_loop(inner: &Arc<Inner>, mut conn: Box<dyn Connection>) {
    loop {
        let frame = match conn.recv_cancellable(&inner.cancel) {
            Ok(f) => f,
            Err(NetError::Timeout) => continue,
            Err(_) => return, // cancelled, peer closed, or transport error
        };
        let msg = match Message::decode(frame) {
            Ok(m) => m,
            Err(_) => continue, // corrupt frame: drop
        };
        match msg {
            Message::Data {
                app,
                request,
                tree,
                source,
                seq,
                last,
                ctx,
                sent_ns,
                payload,
            } => handle_data(
                inner, app, request, tree, source, seq, last, ctx, sent_ns, payload,
            ),
            Message::RequestMeta {
                app,
                request,
                tree,
                // The master's root-span ctx rides along for completeness;
                // box-side spans parent to the trace id directly because
                // meta may arrive after the first data chunk (DESIGN.md §11).
                ctx: _,
                sources,
            } => {
                let to_close = {
                    let mut states = inner.states.lock();
                    let st = get_or_create(inner, &mut states, app, request, tree);
                    match st {
                        Some(st) => {
                            st.ledger.set_requirement(sources);
                            maybe_close_input(&mut states, app, request, tree)
                        }
                        None => None,
                    }
                };
                close_input(inner, to_close, app);
            }
            Message::Redirect {
                app,
                permanent,
                request,
                tree,
                new_parent,
            } => {
                if permanent {
                    {
                        let mut routes = inner.routes.write();
                        if let Some(r) = routes.get_mut(&(app, tree)) {
                            r.parent = new_parent;
                        }
                    }
                    // The old parent is dead (this is the detector's
                    // re-point): any output this box already forwarded to
                    // it died with it, and the workers behind this box will
                    // not replay those chunks — the box absorbed and acked
                    // their partials. Resend the retained replay window.
                    // Held states lock: a request with live state is still
                    // open here (its completion resolves its destination
                    // only after removing the state, so it will see the
                    // route update above) — resend only its flushed chunks,
                    // keeping their original seqs and never `last`, or the
                    // real final chunk would be suppressed as a duplicate
                    // seq upstream. A request without state (or whose final
                    // chunk is already recorded past `out_seq`) is fully in
                    // the window and replays with `last` intact; delivered
                    // requests are deduped upstream by per-source seqs and
                    // the master's delivered-id memory.
                    let resend: Vec<(RequestId, Vec<Bytes>, bool)> = {
                        let states = inner.states.lock();
                        inner
                            .out_replay
                            .lock()
                            .matching(app, tree)
                            .into_iter()
                            .map(|(rid, chunks)| {
                                let finished = match states.get(&(app, rid, tree)) {
                                    Some(st) => chunks.len() as u32 > st.out_seq,
                                    None => true,
                                };
                                (rid, chunks, finished)
                            })
                            .collect()
                    };
                    for (rid, chunks, finished) in resend {
                        resend_replay(inner, app, rid, tree, new_parent, chunks, finished);
                    }
                } else {
                    inner
                        .out_redirects
                        .lock()
                        .insert((app, request, tree), new_parent);
                    // If the request already completed here, resend its
                    // aggregate to the new parent (the old parent was slow
                    // or dead and the output may be lost with it).
                    if let Some(chunks) = inner.out_replay.lock().get(&(app, request, tree)) {
                        resend_replay(inner, app, request, tree, new_parent, chunks, true);
                    }
                }
            }
            Message::Broadcast {
                app,
                request,
                tree,
                payload,
            } => {
                // Replicate down the tree: one copy per direct child. The
                // replication happens over the box's high-bandwidth link,
                // which is the point of on-path distribution.
                let children = {
                    let routes = inner.routes.read();
                    routes
                        .get(&(app, tree))
                        .map(|r| r.children_addrs.clone())
                        .unwrap_or_default()
                };
                for child in children {
                    let _ = inner.egress.send((
                        child,
                        Message::Broadcast {
                            app,
                            request,
                            tree,
                            payload: payload.clone(),
                        },
                    ));
                }
            }
            Message::Heartbeat { from: _, nonce } => {
                let ack = Message::HeartbeatAck {
                    from: inner.cfg.box_id,
                    nonce,
                };
                let _ = conn.send(ack.encode());
            }
            Message::HeartbeatAck { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_data(
    inner: &Arc<Inner>,
    app: AppId,
    request: RequestId,
    tree: TreeId,
    source: SourceId,
    seq: u32,
    last: bool,
    ctx: TraceCtx,
    sent_ns: u64,
    payload: Bytes,
) {
    inner.stats.messages_in.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .bytes_in
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    let mut recv_span: Option<(u64, u64)> = None; // (wire/recv parent chain tail, start_ns)
    if let Some(o) = &inner.obs {
        o.messages_in.inc();
        o.bytes_in.add(payload.len() as u64);
        // Stitch the hop: the sender's ctx parents a wire-transfer span
        // (sender stamp → arrival) and the ingest work below hangs off it.
        if ctx.is_active() && o.tracer.enabled() {
            let now = trace::now_ns();
            let wire = o.tracer.next_span_id();
            o.tracer.record_span(
                names::spans::WIRE_TRANSFER,
                &o.component,
                ctx.trace_id,
                wire,
                ctx.parent_span_id,
                request.0,
                sent_ns.min(now),
                now,
            );
            recv_span = Some((wire, now));
        }
    }
    let to_close = {
        let mut states = inner.states.lock();
        let Some(st) = get_or_create(inner, &mut states, app, request, tree) else {
            return; // unknown app or route
        };
        // Ledger-side duplicate suppression: re-pointed-away sources and
        // replayed sequence numbers are both dropped here.
        match st.ledger.accept_chunk(source, seq) {
            ChunkDisposition::Ignored | ChunkDisposition::Duplicate => {
                inner
                    .stats
                    .duplicates_dropped
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &inner.obs {
                    o.duplicates_dropped.inc();
                }
                return;
            }
            ChunkDisposition::Fresh { .. } => {}
        }
        if !payload.is_empty() {
            let tree_ref = st.tree.clone();
            // LocalAggTree has its own fine-grained lock; push never blocks.
            tree_ref.push(&inner.scheduler, app, payload);
        }
        if last {
            st.ledger.note_end(source);
            maybe_close_input(&mut states, app, request, tree)
        } else {
            None
        }
    };
    close_input(inner, to_close, app);
    // Ingest span for accepted chunks: arrival → ledger/tree hand-off done
    // (duplicates and unknown routes keep only the wire-transfer span).
    if let (Some((wire, start)), Some(o)) = (recv_span, &inner.obs) {
        o.tracer.record_span(
            names::spans::BOX_RECV,
            &o.component,
            ctx.trace_id,
            o.tracer.next_span_id(),
            wire,
            request.0,
            start,
            trace::now_ns(),
        );
    }
}

/// Run `end_input` outside the states lock: completion may fire the
/// forwarding callback, which re-locks `states` for cleanup.
fn close_input(inner: &Arc<Inner>, tree: Option<Arc<LocalAggTree>>, app: AppId) {
    if let Some(t) = tree {
        t.end_input(&inner.scheduler, app);
    }
}

/// Resend one request's retained output chunks to `new_parent` after a
/// redirect (per-request straggler redirect or permanent failure
/// re-point). The replayed chunks re-attach at the trace root (the
/// deterministic trace id); the adopting parent's wire/recv spans hang off
/// that fresh ctx. `finished` marks whether the retained chunks include
/// the request's final output: only then may the resend carry `last` —
/// for a still-open request the real final chunk follows under the next
/// seq, and a premature `last` here would close the source early.
fn resend_replay(
    inner: &Arc<Inner>,
    app: AppId,
    request: RequestId,
    tree: TreeId,
    new_parent: NodeId,
    chunks: Vec<Bytes>,
    finished: bool,
) {
    let ctx = match &inner.obs {
        Some(o) if o.tracer.sampled(request.0) => {
            let tid = trace::trace_id(app.0, request.0);
            TraceCtx {
                trace_id: tid,
                parent_span_id: tid,
            }
        }
        _ => TraceCtx::NONE,
    };
    let sent_ns = if ctx.is_active() { trace::now_ns() } else { 0 };
    let n = chunks.len();
    for (i, payload) in chunks.into_iter().enumerate() {
        let _ = inner.egress.send((
            new_parent,
            Message::Data {
                app,
                request,
                tree,
                source: SourceId::Box(inner.cfg.box_id),
                seq: i as u32,
                last: finished && i + 1 == n,
                ctx,
                sent_ns,
                payload,
            },
        ));
    }
}

/// Check whether all owed sources have delivered; if so, mark the input
/// closed and return the tree so the caller can call `end_input` *after
/// releasing the states lock* (completion may re-lock `states`).
#[must_use]
fn maybe_close_input(
    states: &mut HashMap<(AppId, RequestId, TreeId), ReqState>,
    app: AppId,
    request: RequestId,
    tree: TreeId,
) -> Option<Arc<LocalAggTree>> {
    let st = states.get_mut(&(app, request, tree))?;
    if st.input_closed {
        return None;
    }
    if st.ledger.is_complete() {
        st.input_closed = true;
        Some(st.tree.clone())
    } else {
        None
    }
}

/// Shared failure re-point path: update the steady-state route (future
/// requests owe the failed box's children directly, and its grandchild
/// boxes are adopted for chained failures), then move the obligations of
/// every in-flight request's ledger. Lock order: states before routes
/// (matches `straggler_loop`).
fn child_box_failed(inner: &Arc<Inner>, app: AppId, tree: TreeId, failed_box: u32) {
    let mut to_close = Vec::new();
    let mut repointed = 0u64;
    {
        let mut states = inner.states.lock();
        let info = {
            let mut routes = inner.routes.write();
            let Some(r) = routes.get_mut(&(app, tree)) else {
                return;
            };
            // Absent entry = already handled (repeated detector firing or a
            // straggler escalation that raced the failure detector).
            let Some(info) = r.child_boxes.remove(&failed_box) else {
                return;
            };
            r.owed.remove(&SourceId::Box(failed_box));
            for s in &info.behind_sources {
                r.owed.insert(*s);
            }
            for (id, gi) in &info.child_boxes {
                r.child_boxes.insert(*id, gi.clone());
            }
            info
        };
        for ((a, req, t), st) in states.iter_mut() {
            if *a != app || *t != tree || st.input_closed {
                continue;
            }
            match st
                .ledger
                .repoint(SourceId::Box(failed_box), &info.behind_sources)
            {
                RepointOutcome::Moved { .. } | RepointOutcome::DuplicateSuppressed => {
                    repointed += 1;
                    // Mark the adoption inside the request's trace so the
                    // stitched tree shows where obligations moved.
                    if let (Some(o), Some(rt)) = (&inner.obs, st.trace) {
                        let now = trace::now_ns();
                        o.tracer.record_span(
                            names::spans::BOX_REPOINT,
                            &o.component,
                            rt.trace_id,
                            o.tracer.next_span_id(),
                            rt.span_id,
                            req.0,
                            now,
                            now,
                        );
                    }
                }
                RepointOutcome::AlreadyRepointed | RepointOutcome::NotOwed => {}
            }
            if st.ledger.is_complete() {
                st.input_closed = true;
                to_close.push((*req, st.tree.clone()));
            }
        }
    }
    if let Some(o) = &inner.obs {
        o.repoints.add(repointed.max(1));
        o.registry.emit(
            names::EVENT_REPOINT,
            format!(
                "box {} re-pointed failed child box {failed_box} for app {} tree {} \
                 ({repointed} in-flight requests moved)",
                inner.cfg.box_id, app.0, tree.0
            ),
        );
    }
    for (_, t) in to_close {
        close_input(inner, Some(t), app);
    }
}

/// Create the request state (and its completion forwarding) on first data.
fn get_or_create<'a>(
    inner: &Arc<Inner>,
    states: &'a mut HashMap<(AppId, RequestId, TreeId), ReqState>,
    app: AppId,
    request: RequestId,
    tree: TreeId,
) -> Option<&'a mut ReqState> {
    use std::collections::hash_map::Entry;
    match states.entry((app, request, tree)) {
        Entry::Occupied(e) => Some(e.into_mut()),
        Entry::Vacant(v) => {
            let agg = inner.apps.read().get(&app)?.clone();
            // Seed the fan-in ledger from the route's current owed set (a
            // box that already failed permanently is no longer owed; its
            // children are).
            let owed: Vec<SourceId> = {
                let routes = inner.routes.read();
                routes.get(&(app, tree))?.owed.iter().copied().collect()
            };
            let ltree = LocalAggTree::new(agg, inner.cfg.fanin);
            // Trace anchor: one `span.box.request` per sampled request,
            // parented directly to the trace root (RequestMeta — and hence
            // the master's root span id — may arrive after the first data).
            let req_trace = inner.obs.as_ref().and_then(|o| {
                o.tracer.sampled(request.0).then(|| {
                    let rt = ReqTrace {
                        trace_id: trace::trace_id(app.0, request.0),
                        span_id: o.tracer.next_span_id(),
                        start_ns: trace::now_ns(),
                    };
                    ltree.set_trace(TraceTarget {
                        tracer: o.tracer.clone(),
                        trace_id: rt.trace_id,
                        parent_span_id: rt.span_id,
                        request: request.0,
                        component: o.component_sched.clone(),
                    });
                    rt
                })
            });
            let weak: Weak<Inner> = Arc::downgrade(inner);
            ltree.on_complete(Box::new(move |result| {
                let Some(inner) = weak.upgrade() else { return };
                let Ok(payload) = result else { return };
                let (seq, first_data, req_trace) = inner
                    .states
                    .lock()
                    .get(&(app, request, tree))
                    .map(|st| (st.out_seq, Some(st.first_data), st.trace))
                    .unwrap_or((0, None, None));
                // Outgoing hop ctx: the chunk's wire span parents to this
                // box's forward span. `sent_ns` is stamped here, at message
                // construction, so the receiver's wire-transfer span also
                // covers time spent queued behind the egress thread.
                let (ctx, sent_ns, forward_span) = match (&inner.obs, req_trace) {
                    (Some(o), Some(rt)) => {
                        let fs = o.tracer.next_span_id();
                        (
                            TraceCtx {
                                trace_id: rt.trace_id,
                                parent_span_id: fs,
                            },
                            trace::now_ns(),
                            Some((rt, fs)),
                        )
                    }
                    _ => (TraceCtx::NONE, 0, None),
                };
                let msg = Message::Data {
                    app,
                    request,
                    tree,
                    source: SourceId::Box(inner.cfg.box_id),
                    seq,
                    last: true,
                    ctx,
                    sent_ns,
                    payload: payload.clone(),
                };
                // Count the completion before handing the aggregate to the
                // egress thread: observers polling after the master saw the
                // result must find the counter already incremented.
                inner
                    .stats
                    .requests_completed
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &inner.obs {
                    o.requests_completed.inc();
                    if let Some(t0) = first_data {
                        // First data byte in → final aggregate out.
                        o.request_agg_us.record_duration(t0.elapsed());
                    }
                    if let Some((rt, fs)) = forward_span {
                        let now = trace::now_ns();
                        // The box's whole residency for this request:
                        // first data in → final aggregate handed to egress.
                        o.tracer.record_span(
                            names::spans::BOX_REQUEST,
                            &o.component,
                            rt.trace_id,
                            rt.span_id,
                            rt.trace_id,
                            request.0,
                            rt.start_ns,
                            now,
                        );
                        o.tracer.record_span(
                            names::spans::BOX_FORWARD,
                            &o.component,
                            rt.trace_id,
                            fs,
                            rt.span_id,
                            request.0,
                            sent_ns,
                            now,
                        );
                    }
                }
                inner
                    .out_replay
                    .lock()
                    .record((app, request, tree), payload);
                // Clean up the request state (also before the egress
                // hand-off, for the same observer-visibility reason).
                inner.states.lock().remove(&(app, request, tree));
                // Resolve the destination only AFTER the final chunk is in
                // the replay window and the state is gone: the permanent
                // re-point handler treats a state-less request as fully
                // recorded, and conversely a completion that still had
                // state while the re-point snapshotted is guaranteed to
                // read the updated route here — either way exactly one
                // `last` chunk reaches a live parent.
                let dest = {
                    let redirects = inner.out_redirects.lock();
                    redirects.get(&(app, request, tree)).copied()
                }
                .or_else(|| inner.routes.read().get(&(app, tree)).map(|r| r.parent));
                inner.out_redirects.lock().remove(&(app, request, tree));
                let Some(dest) = dest else { return };
                let _ = inner.egress.send((dest, msg));
            }));
            Some(v.insert(ReqState {
                tree: ltree,
                out_seq: 0,
                first_data: Instant::now(),
                ledger: FanInLedger::new(owed),
                input_closed: false,
                trace: req_trace,
            }))
        }
    }
}

fn egress_loop(inner: &Arc<Inner>) {
    let mut conns: HashMap<NodeId, Box<dyn Connection>> = HashMap::new();
    loop {
        // Blocks until a message arrives; cancellation wakes it immediately
        // (the mailbox is bound to the box's token).
        let Ok((dest, msg)) = inner.egress.recv() else {
            return; // cancelled or closed
        };
        let frame = msg.encode();
        let mut sent = false;
        for attempt in 0..2 {
            let conn = match conns.entry(dest) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    match inner.transport.connect(inner.cfg.addr, dest) {
                        Ok(c) => v.insert(c),
                        Err(_) => {
                            if attempt == 1 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                    }
                }
            };
            match conn.send(frame.clone()) {
                Ok(()) => {
                    sent = true;
                    break;
                }
                Err(_) => {
                    conns.remove(&dest); // stale connection: redial once
                }
            }
        }
        if !sent {
            inner.stats.send_errors.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &inner.obs {
                o.send_errors.inc();
            }
        }
    }
}

/// Stream partial aggregates downstream for requests whose buffered bytes
/// exceed the flush threshold (Section 3.2.1: the local aggregation tree
/// executes in a pipelined fashion and "little data is buffered").
fn flush_loop(inner: &Arc<Inner>) {
    let threshold = inner.cfg.flush_bytes.expect("flusher enabled");
    loop {
        // Interruptible tick: cancellation ends the sleep (and the loop)
        // immediately.
        if inner.cancel.wait_timeout(Duration::from_millis(10)) {
            return;
        }
        // Collect candidates without holding the states lock across the
        // tree operations.
        let candidates: Vec<((AppId, RequestId, TreeId), Arc<LocalAggTree>)> = {
            let states = inner.states.lock();
            states
                .iter()
                .filter(|(_, st)| !st.input_closed)
                .filter(|(_, st)| st.tree.pending_bytes() >= threshold)
                .map(|(k, st)| (*k, st.tree.clone()))
                .collect()
        };
        for ((app, request, tree_id), tree) in candidates {
            let Some(chunk) = tree.take_partial(&inner.scheduler, app) else {
                continue;
            };
            let dest = {
                let redirects = inner.out_redirects.lock();
                redirects.get(&(app, request, tree_id)).copied()
            }
            .or_else(|| inner.routes.read().get(&(app, tree_id)).map(|r| r.parent));
            let Some(dest) = dest else { continue };
            let (seq, req_trace) = {
                let mut states = inner.states.lock();
                match states.get_mut(&(app, request, tree_id)) {
                    Some(st) => {
                        let s = st.out_seq;
                        st.out_seq += 1;
                        (s, st.trace)
                    }
                    None => continue,
                }
            };
            // Streamed partials are forward hops too: each gets its own
            // forward span under the box's request span.
            let (ctx, sent_ns, forward_span) = match (&inner.obs, req_trace) {
                (Some(o), Some(rt)) => {
                    let fs = o.tracer.next_span_id();
                    (
                        TraceCtx {
                            trace_id: rt.trace_id,
                            parent_span_id: fs,
                        },
                        trace::now_ns(),
                        Some((rt, fs)),
                    )
                }
                _ => (TraceCtx::NONE, 0, None),
            };
            let msg = Message::Data {
                app,
                request,
                tree: tree_id,
                source: SourceId::Box(inner.cfg.box_id),
                seq,
                last: false,
                ctx,
                sent_ns,
                payload: chunk.clone(),
            };
            if let (Some(o), Some((rt, fs))) = (&inner.obs, forward_span) {
                o.tracer.record_span(
                    names::spans::BOX_FORWARD,
                    &o.component,
                    rt.trace_id,
                    fs,
                    rt.span_id,
                    request.0,
                    sent_ns,
                    trace::now_ns(),
                );
            }
            inner
                .out_replay
                .lock()
                .record((app, request, tree_id), chunk);
            let _ = inner.egress.send((dest, msg));
        }
    }
}

/// Periodically bypass straggling child boxes: if a request has received
/// data from some sources but a child box has contributed nothing within
/// the threshold, instruct that box's children to send this request's data
/// directly here, and stop expecting the box (Section 3.1, "Handling
/// stragglers").
fn straggler_loop(inner: &Arc<Inner>) {
    let threshold = inner.cfg.straggler_threshold.expect("monitor enabled");
    loop {
        if inner.cancel.wait_timeout(threshold / 4) {
            return;
        }
        let mut redirects: Vec<(AppId, RequestId, TreeId, u32, Vec<NodeId>)> = Vec::new();
        {
            // Lock order: states before routes (matches child_box_failed).
            let mut states = inner.states.lock();
            let routes = inner.routes.read();
            for ((app, request, tree), st) in states.iter_mut() {
                if st.input_closed
                    || st.first_data.elapsed() < threshold
                    || st.ledger.seen_len() == 0
                {
                    continue;
                }
                let Some(route) = routes.get(&(*app, *tree)) else {
                    continue;
                };
                for (box_id, info) in &route.child_boxes {
                    let src = SourceId::Box(*box_id);
                    if st.ledger.has_seen(&src) || st.ledger.was_repointed(&src) {
                        continue; // it has delivered something, or already bypassed
                    }
                    // Move the straggling box's obligations to its children
                    // for this request only; redirect only when the ledger
                    // actually owed the box (subset requests may not).
                    if let RepointOutcome::Moved { .. } =
                        st.ledger.repoint(src, &info.behind_sources)
                    {
                        redirects.push((
                            *app,
                            *request,
                            *tree,
                            *box_id,
                            info.children_addrs.clone(),
                        ));
                    }
                }
            }
        }
        for (app, request, tree, box_id, children) in redirects {
            inner
                .stats
                .straggler_redirects
                .fetch_add(1, Ordering::Relaxed);
            let mut counts = inner.straggler_counts.lock();
            *counts.entry(box_id).or_insert(0) += 1;
            let escalate = counts[&box_id] >= inner.cfg.straggler_repeat_limit;
            drop(counts);
            if let Some(o) = &inner.obs {
                o.straggler_redirects.inc();
                o.registry.emit(
                    names::EVENT_STRAGGLER,
                    format!(
                        "box {} bypassed child box {box_id} for app {} request {} tree {}{}",
                        inner.cfg.box_id,
                        app.0,
                        request.0,
                        tree.0,
                        if escalate {
                            " (escalated to permanent)"
                        } else {
                            ""
                        },
                    ),
                );
                if escalate {
                    o.straggler_escalations.inc();
                }
            }
            if escalate {
                // Repeated slowness across requests: treat the box as
                // permanently failed (Section 3.1) — its children re-point
                // here, future requests no longer expect it, and in-flight
                // ledgers move its obligations (idempotent with the failure
                // detector firing for the same box).
                child_box_failed(inner, app, tree, box_id);
            }
            let msg = Message::Redirect {
                app,
                permanent: escalate,
                request,
                tree,
                new_parent: inner.cfg.addr,
            };
            for child in children {
                let _ = inner.egress.send((child, msg.clone()));
            }
            // Re-check whether the bypass completes the request (the owed
            // set changed).
            let to_close = {
                let mut states = inner.states.lock();
                maybe_close_input(&mut states, app, request, tree)
            };
            close_input(inner, to_close, app);
        }
    }
}
