//! The agg box: a middlebox node executing application aggregation
//! functions (Section 3.2.1).

pub mod scheduler;
pub mod tree;

pub mod runtime;

pub use runtime::{AggBox, AggBoxConfig, BoxSnapshot, BoxStats, ChildBoxInfo, RouteInstall};
