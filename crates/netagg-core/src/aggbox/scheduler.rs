//! Cooperative task scheduler with adaptive weighted fair queuing
//! (Section 3.2.1 of the paper).
//!
//! Aggregation tasks are run to completion by a fixed-size thread pool.
//! Each application has its own task queue; when a thread frees up it
//! offers itself to application `i` with probability proportional to the
//! application's weight `w_i`.
//!
//! With **fixed** weights (`adaptive = false`), `w_i` equals the target
//! share `s_i`. Because tasks of different applications take different
//! amounts of CPU time, this starves applications with short tasks
//! (Fig. 25). The **adaptive** scheduler divides the weight by a moving
//! average of the measured task execution time,
//! `w_i = s_i / t_i  (normalised)`, which equalises achieved CPU shares
//! (Fig. 26).

use crate::lifecycle::{CancelToken, JoinScope, OrderedMutex, WakerGuard, DEFAULT_JOIN_DEADLINE};
use crate::protocol::AppId;
use netagg_net::lock_order;
use netagg_obs::{names, Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::Condvar;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A unit of aggregation work, run to completion on a pool thread.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Fixed thread-pool size (the paper's agg boxes use one thread per
    /// core).
    pub threads: usize,
    /// Adapt weights by measured task execution time.
    pub adaptive: bool,
    /// Smoothing factor of the execution-time moving average in `(0, 1]`;
    /// higher reacts faster.
    pub ema_alpha: f64,
    /// Deterministic seed for the weighted random pick.
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            adaptive: true,
            ema_alpha: 0.2,
            seed: 0x5eed,
        }
    }
}

struct AppQueue {
    queue: VecDeque<Task>,
    /// Target resource share `s_i`.
    share: f64,
    /// Moving average of task execution time, seconds.
    ema_task_time: f64,
    /// Accumulated CPU time, seconds (for the fairness experiments).
    cpu_time: f64,
    tasks_run: u64,
    /// Tasks that panicked (isolated; the pool thread survives).
    tasks_panicked: u64,
    /// Published effective WFQ weight (`aggbox.wfq_weight.app<N>`).
    wfq_weight: Option<Arc<Gauge>>,
}

/// Pre-resolved metric handles so the hot worker loop never does a name
/// lookup.
struct SchedObs {
    tasks_executed: Arc<Counter>,
    tasks_panicked: Arc<Counter>,
    tasks_dropped: Arc<Counter>,
    task_exec_us: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    registry: MetricsRegistry,
}

impl SchedObs {
    fn new(registry: MetricsRegistry) -> Self {
        Self {
            tasks_executed: registry.counter(names::AGGBOX_TASKS_EXECUTED),
            tasks_panicked: registry.counter(names::AGGBOX_TASKS_PANICKED),
            tasks_dropped: registry.counter(names::AGGBOX_TASKS_DROPPED),
            task_exec_us: registry.histogram(names::AGGBOX_TASK_EXEC_US),
            queue_depth: registry.gauge(names::AGGBOX_QUEUE_DEPTH),
            registry,
        }
    }
}

struct State {
    apps: HashMap<AppId, AppQueue>,
    queued: usize,
    running: usize,
    rng: u64,
}

struct Inner {
    state: OrderedMutex<State>,
    work_cv: Condvar,
    idle_cv: Condvar,
    cancel: CancelToken,
    cfg: SchedulerConfig,
    obs: Option<SchedObs>,
}

/// Per-application CPU accounting snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AppCpu {
    /// The application.
    pub app: AppId,
    /// Accumulated task execution time, seconds.
    pub cpu_seconds: f64,
    /// Tasks executed to completion.
    pub tasks_run: u64,
    /// Tasks that panicked. The paper leaves isolating faulty aggregation
    /// functions to future work; this scheduler contains a panicking task
    /// to its own execution (the pool thread and other applications are
    /// unaffected).
    pub tasks_panicked: u64,
}

/// The agg-box task scheduler.
pub struct TaskScheduler {
    inner: Arc<Inner>,
    workers: JoinScope,
    // Cancellation must wake workers parked on `work_cv`; dropping the
    // scheduler unregisters the waker (held here, not in `Inner`, to
    // avoid a token→waker→Inner→guard→token reference cycle).
    _waker: WakerGuard,
}

impl TaskScheduler {
    /// Start a pool of `cfg.threads` worker threads.
    pub fn new(cfg: SchedulerConfig) -> Self {
        Self::new_with_obs(cfg, None)
    }

    /// Like [`TaskScheduler::new`], but additionally publishing scheduler
    /// metrics (`aggbox.tasks_*`, `aggbox.task_exec_us`,
    /// `aggbox.queue_depth`, `aggbox.wfq_weight.app<N>`) to `obs`.
    pub fn new_with_obs(cfg: SchedulerConfig, obs: Option<MetricsRegistry>) -> Self {
        assert!(cfg.threads > 0);
        assert!(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0);
        let cancel = CancelToken::new();
        let workers = JoinScope::with_obs(
            "aggbox-sched",
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            obs.as_ref(),
        );
        let inner = Arc::new(Inner {
            state: OrderedMutex::new(
                lock_order::SCHED_STATE,
                State {
                    apps: HashMap::new(),
                    queued: 0,
                    running: 0,
                    rng: cfg.seed | 1,
                },
            ),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            cancel,
            cfg: cfg.clone(),
            obs: obs.map(SchedObs::new),
        });
        let wake = inner.clone();
        let waker = inner.cancel.register_waker(move || {
            // Lock-then-notify so a worker between its cancel check and its
            // park cannot miss the wakeup.
            drop(wake.state.lock());
            wake.work_cv.notify_all();
            wake.idle_cv.notify_all();
        });
        for i in 0..cfg.threads {
            let inner = inner.clone();
            workers
                .spawn(format!("aggbox-worker-{i}"), move || worker_loop(&inner))
                .expect("spawn scheduler worker");
        }
        Self {
            inner,
            workers,
            _waker: waker,
        }
    }

    /// Register an application with its target resource share. Shares are
    /// relative (they need not sum to 1).
    pub fn register_app(&self, app: AppId, share: f64) {
        assert!(share > 0.0);
        let wfq_weight = self.inner.obs.as_ref().map(|o| {
            let g = o.registry.gauge(&names::wfq_weight(app.0));
            // Before the first measurement the effective weight equals the
            // configured share (see `weight`'s unmeasured-app handling).
            g.set(share);
            g
        });
        let mut s = self.inner.state.lock();
        s.apps.entry(app).or_insert(AppQueue {
            queue: VecDeque::new(),
            share,
            ema_task_time: 0.0,
            cpu_time: 0.0,
            tasks_run: 0,
            tasks_panicked: 0,
            wfq_weight,
        });
    }

    /// Submit a task for an application. Panics if the app is unknown.
    pub fn submit(&self, app: AppId, task: Task) {
        let mut s = self.inner.state.lock();
        let q = s
            .apps
            .get_mut(&app)
            .unwrap_or_else(|| panic!("app {app:?} not registered"));
        q.queue.push_back(task);
        s.queued += 1;
        if let Some(o) = &self.inner.obs {
            o.queue_depth.set(s.queued as f64);
        }
        drop(s);
        self.inner.work_cv.notify_one();
    }

    /// CPU accounting for all registered applications.
    pub fn cpu_times(&self) -> Vec<AppCpu> {
        let s = self.inner.state.lock();
        let mut v: Vec<AppCpu> = s
            .apps
            .iter()
            .map(|(app, q)| AppCpu {
                app: *app,
                cpu_seconds: q.cpu_time,
                tasks_run: q.tasks_run,
                tasks_panicked: q.tasks_panicked,
            })
            .collect();
        v.sort_by_key(|a| a.app);
        v
    }

    /// Block until no task is queued or running (or the timeout elapses).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.inner.state.lock();
        while s.queued > 0 || s.running > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.idle_cv.wait_for(s.inner(), deadline - now);
        }
        true
    }

    /// Tasks currently queued (not yet running).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queued
    }

    /// Stop the pool, dropping queued tasks. Idempotent. If invoked from a
    /// pool thread (e.g. the last Arc dropping inside a task), that thread
    /// is detached instead of joined.
    pub fn shutdown(&mut self) {
        self.inner.cancel.cancel();
        {
            // Account the tasks this shutdown abandons.
            let mut s = self.inner.state.lock();
            let dropped: usize = s.apps.values_mut().map(|q| q.queue.drain(..).count()).sum();
            s.queued = 0;
            if let Some(o) = &self.inner.obs {
                o.tasks_dropped.add(dropped as u64);
                o.queue_depth.set(0.0);
            }
        }
        self.workers.finish();
    }
}

impl Drop for TaskScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Current weight of an application: `s_i` (fixed) or `s_i / t_i`
/// (adaptive). An app with no measurement yet is treated as having very
/// fast tasks so it is picked promptly and measured — otherwise a measured
/// app's inflated `s/t` weight would starve unmeasured ones forever.
fn weight(cfg: &SchedulerConfig, q: &AppQueue) -> f64 {
    if cfg.adaptive {
        let t = if q.ema_task_time > 0.0 {
            q.ema_task_time
        } else {
            1e-6
        };
        q.share / t
    } else {
        q.share
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut s = inner.state.lock();
            loop {
                if inner.cancel.is_cancelled() {
                    return;
                }
                if s.queued > 0 {
                    break;
                }
                inner.work_cv.wait(s.inner());
            }
            // Weighted random pick among apps with queued work.
            let total: f64 = s
                .apps
                .values()
                .filter(|q| !q.queue.is_empty())
                .map(|q| weight(&inner.cfg, q))
                .sum();
            let mut pick = (xorshift(&mut s.rng) as f64 / u64::MAX as f64) * total;
            let mut chosen: Option<AppId> = None;
            // Iterate in a stable order for determinism given the seed.
            let mut ids: Vec<AppId> = s
                .apps
                .iter()
                .filter(|(_, q)| !q.queue.is_empty())
                .map(|(a, _)| *a)
                .collect();
            ids.sort();
            for a in &ids {
                let w = weight(&inner.cfg, &s.apps[a]);
                if pick < w {
                    chosen = Some(*a);
                    break;
                }
                pick -= w;
            }
            let app = chosen.or(ids.last().copied()).expect("work exists");
            let q = s.apps.get_mut(&app).unwrap();
            let task = q.queue.pop_front().expect("non-empty queue");
            s.queued -= 1;
            s.running += 1;
            if let Some(o) = &inner.obs {
                o.queue_depth.set(s.queued as f64);
            }
            (app, task)
        };
        let (app, task) = task;
        let t0 = Instant::now();
        // Isolate faulty aggregation functions: a panicking task must not
        // take down the pool thread or other applications (the paper lists
        // this isolation as future work; we provide the panic half of it).
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err();
        let elapsed = t0.elapsed();
        let dt = elapsed.as_secs_f64();
        if let Some(o) = &inner.obs {
            o.tasks_executed.inc();
            if panicked {
                o.tasks_panicked.inc();
            }
            o.task_exec_us.record_duration(elapsed);
        }
        let mut s = inner.state.lock();
        s.running -= 1;
        if let Some(q) = s.apps.get_mut(&app) {
            q.cpu_time += dt;
            q.tasks_run += 1;
            q.tasks_panicked += u64::from(panicked);
            q.ema_task_time = if q.ema_task_time == 0.0 {
                dt
            } else {
                (1.0 - inner.cfg.ema_alpha) * q.ema_task_time + inner.cfg.ema_alpha * dt
            };
            if let Some(g) = &q.wfq_weight {
                g.set(weight(&inner.cfg, q));
            }
        }
        if s.queued == 0 && s.running == 0 {
            inner.idle_cv.notify_all();
        }
        drop(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(threads: usize, adaptive: bool) -> SchedulerConfig {
        SchedulerConfig {
            threads,
            adaptive,
            ema_alpha: 0.3,
            seed: 7,
        }
    }

    #[test]
    fn runs_submitted_tasks() {
        let s = TaskScheduler::new(cfg(2, true));
        s.register_app(AppId(1), 1.0);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = counter.clone();
            s.submit(
                AppId(1),
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert!(s.wait_idle(Duration::from_secs(5)));
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        let cpu = s.cpu_times();
        assert_eq!(cpu[0].tasks_run, 50);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_app_panics() {
        let s = TaskScheduler::new(cfg(1, true));
        s.submit(AppId(9), Box::new(|| {}));
    }

    /// The paper's Fig. 25: with fixed weights and equal shares, the app
    /// with longer tasks hogs the CPU.
    #[test]
    fn fixed_weights_starve_short_task_app() {
        let s = TaskScheduler::new(cfg(2, false));
        let long = AppId(1);
        let short = AppId(2);
        s.register_app(long, 1.0);
        s.register_app(short, 1.0);
        // Long tasks: 3 ms; short tasks: 1 ms (the paper's Solr vs Hadoop).
        for _ in 0..150 {
            s.submit(
                long,
                Box::new(|| std::thread::sleep(Duration::from_millis(3))),
            );
            s.submit(
                short,
                Box::new(|| std::thread::sleep(Duration::from_millis(1))),
            );
        }
        assert!(s.wait_idle(Duration::from_secs(30)));
        let cpu = s.cpu_times();
        let t_long = cpu.iter().find(|c| c.app == long).unwrap().cpu_seconds;
        let t_short = cpu.iter().find(|c| c.app == short).unwrap().cpu_seconds;
        let share_long = t_long / (t_long + t_short);
        assert!(
            share_long > 0.65,
            "fixed weights should favour the long-task app, got {share_long}"
        );
    }

    /// The paper's Fig. 26: the adaptive scheduler equalises CPU shares.
    #[test]
    fn adaptive_weights_equalise_cpu_shares() {
        let s = TaskScheduler::new(cfg(2, true));
        let long = AppId(1);
        let short = AppId(2);
        s.register_app(long, 1.0);
        s.register_app(short, 1.0);
        for _ in 0..300 {
            s.submit(
                long,
                Box::new(|| std::thread::sleep(Duration::from_millis(3))),
            );
        }
        for _ in 0..900 {
            s.submit(
                short,
                Box::new(|| std::thread::sleep(Duration::from_millis(1))),
            );
        }
        assert!(s.wait_idle(Duration::from_secs(60)));
        let cpu = s.cpu_times();
        let t_long = cpu.iter().find(|c| c.app == long).unwrap().cpu_seconds;
        let t_short = cpu.iter().find(|c| c.app == short).unwrap().cpu_seconds;
        let share_long = t_long / (t_long + t_short);
        assert!(
            (share_long - 0.5).abs() < 0.15,
            "adaptive weights should equalise shares, got {share_long}"
        );
    }

    #[test]
    fn unequal_shares_are_respected_adaptively() {
        let mut s = TaskScheduler::new(cfg(2, true));
        let a = AppId(1);
        let b = AppId(2);
        s.register_app(a, 3.0);
        s.register_app(b, 1.0);
        // Keep both queues saturated for the whole measurement window, then
        // sample the achieved shares *during* contention.
        for _ in 0..5000 {
            s.submit(a, Box::new(|| std::thread::sleep(Duration::from_millis(1))));
            s.submit(b, Box::new(|| std::thread::sleep(Duration::from_millis(1))));
        }
        std::thread::sleep(Duration::from_millis(500));
        let cpu = s.cpu_times();
        let ta = cpu.iter().find(|c| c.app == a).unwrap().cpu_seconds;
        let tb = cpu.iter().find(|c| c.app == b).unwrap().cpu_seconds;
        assert!(s.queued() > 0, "queues must still be contended");
        s.shutdown();
        let share_a = ta / (ta + tb);
        // Target is 75 %; allow scheduling noise.
        assert!(
            (share_a - 0.75).abs() < 0.12,
            "share_a {share_a}, expected ~0.75"
        );
    }

    #[test]
    fn shutdown_drops_queue_and_joins() {
        let mut s = TaskScheduler::new(cfg(1, true));
        s.register_app(AppId(1), 1.0);
        s.submit(
            AppId(1),
            Box::new(|| std::thread::sleep(Duration::from_millis(5))),
        );
        s.shutdown();
        s.shutdown(); // idempotent
    }

    #[test]
    fn panicking_task_is_isolated() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let s = TaskScheduler::new(cfg(2, true));
        s.register_app(AppId(1), 1.0);
        s.register_app(AppId(2), 1.0);
        for _ in 0..5 {
            s.submit(AppId(1), Box::new(|| panic!("faulty aggregation function")));
        }
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = done.clone();
            s.submit(
                AppId(2),
                Box::new(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert!(s.wait_idle(Duration::from_secs(10)));
        std::panic::set_hook(prev_hook);
        assert_eq!(done.load(Ordering::SeqCst), 20, "healthy app unaffected");
        let cpu = s.cpu_times();
        let faulty = cpu.iter().find(|c| c.app == AppId(1)).unwrap();
        assert_eq!(faulty.tasks_panicked, 5);
        let healthy = cpu.iter().find(|c| c.app == AppId(2)).unwrap();
        assert_eq!(healthy.tasks_panicked, 0);
    }

    #[test]
    fn obs_counts_tasks_and_weights() {
        let obs = netagg_obs::MetricsRegistry::new();
        let mut s = TaskScheduler::new_with_obs(cfg(2, true), Some(obs.clone()));
        s.register_app(AppId(3), 2.0);
        for _ in 0..10 {
            s.submit(
                AppId(3),
                Box::new(|| std::thread::sleep(Duration::from_micros(200))),
            );
        }
        assert!(s.wait_idle(Duration::from_secs(5)));
        // Queue a task that can never run, then shut down: it must be
        // accounted as dropped.
        s.inner.cancel.cancel();
        s.submit(AppId(3), Box::new(|| {}));
        s.shutdown();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("aggbox.tasks_executed"), Some(10));
        assert_eq!(snap.counter("aggbox.tasks_dropped"), Some(1));
        assert_eq!(snap.counter("aggbox.tasks_panicked"), Some(0));
        let h = snap.histogram("aggbox.task_exec_us").unwrap();
        assert_eq!(h.count, 10);
        assert!(h.p50 >= 200, "tasks sleep 200us, p50 was {}", h.p50);
        let w = snap.gauge("aggbox.wfq_weight.app3").unwrap();
        assert!(w > 0.0);
        assert_eq!(snap.gauge("aggbox.queue_depth"), Some(0.0));
    }

    #[test]
    fn wait_idle_times_out_when_busy() {
        let s = TaskScheduler::new(cfg(1, true));
        s.register_app(AppId(1), 1.0);
        s.submit(
            AppId(1),
            Box::new(|| std::thread::sleep(Duration::from_millis(300))),
        );
        assert!(!s.wait_idle(Duration::from_millis(30)));
        assert!(s.wait_idle(Duration::from_secs(5)));
    }
}
