//! The local aggregation tree: parallel, pipelined reduction of a stream of
//! serialised partial results inside one agg box (Section 3.2.1).
//!
//! Incoming items are buffered; whenever `fanin` items are available (or
//! the input has ended and at least two remain), a combine *task* is
//! submitted to the box's cooperative scheduler. Task outputs are
//! re-enqueued as new inputs, so the reduction unfolds as a tree whose
//! interior nodes execute in parallel across CPU cores and whose shape
//! adapts to arrival order (pipelining: aggregation overlaps with network
//! receipt). Little data is buffered: at most `fanin` items per in-flight
//! task.

use crate::aggbox::scheduler::TaskScheduler;
use crate::protocol::AppId;
use crate::{AggError, DynAggregator};
use bytes::Bytes;
use netagg_obs::names;
use netagg_obs::trace::{self, TraceRecorder};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback invoked once with the reduction's final result.
pub type CompletionHandler = Box<dyn FnOnce(Result<Bytes, AggError>) + Send>;

/// Where combine tasks record their queue-wait and execution spans
/// (DESIGN.md §11). Installed by the agg box when the owning request is
/// sampled; without one, tasks record nothing.
#[derive(Clone)]
pub struct TraceTarget {
    /// Shared span recorder (the box registry's tracer).
    pub tracer: Arc<TraceRecorder>,
    /// Trace the request belongs to.
    pub trace_id: u64,
    /// Parent for the task spans (the box's per-request span).
    pub parent_span_id: u64,
    /// Request id recorded on each span.
    pub request: u64,
    /// Component label, e.g. `aggbox-2-sched`.
    pub component: Arc<str>,
}

struct TreeState {
    pending: Vec<Bytes>,
    outstanding: usize,
    ended: bool,
    done: Option<Result<Bytes, AggError>>,
    on_complete: Option<CompletionHandler>,
    trace: Option<TraceTarget>,
}

/// A pipelined parallel reduction over serialised items.
pub struct LocalAggTree {
    agg: Arc<dyn DynAggregator>,
    fanin: usize,
    state: Mutex<TreeState>,
    cv: Condvar,
}

impl LocalAggTree {
    /// `fanin` is the maximum number of inputs one aggregation task merges
    /// (2 = binary tree, as in the paper's Fig. 15 micro-benchmark).
    pub fn new(agg: Arc<dyn DynAggregator>, fanin: usize) -> Arc<Self> {
        assert!(fanin >= 2);
        Arc::new(Self {
            agg,
            fanin,
            state: Mutex::new(TreeState {
                pending: Vec::new(),
                outstanding: 0,
                ended: false,
                done: None,
                on_complete: None,
                trace: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Install the trace target subsequent combine tasks record their
    /// `span.box.queue_wait` / `span.box.combine` spans against. Called at
    /// request creation, before any data is pushed.
    pub fn set_trace(&self, t: TraceTarget) {
        self.state.lock().trace = Some(t);
    }

    /// Register a callback fired exactly once with the final result. The
    /// callback runs on whichever thread completes the reduction and must
    /// not block for long.
    pub fn on_complete(&self, cb: CompletionHandler) {
        let mut s = self.state.lock();
        if let Some(done) = s.done.clone() {
            drop(s);
            cb(done);
        } else {
            assert!(s.on_complete.is_none(), "on_complete registered twice");
            s.on_complete = Some(cb);
        }
    }

    /// Feed one item; combine tasks are scheduled as batches fill.
    pub fn push(self: &Arc<Self>, sched: &Arc<TaskScheduler>, app: AppId, item: Bytes) {
        let mut s = self.state.lock();
        if s.done.is_some() {
            return; // late data after an error/completion is dropped
        }
        s.pending.push(item);
        self.maybe_schedule(&mut s, sched, app);
    }

    /// Declare the input stream finished; the final combines are scheduled.
    pub fn end_input(self: &Arc<Self>, sched: &Arc<TaskScheduler>, app: AppId) {
        let cb = {
            let mut s = self.state.lock();
            s.ended = true;
            self.maybe_schedule(&mut s, sched, app);
            self.maybe_finish(&mut s)
        };
        run_completion(cb);
    }

    /// Block until the final aggregate is available.
    pub fn wait_complete(&self, timeout: Duration) -> Result<Bytes, AggError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            if let Some(done) = s.done.clone() {
                return done;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(AggError::Timeout);
            }
            self.cv.wait_for(&mut s, deadline - now);
        }
    }

    /// Non-blocking completion check.
    pub fn try_complete(&self) -> Option<Result<Bytes, AggError>> {
        self.state.lock().done.clone()
    }

    /// Items buffered and tasks in flight (for back-pressure decisions).
    pub fn load(&self) -> (usize, usize) {
        let s = self.state.lock();
        (s.pending.len(), s.outstanding)
    }

    /// Total bytes currently buffered.
    pub fn pending_bytes(&self) -> usize {
        self.state.lock().pending.iter().map(Bytes::len).sum()
    }

    /// Take the fully combined partial aggregate accumulated so far, if the
    /// reduction has quiesced (no tasks in flight, one item buffered). When
    /// several items are buffered, a combine is scheduled so a later call
    /// can succeed. Used for streaming flushes: the box forwards partial
    /// aggregates downstream instead of buffering a whole request.
    pub fn take_partial(self: &Arc<Self>, sched: &Arc<TaskScheduler>, app: AppId) -> Option<Bytes> {
        let mut s = self.state.lock();
        if s.ended || s.done.is_some() {
            return None;
        }
        if s.outstanding == 0 {
            match s.pending.len() {
                1 => return s.pending.pop(),
                n if n >= 2 => {
                    // Force a combine of everything buffered; the flusher's
                    // next pass can then take the single result.
                    let batch: Vec<Bytes> = s.pending.drain(..).collect();
                    s.outstanding += 1;
                    let trace = s.trace.clone();
                    self.spawn_combine(trace, sched, app, batch);
                }
                _ => {}
            }
        }
        None
    }

    fn maybe_schedule(self: &Arc<Self>, s: &mut TreeState, sched: &Arc<TaskScheduler>, app: AppId) {
        loop {
            let ready = if s.ended {
                s.pending.len() >= 2
            } else {
                s.pending.len() >= self.fanin
            };
            if !ready || s.done.is_some() {
                return;
            }
            let take = s.pending.len().min(self.fanin);
            let batch: Vec<Bytes> = s.pending.drain(..take).collect();
            s.outstanding += 1;
            let trace = s.trace.clone();
            self.spawn_combine(trace, sched, app, batch);
        }
    }

    /// Submit one combine task, recording mailbox queue wait and execution
    /// as spans when the request is traced.
    fn spawn_combine(
        self: &Arc<Self>,
        trace: Option<TraceTarget>,
        sched: &Arc<TaskScheduler>,
        app: AppId,
        batch: Vec<Bytes>,
    ) {
        let tree = self.clone();
        let agg = self.agg.clone();
        // Tasks hold only a weak scheduler reference: a strong one could
        // make the last Arc drop on a pool thread, whose Drop would then
        // try to join itself.
        let sched_weak = Arc::downgrade(sched);
        let enqueue_ns = trace.as_ref().map(|_| trace::now_ns());
        sched.submit(
            app,
            Box::new(move || {
                let exec_start = trace.as_ref().map(|t| {
                    let start = trace::now_ns();
                    // Queue wait: submit → a pool thread picked the task up.
                    t.tracer.record_span(
                        names::spans::BOX_QUEUE_WAIT,
                        &t.component,
                        t.trace_id,
                        t.tracer.next_span_id(),
                        t.parent_span_id,
                        t.request,
                        enqueue_ns.unwrap_or(start),
                        start,
                    );
                    start
                });
                // Contain panics from faulty aggregation functions so the
                // reduction fails cleanly instead of hanging with a
                // permanently outstanding task.
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    agg.aggregate_serialized(batch)
                }))
                .unwrap_or_else(|_| Err(AggError::Corrupt("aggregation function panicked".into())));
                if let (Some(t), Some(start)) = (&trace, exec_start) {
                    t.tracer.record_span(
                        names::spans::BOX_COMBINE,
                        &t.component,
                        t.trace_id,
                        t.tracer.next_span_id(),
                        t.parent_span_id,
                        t.request,
                        start,
                        trace::now_ns(),
                    );
                }
                if let Some(sched) = sched_weak.upgrade() {
                    tree.task_done(&sched, app, out);
                }
            }),
        );
    }

    fn task_done(
        self: &Arc<Self>,
        sched: &Arc<TaskScheduler>,
        app: AppId,
        out: Result<Bytes, AggError>,
    ) {
        let cb = {
            let mut s = self.state.lock();
            s.outstanding -= 1;
            match out {
                Ok(bytes) => {
                    if s.done.is_none() {
                        s.pending.push(bytes);
                        self.maybe_schedule(&mut s, sched, app);
                    }
                    self.maybe_finish(&mut s)
                }
                Err(e) => {
                    if s.done.is_none() {
                        self.finish(&mut s, Err(e))
                    } else {
                        None
                    }
                }
            }
        };
        run_completion(cb);
    }

    fn maybe_finish(self: &Arc<Self>, s: &mut TreeState) -> Option<CompletionCb> {
        if s.done.is_none() && s.ended && s.outstanding == 0 && s.pending.len() <= 1 {
            let out = match s.pending.pop() {
                Some(b) => Ok(b),
                None => Ok(self.agg.empty_serialized()),
            };
            self.finish(s, out)
        } else {
            None
        }
    }

    /// Record the result and detach the completion callback so the caller
    /// can run it after releasing the state lock.
    fn finish(&self, s: &mut TreeState, out: Result<Bytes, AggError>) -> Option<CompletionCb> {
        s.done = Some(out.clone());
        self.cv.notify_all();
        s.on_complete.take().map(|cb| (cb, out))
    }
}

type CompletionCb = (CompletionHandler, Result<Bytes, AggError>);

fn run_completion(cb: Option<CompletionCb>) {
    if let Some((cb, out)) = cb {
        cb(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggbox::scheduler::SchedulerConfig;
    use crate::{AggWrapper, AggregationFunction};

    struct Sum;
    impl AggregationFunction for Sum {
        type Item = u64;
        fn deserialize(&self, b: &Bytes) -> Result<u64, AggError> {
            let mut a = [0u8; 8];
            if b.len() != 8 {
                return Err(AggError::Corrupt("len".into()));
            }
            a.copy_from_slice(b);
            Ok(u64::from_be_bytes(a))
        }
        fn serialize(&self, v: &u64) -> Bytes {
            Bytes::copy_from_slice(&v.to_be_bytes())
        }
        fn aggregate(&self, items: Vec<u64>) -> u64 {
            items.into_iter().sum()
        }
        fn empty(&self) -> u64 {
            0
        }
    }

    fn scheduler(threads: usize) -> Arc<TaskScheduler> {
        let s = TaskScheduler::new(SchedulerConfig {
            threads,
            adaptive: true,
            ema_alpha: 0.2,
            seed: 1,
        });
        s.register_app(AppId(1), 1.0);
        Arc::new(s)
    }

    fn enc(v: u64) -> Bytes {
        Bytes::copy_from_slice(&v.to_be_bytes())
    }

    fn dec(b: &Bytes) -> u64 {
        Sum.deserialize(b).unwrap()
    }

    #[test]
    fn reduces_a_stream_to_the_sum() {
        let sched = scheduler(4);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 4);
        for v in 1..=100u64 {
            tree.push(&sched, AppId(1), enc(v));
        }
        tree.end_input(&sched, AppId(1));
        let out = tree.wait_complete(Duration::from_secs(10)).unwrap();
        assert_eq!(dec(&out), 5050);
    }

    #[test]
    fn single_item_passes_through() {
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        tree.push(&sched, AppId(1), enc(42));
        tree.end_input(&sched, AppId(1));
        assert_eq!(
            dec(&tree.wait_complete(Duration::from_secs(5)).unwrap()),
            42
        );
    }

    #[test]
    fn empty_stream_yields_identity() {
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        tree.end_input(&sched, AppId(1));
        assert_eq!(dec(&tree.wait_complete(Duration::from_secs(5)).unwrap()), 0);
    }

    #[test]
    fn binary_fanin_matches_wide_fanin() {
        for fanin in [2usize, 3, 8, 64] {
            let sched = scheduler(4);
            let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), fanin);
            for v in 0..200u64 {
                tree.push(&sched, AppId(1), enc(v));
            }
            tree.end_input(&sched, AppId(1));
            let out = tree.wait_complete(Duration::from_secs(10)).unwrap();
            assert_eq!(dec(&out), (0..200).sum::<u64>(), "fanin {fanin}");
        }
    }

    #[test]
    fn corrupt_item_fails_the_reduction() {
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        tree.push(&sched, AppId(1), enc(1));
        tree.push(&sched, AppId(1), Bytes::from_static(b"zz"));
        tree.end_input(&sched, AppId(1));
        assert!(matches!(
            tree.wait_complete(Duration::from_secs(5)),
            Err(AggError::Corrupt(_))
        ));
    }

    #[test]
    fn completion_callback_fires_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sched = scheduler(4);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        tree.on_complete(Box::new(move |r| {
            assert_eq!(dec(&r.unwrap()), 10);
            f2.fetch_add(1, Ordering::SeqCst);
        }));
        for v in [1u64, 2, 3, 4] {
            tree.push(&sched, AppId(1), enc(v));
        }
        tree.end_input(&sched, AppId(1));
        tree.wait_complete(Duration::from_secs(5)).unwrap();
        // Give the callback (fired on a worker thread) a moment.
        sched.wait_idle(Duration::from_secs(5));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn callback_after_completion_fires_immediately() {
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        tree.push(&sched, AppId(1), enc(5));
        tree.end_input(&sched, AppId(1));
        tree.wait_complete(Duration::from_secs(5)).unwrap();
        let (tx, rx) = crossbeam::channel::bounded(1);
        tree.on_complete(Box::new(move |r| {
            tx.send(dec(&r.unwrap())).unwrap();
        }));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 5);
    }

    #[test]
    fn panicking_aggregation_function_fails_cleanly() {
        struct Faulty;
        impl AggregationFunction for Faulty {
            type Item = u64;
            fn deserialize(&self, b: &Bytes) -> Result<u64, AggError> {
                Sum.deserialize(b)
            }
            fn serialize(&self, v: &u64) -> Bytes {
                Sum.serialize(v)
            }
            fn aggregate(&self, _items: Vec<u64>) -> u64 {
                panic!("malicious or buggy aggregation function");
            }
            fn empty(&self) -> u64 {
                0
            }
        }
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Faulty)), 2);
        tree.push(&sched, AppId(1), enc(1));
        tree.push(&sched, AppId(1), enc(2));
        tree.end_input(&sched, AppId(1));
        let r = tree.wait_complete(Duration::from_secs(5));
        std::panic::set_hook(prev_hook);
        assert!(matches!(r, Err(AggError::Corrupt(_))), "{r:?}");
    }

    #[test]
    fn wait_complete_times_out_without_end_input() {
        let sched = scheduler(2);
        let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Sum)), 2);
        tree.push(&sched, AppId(1), enc(1));
        assert!(matches!(
            tree.wait_complete(Duration::from_millis(50)),
            Err(AggError::Timeout)
        ));
    }

    #[test]
    fn throughput_scales_with_threads() {
        // Smoke version of the paper's Fig. 15: more threads should not be
        // slower for a CPU-heavy aggregation.
        struct Busy;
        impl AggregationFunction for Busy {
            type Item = u64;
            fn deserialize(&self, b: &Bytes) -> Result<u64, AggError> {
                Sum.deserialize(b)
            }
            fn serialize(&self, v: &u64) -> Bytes {
                Sum.serialize(v)
            }
            fn aggregate(&self, items: Vec<u64>) -> u64 {
                // Spin ~100 micros per combine; fold the garbage value in
                // via a branch the optimiser cannot remove but that never
                // fires (acc is pseudo-random, not u64::MAX).
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                let noise = u64::from(acc == u64::MAX);
                items.into_iter().sum::<u64>().wrapping_add(noise)
            }
            fn empty(&self) -> u64 {
                0
            }
        }
        let run = |threads: usize| -> Duration {
            let sched = scheduler(threads);
            let tree = LocalAggTree::new(Arc::new(AggWrapper::new(Busy)), 2);
            let t0 = Instant::now();
            for v in 0..512u64 {
                tree.push(&sched, AppId(1), enc(v));
            }
            tree.end_input(&sched, AppId(1));
            tree.wait_complete(Duration::from_secs(30)).unwrap();
            t0.elapsed()
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 < t1 * 2,
            "4 threads ({t4:?}) should not be much slower than 1 ({t1:?})"
        );
    }
}
