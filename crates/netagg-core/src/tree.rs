//! Aggregation-tree construction (Section 3.1).
//!
//! A [`ClusterSpec`] describes the physical deployment: racks of workers,
//! agg boxes per rack (scale-out), and where the master sits. From it,
//! [`build_tree_specs`] derives one [`TreeSpec`] per aggregation tree:
//! workers feed their rack's box, rack boxes feed the master rack's box,
//! and that root box feeds the master — the on-path spanning tree of the
//! paper, specialised to the testbed's two-tier topology. With multiple
//! boxes per rack, tree `t` uses box slot `t mod boxes`, so concurrent
//! trees spread over the scale-out boxes.
//!
//! With **zero boxes**, workers are unassigned and shims fall back to
//! sending partial results directly to the master — the "plain
//! application" baseline of the testbed evaluation.

use crate::protocol::{AppId, TreeId};
use netagg_net::NodeId;
use std::collections::HashMap;

/// Address block size per application. Agg boxes live in application 0's
/// block above [`BOX_BASE`] and are shared by all applications.
const APP_BLOCK: NodeId = 100_000;
const WORKER_BASE: NodeId = 1_000;
const BOX_BASE: NodeId = 10_000;
const CLIENT_BASE: NodeId = 50_000;

/// Transport address of an application's master shim.
pub fn master_addr(app: AppId) -> NodeId {
    app.0 as NodeId * APP_BLOCK
}

/// Transport address of an application's worker shim `w`.
pub fn worker_addr(app: AppId, worker: u32) -> NodeId {
    assert!(worker < BOX_BASE - WORKER_BASE, "worker id too large");
    app.0 as NodeId * APP_BLOCK + WORKER_BASE + worker
}

/// Transport address of agg box `b` (shared by all applications).
pub fn box_addr(box_id: u32) -> NodeId {
    assert!(box_id < CLIENT_BASE - BOX_BASE, "box id too large");
    BOX_BASE + box_id
}

/// Transport address of an application's client `c`.
pub fn client_addr(app: AppId, client: u32) -> NodeId {
    assert!(client < APP_BLOCK - CLIENT_BASE, "client id too large");
    app.0 as NodeId * APP_BLOCK + CLIENT_BASE + client
}

const SERVICE_BASE: NodeId = 20_000;

/// Transport address of an application-level service listener (e.g. a
/// search backend's query port or the frontend's client port) — distinct
/// from the shim addresses, mirroring how the paper's shims wrap the
/// application's own sockets rather than replacing them.
pub fn service_addr(app: AppId, idx: u32) -> NodeId {
    assert!(idx < CLIENT_BASE - SERVICE_BASE, "service id too large");
    app.0 as NodeId * APP_BLOCK + SERVICE_BASE + idx
}

/// One rack: the workers it hosts and how many agg boxes attach to its
/// switch.
#[derive(Debug, Clone)]
pub struct RackSpec {
    /// Worker ids hosted in this rack.
    pub workers: Vec<u32>,
    /// Agg boxes attached to the rack's switch.
    pub boxes: u32,
}

/// Physical deployment description.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The racks, in order.
    pub racks: Vec<RackSpec>,
    /// Rack hosting the master (frontend / reducer).
    pub master_rack: usize,
    /// Number of aggregation trees per application (Section 3.1).
    pub num_trees: u32,
}

impl ClusterSpec {
    /// One rack with `workers` workers and `boxes` agg boxes.
    pub fn single_rack(workers: u32, boxes: u32) -> Self {
        Self {
            racks: vec![RackSpec {
                workers: (0..workers).collect(),
                boxes,
            }],
            master_rack: 0,
            num_trees: 1,
        }
    }

    /// `racks` racks of `workers_per_rack` workers, each with
    /// `boxes_per_rack` boxes; master in rack 0; one tree per master-rack
    /// box slot.
    pub fn multi_rack(racks: u32, workers_per_rack: u32, boxes_per_rack: u32) -> Self {
        let mut specs = Vec::new();
        let mut next = 0;
        for _ in 0..racks {
            specs.push(RackSpec {
                workers: (next..next + workers_per_rack).collect(),
                boxes: boxes_per_rack,
            });
            next += workers_per_rack;
        }
        Self {
            racks: specs,
            master_rack: 0,
            num_trees: 1,
        }
    }

    /// Use `trees` aggregation trees per application (Section 3.1).
    pub fn with_trees(mut self, trees: u32) -> Self {
        assert!(trees >= 1);
        self.num_trees = trees;
        self
    }

    /// Sorted ids of every worker in the cluster.
    pub fn all_workers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.racks.iter().flat_map(|r| r.workers.clone()).collect();
        v.sort_unstable();
        v
    }

    /// Total agg boxes across all racks.
    pub fn total_boxes(&self) -> u32 {
        self.racks.iter().map(|r| r.boxes).sum()
    }

    /// Global box id of slot `slot` in `rack`.
    pub fn box_id(&self, rack: usize, slot: u32) -> u32 {
        let offset: u32 = self.racks[..rack].iter().map(|r| r.boxes).sum();
        offset + slot
    }
}

/// Parent of a box within a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parent {
    /// Another box, by global id.
    Box(u32),
    /// The application's master shim.
    Master,
}

/// One box's role within a tree.
#[derive(Debug, Clone)]
pub struct TreeBox {
    /// Global box id.
    pub box_id: u32,
    /// Transport address of the box.
    pub addr: NodeId,
    /// Where this box's output goes.
    pub parent: Parent,
    /// Workers sending their partial results here.
    pub worker_children: Vec<u32>,
    /// Boxes sending their aggregates here.
    pub box_children: Vec<u32>,
}

impl TreeBox {
    /// Distinct sources (workers + child boxes) feeding this box.
    pub fn expected_sources(&self) -> usize {
        self.worker_children.len() + self.box_children.len()
    }
}

/// Logical description of one aggregation tree. The spec is
/// application-agnostic: addresses of masters and workers are derived per
/// application via [`master_addr`] / [`worker_addr`].
#[derive(Debug, Clone)]
pub struct TreeSpec {
    /// The tree's identifier.
    pub tree: TreeId,
    /// The boxes participating in this tree.
    pub boxes: Vec<TreeBox>,
    /// worker id -> global box id of its first on-path box.
    pub worker_assignment: HashMap<u32, u32>,
    /// Workers with no on-path box: they send directly to the master.
    pub direct_workers: Vec<u32>,
}

impl TreeSpec {
    /// The tree node for `box_id`, if it participates in this tree.
    pub fn tree_box(&self, box_id: u32) -> Option<&TreeBox> {
        self.boxes.iter().find(|b| b.box_id == box_id)
    }

    /// Number of sources the master sees per request on this tree: root
    /// boxes plus direct workers.
    pub fn expected_master_sources(&self) -> usize {
        self.boxes
            .iter()
            .filter(|b| b.parent == Parent::Master && b.expected_sources() > 0)
            .count()
            + self.direct_workers.len()
    }

    /// Logical source identities the master sees per request on this tree:
    /// root boxes plus direct workers. This is the master's fan-in ledger
    /// seed (see `crate::ledger`).
    pub fn master_sources(&self) -> Vec<crate::protocol::SourceId> {
        use crate::protocol::SourceId;
        self.boxes
            .iter()
            .filter(|b| b.parent == Parent::Master && b.expected_sources() > 0)
            .map(|b| SourceId::Box(b.box_id))
            .chain(self.direct_workers.iter().map(|w| SourceId::Worker(*w)))
            .collect()
    }

    /// Logical source identities of the children of `box_id` (workers and
    /// boxes): the contributors its parent inherits when the box fails.
    pub fn children_sources(&self, box_id: u32) -> Vec<crate::protocol::SourceId> {
        use crate::protocol::SourceId;
        let Some(b) = self.tree_box(box_id) else {
            return Vec::new();
        };
        b.worker_children
            .iter()
            .map(|w| SourceId::Worker(*w))
            .chain(b.box_children.iter().map(|c| SourceId::Box(*c)))
            .collect()
    }

    /// Addresses of the children (workers and boxes) of `box_id` for one
    /// application, used by failure recovery to re-point them at the failed
    /// box's parent.
    pub fn children_addrs(&self, app: AppId, box_id: u32) -> Vec<NodeId> {
        let Some(b) = self.tree_box(box_id) else {
            return Vec::new();
        };
        b.worker_children
            .iter()
            .map(|w| worker_addr(app, *w))
            .chain(b.box_children.iter().map(|c| box_addr(*c)))
            .collect()
    }

    /// Address a box's output goes to for one application.
    pub fn parent_addr(&self, app: AppId, box_id: u32) -> NodeId {
        match self.tree_box(box_id).map(|b| b.parent) {
            Some(Parent::Box(p)) => box_addr(p),
            _ => master_addr(app),
        }
    }
}

/// Build the per-tree specs for a cluster.
pub fn build_tree_specs(cluster: &ClusterSpec) -> Vec<TreeSpec> {
    let mut specs = Vec::new();
    for t in 0..cluster.num_trees {
        let mut boxes: Vec<TreeBox> = Vec::new();
        let mut worker_assignment = HashMap::new();
        let mut direct_workers = Vec::new();

        // Root box: the master rack's slot for this tree (if any).
        let mroot = {
            let mr = &cluster.racks[cluster.master_rack];
            if mr.boxes > 0 {
                Some(cluster.box_id(cluster.master_rack, t % mr.boxes))
            } else {
                None
            }
        };
        if let Some(root) = mroot {
            boxes.push(TreeBox {
                box_id: root,
                addr: box_addr(root),
                parent: Parent::Master,
                worker_children: Vec::new(),
                box_children: Vec::new(),
            });
        }
        for (r, rack) in cluster.racks.iter().enumerate() {
            let rack_box = if rack.boxes > 0 {
                Some(cluster.box_id(r, t % rack.boxes))
            } else {
                None
            };
            // The box workers of this rack feed: their rack box, else the
            // root box, else nothing (direct to master).
            let target = rack_box.or(mroot);
            match target {
                Some(bid) => {
                    if boxes.iter().all(|b| b.box_id != bid) {
                        let parent = if Some(bid) == mroot {
                            Parent::Master
                        } else {
                            match mroot {
                                Some(root) => Parent::Box(root),
                                None => Parent::Master,
                            }
                        };
                        boxes.push(TreeBox {
                            box_id: bid,
                            addr: box_addr(bid),
                            parent,
                            worker_children: Vec::new(),
                            box_children: Vec::new(),
                        });
                    }
                    let b = boxes.iter_mut().find(|b| b.box_id == bid).unwrap();
                    b.worker_children.extend(rack.workers.iter().copied());
                    for w in &rack.workers {
                        worker_assignment.insert(*w, bid);
                    }
                }
                None => direct_workers.extend(rack.workers.iter().copied()),
            }
        }
        // Wire box children: every non-root box is a child of its parent.
        let links: Vec<(u32, u32)> = boxes
            .iter()
            .filter_map(|b| match b.parent {
                Parent::Box(p) => Some((p, b.box_id)),
                Parent::Master => None,
            })
            .collect();
        for (p, c) in links {
            if let Some(pb) = boxes.iter_mut().find(|b| b.box_id == p) {
                pb.box_children.push(c);
            }
        }
        // Drop boxes that ended up with no children at all (e.g. a root in
        // a rack with no workers and no child boxes).
        boxes.retain(|b| b.expected_sources() > 0);
        specs.push(TreeSpec {
            tree: TreeId(t),
            boxes,
            worker_assignment,
            direct_workers,
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_single_box() {
        let c = ClusterSpec::single_rack(4, 1);
        let specs = build_tree_specs(&c);
        assert_eq!(specs.len(), 1);
        let s = &specs[0];
        assert_eq!(s.boxes.len(), 1);
        assert_eq!(s.boxes[0].parent, Parent::Master);
        assert_eq!(s.boxes[0].worker_children.len(), 4);
        assert_eq!(s.expected_master_sources(), 1);
        assert!(s.direct_workers.is_empty());
        assert_eq!(
            s.parent_addr(AppId(2), s.boxes[0].box_id),
            master_addr(AppId(2))
        );
    }

    #[test]
    fn no_boxes_means_direct_workers() {
        let c = ClusterSpec::single_rack(5, 0);
        let specs = build_tree_specs(&c);
        let s = &specs[0];
        assert!(s.boxes.is_empty());
        assert_eq!(s.direct_workers.len(), 5);
        assert_eq!(s.expected_master_sources(), 5);
    }

    #[test]
    fn two_racks_chain_through_master_rack_box() {
        let c = ClusterSpec::multi_rack(2, 3, 1);
        let specs = build_tree_specs(&c);
        let s = &specs[0];
        assert_eq!(s.boxes.len(), 2);
        let root = s.tree_box(0).unwrap();
        assert_eq!(root.parent, Parent::Master);
        assert_eq!(root.box_children, vec![1]);
        let leafbox = s.tree_box(1).unwrap();
        assert_eq!(leafbox.parent, Parent::Box(0));
        assert_eq!(leafbox.worker_children.len(), 3);
        assert_eq!(s.expected_master_sources(), 1);
        // Children addresses used by failure recovery.
        let kids = s.children_addrs(AppId(1), 0);
        assert!(kids.contains(&box_addr(1)));
        assert_eq!(s.parent_addr(AppId(1), 1), box_addr(0));
    }

    #[test]
    fn rack_without_box_feeds_root() {
        let mut c = ClusterSpec::multi_rack(2, 2, 1);
        c.racks[1].boxes = 0;
        let specs = build_tree_specs(&c);
        let s = &specs[0];
        assert_eq!(s.boxes.len(), 1);
        assert_eq!(s.boxes[0].worker_children.len(), 4);
    }

    #[test]
    fn scale_out_spreads_trees_over_slots() {
        let c = ClusterSpec::single_rack(4, 2).with_trees(2);
        let specs = build_tree_specs(&c);
        assert_eq!(specs.len(), 2);
        assert_ne!(specs[0].boxes[0].box_id, specs[1].boxes[0].box_id);
    }

    #[test]
    fn box_ids_are_globally_unique() {
        let c = ClusterSpec::multi_rack(3, 2, 2);
        assert_eq!(c.total_boxes(), 6);
        assert_eq!(c.box_id(0, 0), 0);
        assert_eq!(c.box_id(1, 0), 2);
        assert_eq!(c.box_id(2, 1), 5);
    }

    #[test]
    fn address_spaces_do_not_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for app in [AppId(0), AppId(1), AppId(7)] {
            assert!(seen.insert(master_addr(app)));
            for w in [0u32, 1, 500] {
                assert!(seen.insert(worker_addr(app, w)));
            }
            for c in [0u32, 3] {
                assert!(seen.insert(client_addr(app, c)));
            }
        }
        for b in [0u32, 1, 99] {
            assert!(seen.insert(box_addr(b)));
        }
    }
}
