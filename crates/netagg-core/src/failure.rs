//! Failure detection and recovery (Section 3.1, "Handling failures").
//!
//! A lightweight detector runs at every node that is the *parent* of agg
//! boxes in a tree (other boxes and the master shim). It periodically
//! heartbeats its child boxes; after `misses` consecutive unanswered
//! probes a child is declared failed, its children (workers or further
//! boxes) are told to redirect future partial results to the detecting
//! node, and the owner is notified so it adjusts the sources it expects.
//! Duplicate suppression at the new parent (sequence numbers per source)
//! keeps resent results from being double-counted.

use crate::lifecycle::{CancelToken, JoinScope, DEFAULT_JOIN_DEADLINE};
use crate::protocol::{AppId, Message, TreeId};
use netagg_net::{NetError, NodeId, Transport};
use netagg_obs::{names, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Detector timing parameters.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Probe interval.
    pub interval: Duration,
    /// How long to wait for a heartbeat ack.
    pub timeout: Duration,
    /// Consecutive misses before declaring failure.
    pub misses: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(100),
            timeout: Duration::from_millis(100),
            misses: 3,
        }
    }
}

/// A child box watched by the detector.
#[derive(Debug, Clone)]
pub struct WatchedChild {
    /// Global id of the watched box.
    pub box_id: u32,
    /// Its transport address.
    pub addr: NodeId,
    /// Addresses of the box's children, to be re-pointed on failure.
    pub children_addrs: Vec<NodeId>,
    /// Trees (per application) the box serves under this parent.
    pub apps_trees: Vec<(AppId, TreeId)>,
}

/// A shared, mutable set of children one detector probes. Clones are
/// cheap and refer to the same set, so recovery logic can *adopt* the
/// children of a failed box into a running detector: after a re-point,
/// the new watches make a later failure of an orphaned subtree box
/// (double-kill chains) detectable too.
#[derive(Clone, Default)]
pub struct WatchSet {
    children: Arc<Mutex<Vec<WatchedChild>>>,
}

impl WatchSet {
    /// A watch set with the given initial children (merged via
    /// [`WatchSet::add`]).
    pub fn new(children: Vec<WatchedChild>) -> Self {
        let s = Self::default();
        for c in children {
            s.add(c);
        }
        s
    }

    /// Add a watched child. Entries for an already-watched box merge
    /// their (app, tree) pairs and child addresses instead of
    /// duplicating: the detector tracks liveness per box id, and a
    /// duplicate entry would stop being probed (and re-pointed) the
    /// moment the first one fires.
    pub fn add(&self, child: WatchedChild) {
        let mut v = self.children.lock();
        if let Some(e) = v.iter_mut().find(|e| e.box_id == child.box_id) {
            for at in child.apps_trees {
                if !e.apps_trees.contains(&at) {
                    e.apps_trees.push(at);
                }
            }
            for a in child.children_addrs {
                if !e.children_addrs.contains(&a) {
                    e.children_addrs.push(a);
                }
            }
            return;
        }
        v.push(child);
    }

    /// Whether no children are watched.
    pub fn is_empty(&self) -> bool {
        self.children.lock().is_empty()
    }

    fn snapshot(&self) -> Vec<WatchedChild> {
        self.children.lock().clone()
    }
}

/// A running failure detector.
pub struct FailureDetector {
    scope: JoinScope,
}

impl FailureDetector {
    /// Start probing `children` from `self_addr`. On a confirmed failure,
    /// redirect messages (permanent) are sent to the failed box's children
    /// pointing them at `redirect_to`, and `on_failed(box_id)` is invoked
    /// once so the owner can adjust its expected sources.
    pub fn start(
        transport: Arc<dyn Transport>,
        self_addr: NodeId,
        redirect_to: NodeId,
        children: Vec<WatchedChild>,
        cfg: DetectorConfig,
        on_failed: Box<dyn Fn(u32) + Send>,
    ) -> Self {
        Self::start_with_obs(
            transport,
            self_addr,
            redirect_to,
            children,
            cfg,
            on_failed,
            None,
        )
    }

    /// Like [`FailureDetector::start`], but additionally publishing
    /// `failure.detections` / `failure.repoints` metrics (and `failure`
    /// events) to `obs`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_obs(
        transport: Arc<dyn Transport>,
        self_addr: NodeId,
        redirect_to: NodeId,
        children: Vec<WatchedChild>,
        cfg: DetectorConfig,
        on_failed: Box<dyn Fn(u32) + Send>,
        obs: Option<MetricsRegistry>,
    ) -> Self {
        Self::start_watching(
            transport,
            self_addr,
            redirect_to,
            WatchSet::new(children),
            cfg,
            on_failed,
            obs,
        )
    }

    /// Like [`FailureDetector::start_with_obs`], but probing a live
    /// [`WatchSet`]: children added to the set while the detector runs
    /// are picked up on the next probe round (recovery logic uses this
    /// to adopt the children of a failed box).
    #[allow(clippy::too_many_arguments)]
    pub fn start_watching(
        transport: Arc<dyn Transport>,
        self_addr: NodeId,
        redirect_to: NodeId,
        children: WatchSet,
        cfg: DetectorConfig,
        on_failed: Box<dyn Fn(u32) + Send>,
        obs: Option<MetricsRegistry>,
    ) -> Self {
        let cancel = CancelToken::new();
        let scope = JoinScope::with_obs(
            format!("failure-detector-{self_addr}"),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
            obs.as_ref(),
        );
        scope
            .spawn(format!("failure-detector-{self_addr}"), move || {
                detector_loop(
                    &transport,
                    self_addr,
                    redirect_to,
                    children,
                    &cfg,
                    on_failed,
                    &cancel,
                    &obs,
                )
            })
            .expect("spawn failure detector");
        Self { scope }
    }

    /// Stop probing: cancel the token (ending the current inter-probe
    /// sleep immediately) and join the detector thread. Idempotent.
    pub fn stop(&mut self) {
        self.scope.finish();
    }
}

impl Drop for FailureDetector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[allow(clippy::too_many_arguments)]
fn detector_loop(
    transport: &Arc<dyn Transport>,
    self_addr: NodeId,
    redirect_to: NodeId,
    children: WatchSet,
    cfg: &DetectorConfig,
    on_failed: Box<dyn Fn(u32) + Send>,
    cancel: &CancelToken,
    obs: &Option<MetricsRegistry>,
) {
    let mut conns: HashMap<u32, Box<dyn netagg_net::Connection>> = HashMap::new();
    let mut miss_count: HashMap<u32, u32> = HashMap::new();
    let mut failed: HashMap<u32, bool> = HashMap::new();
    let mut nonce = 0u64;
    loop {
        // Interruptible inter-probe sleep: stop() ends it immediately.
        if cancel.wait_timeout(cfg.interval) {
            return;
        }
        // Snapshot per round: `on_failed` may adopt the failed box's
        // children into the set mid-round.
        for child in children.snapshot() {
            if failed.get(&child.box_id).copied().unwrap_or(false) {
                continue;
            }
            nonce += 1;
            let ok = probe(
                transport,
                self_addr,
                child.addr,
                nonce,
                cfg,
                &mut conns,
                child.box_id,
            );
            if ok {
                miss_count.insert(child.box_id, 0);
                continue;
            }
            let m = miss_count.entry(child.box_id).or_insert(0);
            *m += 1;
            if *m < cfg.misses {
                continue;
            }
            // Declare failure. Accounting first, data movement second:
            // `on_failed` re-points the owner's fan-in ledgers *before*
            // the redirects trigger worker replays, so a replayed chunk
            // can never race the expected-source update (the seed bug).
            failed.insert(child.box_id, true);
            if let Some(o) = obs {
                o.counter(names::FAILURE_DETECTIONS).inc();
                o.emit(
                    names::EVENT_FAILURE,
                    format!(
                        "detector at {self_addr} declared box {} (addr {}) failed after {} missed probes",
                        child.box_id, child.addr, cfg.misses
                    ),
                );
            }
            on_failed(child.box_id);
            for &(app, tree) in &child.apps_trees {
                let msg = Message::Redirect {
                    app,
                    permanent: true,
                    request: crate::protocol::RequestId(0),
                    tree,
                    new_parent: redirect_to,
                };
                for &grandchild in &child.children_addrs {
                    if let Ok(mut c) = transport.connect(self_addr, grandchild) {
                        let _ = c.send(msg.encode());
                        if let Some(o) = obs {
                            o.counter(names::FAILURE_REPOINTS).inc();
                        }
                    }
                }
            }
        }
    }
}

fn probe(
    transport: &Arc<dyn Transport>,
    self_addr: NodeId,
    child_addr: NodeId,
    nonce: u64,
    cfg: &DetectorConfig,
    conns: &mut HashMap<u32, Box<dyn netagg_net::Connection>>,
    box_id: u32,
) -> bool {
    let conn = match conns.entry(box_id) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            match transport.connect(self_addr, child_addr) {
                Ok(c) => v.insert(c),
                Err(_) => return false,
            }
        }
    };
    let hb = Message::Heartbeat {
        from: self_addr,
        nonce,
    };
    if conn.send(hb.encode()).is_err() {
        conns.remove(&box_id);
        return false;
    }
    // Wait for the matching ack (tolerate unrelated frames).
    let deadline = std::time::Instant::now() + cfg.timeout;
    loop {
        let now = std::time::Instant::now();
        if now >= deadline {
            conns.remove(&box_id);
            return false;
        }
        match conn.recv_timeout(deadline - now) {
            Ok(frame) => {
                if let Ok(Message::HeartbeatAck { nonce: n, .. }) = Message::decode(frame) {
                    if n == nonce {
                        return true;
                    }
                }
            }
            Err(NetError::Timeout) => {
                conns.remove(&box_id);
                return false;
            }
            Err(_) => {
                conns.remove(&box_id);
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggbox::{AggBox, AggBoxConfig};
    use netagg_net::{ChannelTransport, FaultController, FaultTransport};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn healthy_child_is_not_declared_failed() {
        let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
        let b = AggBox::start(
            transport.clone(),
            AggBoxConfig::new(0, crate::tree::box_addr(0)),
        )
        .unwrap();
        let failed = Arc::new(AtomicU32::new(0));
        let f2 = failed.clone();
        let mut det = FailureDetector::start(
            transport,
            999,
            999,
            vec![WatchedChild {
                box_id: 0,
                addr: b.addr(),
                children_addrs: vec![],
                apps_trees: vec![],
            }],
            DetectorConfig {
                interval: Duration::from_millis(20),
                timeout: Duration::from_millis(100),
                misses: 2,
            },
            Box::new(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        std::thread::sleep(Duration::from_millis(300));
        det.stop();
        assert_eq!(failed.load(Ordering::SeqCst), 0);
        b.shutdown();
    }

    #[test]
    fn dead_child_triggers_failure_callback() {
        let ctl = FaultController::new();
        let transport: Arc<dyn Transport> =
            Arc::new(FaultTransport::new(ChannelTransport::new(), ctl.clone()));
        let b = AggBox::start(
            transport.clone(),
            AggBoxConfig::new(0, crate::tree::box_addr(0)),
        )
        .unwrap();
        let failed = Arc::new(AtomicU32::new(0));
        let f2 = failed.clone();
        let mut det = FailureDetector::start(
            transport,
            999,
            999,
            vec![WatchedChild {
                box_id: 0,
                addr: b.addr(),
                children_addrs: vec![],
                apps_trees: vec![],
            }],
            DetectorConfig {
                interval: Duration::from_millis(20),
                timeout: Duration::from_millis(60),
                misses: 2,
            },
            Box::new(move |id| {
                assert_eq!(id, 0);
                f2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        std::thread::sleep(Duration::from_millis(150));
        ctl.kill(b.addr());
        std::thread::sleep(Duration::from_millis(500));
        det.stop();
        assert_eq!(
            failed.load(Ordering::SeqCst),
            1,
            "exactly one failure event"
        );
        ctl.revive(b.addr());
        b.shutdown();
    }
}
