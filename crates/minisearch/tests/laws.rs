//! Property-based checks running the platform's aggregation-law checkers
//! (`netagg_core::laws`) against the search engine's aggregation
//! functions, over *serialised* payloads — exactly the path an agg box
//! executes.
//!
//! [`TopK`] and [`Categorise`] satisfy every law (merge consistency at
//! every split, order insensitivity, identity, serialisation stability).
//! [`Sample`] is the documented exception: `ceil(alpha * n)` applied per
//! tier keeps a different count than one flat application, so it is *not*
//! merge-consistent against a flat reference — the platform still uses it
//! (any tree shape yields a valid sample) but only the order and identity
//! laws are asserted, and the merge-consistency gap is pinned by a test.

use bytes::Bytes;
use minisearch::aggfn::{Categorise, Sample, TopK};
use minisearch::corpus::BASE_CATEGORIES;
use minisearch::score::{ScoredDoc, SearchResults};
use netagg_core::laws;
use proptest::prelude::*;

/// Documents derived entirely from the id: duplicates of the same id are
/// byte-identical, so sorting ties cannot produce two "correct" encodings
/// and every law can compare serialised bytes exactly.
fn doc(id: u32) -> ScoredDoc {
    ScoredDoc {
        doc: id,
        score: ((id as u64 * 37) % 1000) as f64 / 10.0,
        snippet: format!(
            "category:{} body of document {id}",
            BASE_CATEGORIES[id as usize % BASE_CATEGORIES.len()]
        ),
    }
}

fn encode(ids: &[u32]) -> Bytes {
    SearchResults {
        docs: ids.iter().map(|&i| doc(i)).collect(),
    }
    .encode()
}

/// Serialised partial results as workers would produce them: 1–6 payloads
/// of 0–12 documents each, ids overlapping freely across payloads.
fn payloads_strategy() -> impl Strategy<Value = Vec<Bytes>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..500, 0..12).prop_map(|ids| encode(&ids)),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Top-k keeps laws at every split point, payload order and identity
    /// padding — byte-exact on the wire format.
    #[test]
    fn topk_satisfies_every_law(
        payloads in payloads_strategy(),
        k in 1usize..20,
    ) {
        laws::assert_laws(&TopK::new(k), &payloads);
    }

    /// Per-category top-k re-classifies intermediate aggregates at every
    /// tier, so it must survive arbitrary regrouping too.
    #[test]
    fn categorise_satisfies_every_law(
        payloads in payloads_strategy(),
        k in 1usize..8,
    ) {
        laws::assert_laws(&Categorise::new(k), &payloads);
    }

    /// Sampling is order-insensitive (hash-priority selection), respects
    /// the identity element and has a stable serialisation; merge
    /// consistency is deliberately NOT asserted (see module docs).
    #[test]
    fn sample_satisfies_order_identity_and_roundtrip(
        payloads in payloads_strategy(),
        alpha in proptest::sample::select(vec![0.25f64, 0.5, 0.75, 1.0]),
    ) {
        let f = Sample::new(alpha);
        let c = laws::check_commutative(&f, &payloads).unwrap();
        prop_assert!(c.holds(), "{}: {:?} != {:?}", c.law, c.expected, c.actual);
        let c = laws::check_identity(&f, &payloads).unwrap();
        prop_assert!(c.holds(), "{}: {:?} != {:?}", c.law, c.expected, c.actual);
        for p in &payloads {
            let c = laws::check_roundtrip(&f, p).unwrap();
            prop_assert!(c.holds(), "{}: {:?} != {:?}", c.law, c.expected, c.actual);
        }
    }

    /// With alpha = 1 sampling degenerates to concatenation and becomes
    /// fully merge-consistent (sorted by hash priority, nothing dropped).
    #[test]
    fn sample_with_alpha_one_is_merge_consistent(
        payloads in payloads_strategy(),
        split in any::<usize>(),
    ) {
        let c = laws::check_merge(&Sample::new(1.0), &payloads, split % 8).unwrap();
        prop_assert!(c.holds(), "{}: {:?} != {:?}", c.law, c.expected, c.actual);
    }
}

/// Pin the reason Sample is excluded from the merge-consistency law: four
/// one-document payloads at alpha = 0.5 keep 2 documents when aggregated
/// flat (`ceil(0.5 * 4)`), but staged halves keep `ceil(0.5 * 2) = 1`
/// each and the final tier keeps `ceil(0.5 * 2) = 1`.
#[test]
fn sample_merge_inconsistency_is_real_and_detected() {
    let payloads: Vec<Bytes> = (0..4).map(|i| encode(&[i])).collect();
    let c = laws::check_merge(&Sample::new(0.5), &payloads, 2).unwrap();
    assert!(!c.holds(), "expected the documented ceil() gap to show");
    let flat = SearchResults::decode(&c.expected).unwrap();
    let staged = SearchResults::decode(&c.actual).unwrap();
    assert_eq!(flat.docs.len(), 2);
    assert_eq!(staged.docs.len(), 1);
}

/// The checker itself must flag a genuinely broken function when driven
/// through the search codec (guards against the laws harness silently
/// passing everything).
#[test]
fn laws_checker_catches_an_order_sensitive_merge() {
    struct KeepFirstPart;
    impl minisearch::aggfn::SearchAgg for KeepFirstPart {
        fn merge(&self, parts: Vec<SearchResults>) -> SearchResults {
            parts.into_iter().next().unwrap_or_default()
        }
    }
    impl netagg_core::AggregationFunction for KeepFirstPart {
        type Item = SearchResults;
        fn deserialize(&self, b: &Bytes) -> Result<SearchResults, netagg_core::AggError> {
            SearchResults::decode(b)
        }
        fn serialize(&self, v: &SearchResults) -> Bytes {
            v.encode()
        }
        fn aggregate(&self, items: Vec<SearchResults>) -> SearchResults {
            use minisearch::aggfn::SearchAgg;
            self.merge(items)
        }
        fn empty(&self) -> SearchResults {
            SearchResults::default()
        }
    }
    let payloads = vec![encode(&[1, 2]), encode(&[3])];
    let v = laws::check_laws(&KeepFirstPart, &payloads)
        .unwrap()
        .expect("keep-first must violate a law");
    assert!(!v.holds());
}
