//! End-to-end search tests: a full cluster (frontend + backends) over the
//! in-process transport, with and without agg boxes, must produce
//! identical results.

use minisearch::corpus::CorpusConfig;
use minisearch::frontend::{Client, FrontendConfig};
use minisearch::netagg::{SearchCluster, SearchFunction};
use netagg_core::prelude::*;
use netagg_core::runtime::NetAggDeployment;
use netagg_net::{ChannelTransport, Transport};
use std::sync::Arc;
use std::time::Duration;

fn corpus_cfg() -> CorpusConfig {
    CorpusConfig {
        num_docs: 400,
        vocabulary: 2_000,
        mean_words: 60,
        markers_per_doc: 4,
        seed: 7,
    }
}

fn launch(
    boxes: u32,
    function: SearchFunction,
) -> (NetAggDeployment, SearchCluster, Arc<dyn Transport>) {
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster_spec = ClusterSpec::single_rack(4, boxes);
    let mut dep = NetAggDeployment::launch(transport.clone(), &cluster_spec).unwrap();
    let cluster = SearchCluster::launch(
        &mut dep,
        transport.clone(),
        &corpus_cfg(),
        function,
        FrontendConfig {
            backend_k: 50,
            timeout: Duration::from_secs(10),
        },
        1.0,
    )
    .unwrap();
    (dep, cluster, transport)
}

#[test]
fn plain_and_netagg_topk_agree() {
    let (mut dep_plain, mut plain, _t1) = launch(0, SearchFunction::TopK { k: 10 });
    let (mut dep_net, mut net, _t2) = launch(1, SearchFunction::TopK { k: 10 });
    for q in 0..10 {
        let terms = vec![minisearch::corpus::word(q), minisearch::corpus::word(q + 1)];
        let a = plain.frontend.query(&terms).unwrap();
        let b = net.frontend.query(&terms).unwrap();
        let ids =
            |r: &minisearch::QueryOutcome| r.results.docs.iter().map(|d| d.doc).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "query {terms:?} differs");
        assert!(a.results.docs.len() <= 10);
    }
    // On-path aggregation must have exercised the box.
    let processed = dep_net.boxes()[0]
        .stats()
        .requests_completed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(processed >= 10, "box processed {processed}");
    plain.shutdown();
    net.shutdown();
    dep_plain.shutdown();
    dep_net.shutdown();
}

#[test]
fn sample_reduces_result_volume() {
    let (mut dep, mut cluster, _t) = launch(1, SearchFunction::Sample { alpha: 0.1 });
    // A head term matches many documents on every shard.
    let terms = vec![minisearch::corpus::word(0)];
    let out = cluster.frontend.query(&terms).unwrap();
    assert!(!out.results.docs.is_empty());
    // With alpha = 10 % the combined result must be far smaller than the
    // sum of the partials (each backend returns up to 50 docs).
    assert!(
        out.results.docs.len() <= 4 * 50 / 5,
        "sample should reduce: got {}",
        out.results.docs.len()
    );
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn categorise_groups_by_category() {
    let (mut dep, mut cluster, _t) = launch(1, SearchFunction::Categorise { k_per_category: 2 });
    let terms = vec![minisearch::corpus::word(0)];
    let out = cluster.frontend.query(&terms).unwrap();
    // At most k per base category.
    assert!(out.results.docs.len() <= 2 * minisearch::corpus::BASE_CATEGORIES.len());
    assert!(!out.results.docs.is_empty());
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn clients_get_replies_over_the_wire() {
    let (mut dep, mut cluster, transport) = launch(1, SearchFunction::TopK { k: 10 });
    let mut client = Client::connect(&transport, cluster.app, 0, 2_000).unwrap();
    for _ in 0..5 {
        let (bytes, latency) = client.query_once(Duration::from_secs(10)).unwrap();
        assert!(bytes >= 4);
        assert!(latency < Duration::from_secs(10));
    }
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn concurrent_clients_are_served() {
    let (mut dep, mut cluster, transport) = launch(1, SearchFunction::TopK { k: 10 });
    let app = cluster.app;
    let handles: Vec<_> = (0..8)
        .map(|c| {
            let transport = transport.clone();
            // netagg-lint: allow(no-raw-spawn) e2e client threads live outside any runtime JoinScope
            std::thread::spawn(move || {
                let mut client = Client::connect(&transport, app, c, 2_000).unwrap();
                for _ in 0..5 {
                    client.query_once(Duration::from_secs(10)).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        cluster
            .frontend
            .stats()
            .queries_completed
            .load(std::sync::atomic::Ordering::Relaxed),
        40
    );
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn conjunctive_queries_work_end_to_end() {
    use minisearch::score::QueryMode;
    let (mut dep, mut cluster, _t) = launch(1, SearchFunction::TopK { k: 20 });
    // A head word co-occurring with a mid-frequency word: AND must return
    // a subset of OR.
    let terms = vec![minisearch::corpus::word(0), minisearch::corpus::word(40)];
    let any = cluster.frontend.query_mode(&terms, QueryMode::Any).unwrap();
    let all = cluster.frontend.query_mode(&terms, QueryMode::All).unwrap();
    assert!(!any.results.docs.is_empty());
    let any_ids: std::collections::HashSet<u32> = any.results.docs.iter().map(|d| d.doc).collect();
    for d in &all.results.docs {
        assert!(
            any_ids.contains(&d.doc) || all.results.docs.len() <= 20,
            "AND results come from the OR candidate set"
        );
    }
    assert!(all.results.docs.len() <= any.results.docs.len());
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn unknown_terms_return_empty_results() {
    let (mut dep, mut cluster, _t) = launch(1, SearchFunction::TopK { k: 10 });
    // Vocabulary is x0..x1999; this term exists nowhere.
    let out = cluster
        .frontend
        .query(&["zzz-not-a-word".to_string()])
        .unwrap();
    assert!(out.results.docs.is_empty());
    // The machinery still ran end-to-end (a real, empty aggregate).
    assert!(out.latency < Duration::from_secs(10));
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn frontend_stats_track_completed_queries_and_bytes() {
    let (mut dep, mut cluster, _t) = launch(1, SearchFunction::TopK { k: 5 });
    let terms = vec![minisearch::corpus::word(0)];
    for _ in 0..3 {
        cluster.frontend.query(&terms).unwrap();
    }
    use std::sync::atomic::Ordering::Relaxed;
    let stats = cluster.frontend.stats();
    assert_eq!(stats.queries_completed.load(Relaxed), 3);
    assert_eq!(stats.queries_failed.load(Relaxed), 0);
    assert!(stats.result_bytes.load(Relaxed) > 0);
    cluster.shutdown();
    dep.shutdown();
}

#[test]
fn scale_out_boxes_serve_search_traffic() {
    // Two boxes, two trees: the per-request hash spreads queries across
    // both scale-out boxes while results stay correct.
    let transport: Arc<dyn Transport> = Arc::new(ChannelTransport::new());
    let cluster_spec = ClusterSpec::single_rack(4, 2).with_trees(2);
    let mut dep = NetAggDeployment::launch(transport.clone(), &cluster_spec).unwrap();
    let mut cluster = SearchCluster::launch(
        &mut dep,
        transport,
        &corpus_cfg(),
        SearchFunction::TopK { k: 10 },
        FrontendConfig {
            backend_k: 50,
            timeout: Duration::from_secs(10),
        },
        1.0,
    )
    .unwrap();
    for q in 0..20 {
        let out = cluster
            .frontend
            .query(&[minisearch::corpus::word(q % 5)])
            .unwrap();
        assert!(!out.results.docs.is_empty());
    }
    use std::sync::atomic::Ordering::Relaxed;
    let c0 = dep.boxes()[0].stats().requests_completed.load(Relaxed);
    let c1 = dep.boxes()[1].stats().requests_completed.load(Relaxed);
    assert_eq!(c0 + c1, 20);
    assert!(
        c0 > 0 && c1 > 0,
        "both boxes should serve queries: {c0}/{c1}"
    );
    cluster.shutdown();
    dep.shutdown();
}
