//! Property-based tests of the search engine's aggregation semantics: all
//! three aggregation functions must be associative and commutative (the
//! platform's correctness precondition), the codec total, and sharded
//! search equivalent to unsharded search.

use bytes::Bytes;
use minisearch::aggfn::{Categorise, Sample, SearchAgg, TopK};
use minisearch::corpus::{Corpus, CorpusConfig, BASE_CATEGORIES};
use minisearch::index::{GlobalStats, InvertedIndex};
use minisearch::score::{search, search_with, ScoredDoc, SearchResults};
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = ScoredDoc> {
    (
        0u32..500,
        0.0f64..100.0,
        proptest::sample::select(BASE_CATEGORIES.to_vec()),
    )
        .prop_map(|(doc, score, cat)| ScoredDoc {
            doc,
            score,
            snippet: format!("category:{cat} some words"),
        })
}

fn parts_strategy() -> impl Strategy<Value = Vec<SearchResults>> {
    proptest::collection::vec(
        proptest::collection::vec(doc_strategy(), 0..12).prop_map(|docs| SearchResults { docs }),
        1..6,
    )
}

fn doc_ids(r: &SearchResults) -> Vec<u32> {
    let mut v: Vec<u32> = r.docs.iter().map(|d| d.doc).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging in any grouping/order yields the same document set, for all
    /// three aggregation functions.
    #[test]
    fn aggregation_functions_are_associative_and_commutative(
        parts in parts_strategy(),
        pivot in any::<usize>(),
    ) {
        fn check<A: SearchAgg>(agg: &A, parts: &[SearchResults], pivot: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
            let all_at_once = agg.merge(parts.to_vec());
            let cut = 1 + pivot % parts.len().max(1);
            let (a, b) = parts.split_at(cut.min(parts.len()));
            let staged = agg.merge(vec![
                agg.merge(a.to_vec()),
                agg.merge(b.to_vec()),
            ]);
            let mut rev = parts.to_vec();
            rev.reverse();
            let reversed = agg.merge(rev);
            (doc_ids(&all_at_once), doc_ids(&staged), doc_ids(&reversed))
        }
        for k in [1usize, 3, 100] {
            let (x, y, z) = check(&TopK::new(k), &parts, pivot);
            prop_assert_eq!(&x, &y, "TopK({}) grouping", k);
            prop_assert_eq!(&x, &z, "TopK({}) order", k);
        }
        let (x, y, z) = check(&Categorise::new(2), &parts, pivot);
        prop_assert_eq!(&x, &y, "Categorise grouping");
        prop_assert_eq!(&x, &z, "Categorise order");
        // Sample is deliberately only *weakly* associative: re-sampling
        // already-sampled data compounds the ratio (true of the paper's
        // sample function as well), so tree shape may change the kept set.
        // The invariants are: order-independence for a fixed grouping, and
        // output always a subset of the input union.
        for alpha in [0.1, 0.5, 1.0] {
            let agg = Sample::new(alpha);
            let a = agg.merge(parts.clone());
            let mut rev = parts.clone();
            rev.reverse();
            let b = agg.merge(rev);
            prop_assert_eq!(doc_ids(&a), doc_ids(&b), "Sample({}) order", alpha);
            let union: std::collections::HashSet<u32> =
                parts.iter().flat_map(|p| p.docs.iter().map(|d| d.doc)).collect();
            prop_assert!(a.docs.iter().all(|d| union.contains(&d.doc)));
            // Full-ratio sampling keeps everything regardless of grouping.
            if alpha == 1.0 {
                let (x, y, z) = check(&agg, &parts, pivot);
                prop_assert_eq!(&x, &y);
                prop_assert_eq!(&x, &z);
            }
        }
    }

    /// The result codec roundtrips arbitrary result lists and never panics
    /// on arbitrary bytes.
    #[test]
    fn results_codec_roundtrips(
        docs in proptest::collection::vec(doc_strategy(), 0..20),
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let r = SearchResults { docs };
        let decoded = SearchResults::decode(&r.encode()).unwrap();
        prop_assert_eq!(decoded, r);
        let _ = SearchResults::decode(&Bytes::from(garbage));
    }

    /// TopK keeps the k highest-scoring documents.
    #[test]
    fn topk_keeps_the_best(
        docs in proptest::collection::vec(doc_strategy(), 1..40),
        k in 1usize..10,
    ) {
        let merged = TopK::new(k).merge(vec![SearchResults { docs: docs.clone() }]);
        prop_assert!(merged.docs.len() <= k);
        let worst_kept = merged.docs.last().map(|d| d.score).unwrap_or(f64::MIN);
        let dropped_best = docs
            .iter()
            .filter(|d| !merged.docs.iter().any(|m| m.doc == d.doc && m.score == d.score))
            .map(|d| d.score)
            .fold(f64::MIN, f64::max);
        prop_assert!(worst_kept >= dropped_best - 1e-12);
    }
}

/// Sharded search returns the same top-k as searching one combined index
/// (the distributed-search correctness property the platform relies on).
#[test]
fn sharded_topk_equals_unsharded() {
    let corpus = Corpus::generate(&CorpusConfig {
        num_docs: 300,
        vocabulary: 800,
        mean_words: 40,
        markers_per_doc: 3,
        seed: 21,
    });
    let full = InvertedIndex::build(&corpus.docs);
    let shards: Vec<InvertedIndex> = corpus
        .shards(4)
        .iter()
        .map(|docs| InvertedIndex::build(docs))
        .collect();
    // With corpus-global statistics (distributed IDF), sharded top-k is
    // *exactly* the single-index top-k; with shard-local statistics it can
    // legitimately diverge (the classic Solr artifact).
    let global = GlobalStats::from_shards(shards.iter());
    assert_eq!(global.num_docs, full.num_docs());
    for q in 0..40 {
        let terms = vec![
            minisearch::corpus::word(q * 3 % 100),
            minisearch::corpus::word(q % 17),
        ];
        let direct = search(&full, &terms, 10);
        let partials: Vec<SearchResults> = shards
            .iter()
            .map(|s| search_with(s, Some(&global), &terms, 10))
            .collect();
        let merged = SearchResults::merge_topk(partials, 10);
        let ids = |r: &SearchResults| r.docs.iter().map(|d| d.doc).collect::<Vec<_>>();
        assert_eq!(
            ids(&direct),
            ids(&merged),
            "query {terms:?} diverges despite global statistics"
        );
    }
}
