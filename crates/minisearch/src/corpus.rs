//! Synthetic Wikipedia-like corpus.
//!
//! The paper loads a June 2012 Wikipedia XML snapshot into the backends.
//! We generate a deterministic substitute with the statistical properties
//! the experiments exercise: a Zipf-distributed vocabulary (so query terms
//! hit posting lists of realistic, skewed lengths), variable document
//! lengths, and explicit `category:<name>` markers with a majority base
//! category per document (what the CPU-intensive `categorise` aggregation
//! parses — Section 4.2.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The base categories documents are classified into (the paper uses
/// Wikipedia's base categories).
pub const BASE_CATEGORIES: &[&str] = &[
    "science",
    "history",
    "geography",
    "technology",
    "arts",
    "sports",
    "politics",
    "nature",
];

/// One document.
#[derive(Debug, Clone)]
pub struct Document {
    /// Document identifier, unique across the corpus.
    pub id: u32,
    /// Title (informational).
    pub title: String,
    /// Body text, including `category:` markers.
    pub body: String,
    /// Ground-truth majority base category (index into
    /// [`BASE_CATEGORIES`]); kept for test assertions.
    pub base_category: usize,
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Vocabulary size; terms are drawn Zipf(s = 1.07), like natural text.
    pub vocabulary: usize,
    /// Mean words per document (uniform in `[mean/2, 3 mean/2]`).
    pub mean_words: usize,
    /// Category markers per document.
    pub markers_per_doc: usize,
    /// RNG seed; identical seeds reproduce identical corpora.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 2_000,
            vocabulary: 20_000,
            mean_words: 120,
            markers_per_doc: 6,
            seed: 2012,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The generated documents.
    pub docs: Vec<Document>,
}

impl Corpus {
    /// Generate a corpus (deterministic under `cfg.seed`).
    pub fn generate(cfg: &CorpusConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Precompute the Zipf CDF once.
        let zipf = ZipfSampler::new(cfg.vocabulary, 1.07);
        let mut docs = Vec::with_capacity(cfg.num_docs);
        for id in 0..cfg.num_docs {
            let len = rng
                .random_range(cfg.mean_words / 2..=cfg.mean_words * 3 / 2)
                .max(5);
            let mut body = String::with_capacity(len * 8);
            for _ in 0..len {
                let term = zipf.sample(&mut rng);
                body.push_str(&word(term));
                body.push(' ');
            }
            // A majority base category plus minority markers.
            let base = rng.random_range(0..BASE_CATEGORIES.len());
            for m in 0..cfg.markers_per_doc {
                let cat = if m < cfg.markers_per_doc.div_ceil(2) + 1 {
                    base
                } else {
                    rng.random_range(0..BASE_CATEGORIES.len())
                };
                body.push_str("category:");
                body.push_str(BASE_CATEGORIES[cat]);
                body.push(' ');
            }
            docs.push(Document {
                id: id as u32,
                title: format!("doc-{id}"),
                base_category: base,
                body,
            });
        }
        Self { docs }
    }

    /// Split the corpus into `n` shards (round-robin, like Solr's document
    /// routing across index servers).
    pub fn shards(&self, n: usize) -> Vec<Vec<Document>> {
        let mut out = vec![Vec::new(); n];
        for (i, d) in self.docs.iter().enumerate() {
            out[i % n].push(d.clone());
        }
        out
    }

    /// `count` random query terms drawn from the same Zipf vocabulary, so
    /// queries hit realistic posting lists (the paper's clients query three
    /// random words).
    pub fn random_query(&self, rng: &mut StdRng, vocabulary: usize, count: usize) -> Vec<String> {
        let zipf = ZipfSampler::new(vocabulary, 1.07);
        (0..count).map(|_| word(zipf.sample(rng))).collect()
    }
}

/// Deterministic word spelling for vocabulary index `i`. The digit suffix
/// guarantees no generated word collides with a stopword.
pub fn word(i: usize) -> String {
    format!("x{i}")
}

/// Inverse-CDF Zipf sampler over ranks `1..=n`.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute the CDF for ranks `1..=n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig {
            num_docs: 50,
            ..CorpusConfig::default()
        };
        let a = Corpus::generate(&cfg);
        let b = Corpus::generate(&cfg);
        assert_eq!(a.docs.len(), 50);
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.body, y.body);
            assert_eq!(x.base_category, y.base_category);
        }
    }

    #[test]
    fn docs_contain_majority_category_markers() {
        let cfg = CorpusConfig {
            num_docs: 30,
            ..CorpusConfig::default()
        };
        let c = Corpus::generate(&cfg);
        for d in &c.docs {
            let marker = format!("category:{}", BASE_CATEGORIES[d.base_category]);
            let count = d.body.matches(&marker).count();
            assert!(count >= cfg.markers_per_doc / 2, "majority marker missing");
        }
    }

    #[test]
    fn shards_partition_the_corpus() {
        let c = Corpus::generate(&CorpusConfig {
            num_docs: 10,
            ..CorpusConfig::default()
        });
        let shards = c.shards(3);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 10);
        let mut ids: Vec<u32> = shards.iter().flatten().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_is_skewed() {
        let z = ZipfSampler::new(1000, 1.07);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top-10 ranks should dominate.
        assert!(head as f64 / n as f64 > 0.3, "head mass {head}/{n}");
    }

    #[test]
    fn words_are_never_stopwords() {
        for i in 0..2000 {
            assert!(!crate::tokenize::is_stopword(&word(i)));
        }
    }
}
