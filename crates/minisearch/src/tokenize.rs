//! Tokenisation: lowercase alphanumeric terms with a small stopword list.

/// Words too common to index.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "is", "it", "of", "on",
    "or", "that", "the", "to", "was", "with",
];

/// Whether `term` is on the stopword list.
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.contains(&term)
}

/// Split text into lowercase alphanumeric terms, dropping stopwords.
/// `category:` markers are kept intact (used by the categorise function).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let term: String = raw
            .chars()
            .filter(|c| c.is_alphanumeric() || *c == ':')
            .flat_map(|c| c.to_lowercase())
            .collect();
        if term.is_empty() || is_stopword(&term) {
            continue;
        }
        out.push(term);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn drops_stopwords() {
        assert_eq!(tokenize("the cat and the hat"), vec!["cat", "hat"]);
    }

    #[test]
    fn keeps_category_markers() {
        assert_eq!(
            tokenize("text category:Science more"),
            vec!["text", "category:science", "more"]
        );
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ,,, !!!").is_empty());
    }
}
