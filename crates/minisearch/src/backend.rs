//! Backend (index server): serves sub-queries over one index shard and
//! returns partial results through its worker shim (which redirects them
//! to the first on-path agg box, or straight to the frontend when no boxes
//! are deployed).

use crate::index::{GlobalStats, InvertedIndex};
use crate::score::{self, QueryMode};
use bytes::{BufMut, Bytes, BytesMut};
use netagg_core::lifecycle::{CancelToken, JoinScope, DEFAULT_JOIN_DEADLINE};
use netagg_core::protocol::AppId;
use netagg_core::shim::WorkerShim;
use netagg_core::tree::service_addr;
use netagg_net::{wire, Connection, NetError, NodeId, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Application-level messages of the search protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchMsg {
    /// client -> frontend and frontend -> backend.
    Query {
        /// Request identifier (chosen by the client/frontend).
        request: u64,
        /// Query terms.
        terms: Vec<String>,
        /// Top-k to return per backend.
        k: u32,
        /// Disjunctive or conjunctive matching.
        mode: QueryMode,
    },
    /// frontend -> client: the final merged result.
    Reply {
        /// Echo of the query's request id.
        request: u64,
        /// Serialised [`crate::score::SearchResults`].
        payload: Bytes,
    },
}

impl SearchMsg {
    /// Serialise to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            SearchMsg::Query {
                request,
                terms,
                k,
                mode,
            } => {
                b.put_u8(1);
                b.put_u64(*request);
                b.put_u32(*k);
                b.put_u8(mode.to_byte());
                b.put_u32(terms.len() as u32);
                for t in terms {
                    wire::put_str(&mut b, t);
                }
            }
            SearchMsg::Reply { request, payload } => {
                b.put_u8(2);
                b.put_u64(*request);
                wire::put_bytes(&mut b, payload);
            }
        }
        b.freeze()
    }

    /// Parse the wire format, validating counts before allocating.
    pub fn decode(frame: Bytes) -> Result<Self, NetError> {
        let mut src = frame;
        match wire::get_u8(&mut src)? {
            1 => {
                let request = wire::get_u64(&mut src)?;
                let k = wire::get_u32(&mut src)?;
                let mode = QueryMode::from_byte(wire::get_u8(&mut src)?);
                let n = wire::get_u32(&mut src)?;
                // Each term costs at least its 4-byte length prefix; reject
                // counts the remaining bytes cannot possibly hold.
                if (n as usize).saturating_mul(4) > src.len() {
                    return Err(NetError::Corrupt(format!("claimed {n} terms")));
                }
                let mut terms = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    terms.push(wire::get_str(&mut src)?);
                }
                Ok(SearchMsg::Query {
                    request,
                    terms,
                    k,
                    mode,
                })
            }
            2 => Ok(SearchMsg::Reply {
                request: wire::get_u64(&mut src)?,
                payload: wire::get_bytes(&mut src)?,
            }),
            t => Err(NetError::Corrupt(format!("bad search msg tag {t}"))),
        }
    }
}

/// Address of backend `w`'s query listener.
pub fn backend_service_addr(app: AppId, worker: u32) -> NodeId {
    service_addr(app, worker)
}

/// Per-backend counters.
#[derive(Debug, Default)]
pub struct BackendStats {
    /// Sub-queries answered.
    pub queries_served: AtomicU64,
    /// Serialised partial-result bytes produced.
    pub result_bytes: AtomicU64,
}

/// A running backend.
pub struct Backend {
    stats: Arc<BackendStats>,
    cancel: CancelToken,
    scope: Arc<JoinScope>,
}

impl Backend {
    /// Start serving queries against `index`; partial results leave through
    /// `shim`.
    pub fn start(
        transport: Arc<dyn Transport>,
        app: AppId,
        worker: u32,
        index: Arc<InvertedIndex>,
        shim: Arc<WorkerShim>,
    ) -> Result<Self, NetError> {
        Self::start_with_stats(transport, app, worker, index, None, shim)
    }

    /// Start with corpus-global statistics so distributed scoring matches
    /// a single index exactly (distributed IDF).
    pub fn start_with_stats(
        transport: Arc<dyn Transport>,
        app: AppId,
        worker: u32,
        index: Arc<InvertedIndex>,
        global: Option<Arc<GlobalStats>>,
        shim: Arc<WorkerShim>,
    ) -> Result<Self, NetError> {
        let mut listener = transport.bind(backend_service_addr(app, worker))?;
        let stats = Arc::new(BackendStats::default());
        let cancel = CancelToken::new();
        let scope = Arc::new(JoinScope::new(
            format!("backend-{}-{}", app.0, worker),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
        ));
        let st = stats.clone();
        let accept_cancel = cancel.clone();
        let accept_scope = scope.clone();
        scope
            .spawn(format!("backend-{}-{}", app.0, worker), move || loop {
                match listener.accept_cancellable(&accept_cancel) {
                    Ok(conn) => {
                        let index = index.clone();
                        let global = global.clone();
                        let shim = shim.clone();
                        let cancel = accept_cancel.clone();
                        let st2 = st.clone();
                        // After cancellation the scope drops the closure
                        // instead of spawning: a connection accepted during
                        // teardown is simply closed.
                        accept_scope
                            .spawn(format!("backend-{}-{}-serve", app.0, worker), move || {
                                serve(conn, &index, global.as_deref(), &shim, &cancel, &st2)
                            })
                            .expect("spawn backend serve");
                    }
                    Err(NetError::Timeout) => continue,
                    Err(_) => return, // cancelled or listener torn down
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(Self {
            stats,
            cancel,
            scope,
        })
    }

    /// Counters exposed for the harness and tests.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// Stop serving, waking blocked accept/recv calls, and join the
    /// backend's threads under the scope deadline. Idempotent.
    pub fn shutdown(&mut self) {
        self.cancel.cancel();
        self.scope.finish();
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(
    mut conn: Box<dyn Connection>,
    index: &InvertedIndex,
    global: Option<&GlobalStats>,
    shim: &WorkerShim,
    cancel: &CancelToken,
    stats: &BackendStats,
) {
    loop {
        let frame = match conn.recv_cancellable(cancel) {
            Ok(f) => f,
            Err(NetError::Timeout) => continue,
            Err(_) => return, // cancelled or peer gone
        };
        let Ok(SearchMsg::Query {
            request,
            terms,
            k,
            mode,
        }) = SearchMsg::decode(frame)
        else {
            continue;
        };
        let results = score::search_mode(index, global, &terms, k as usize, mode);
        stats.queries_served.fetch_add(1, Ordering::Relaxed);
        let payload = results.encode();
        stats
            .result_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // The shim intercepts the "response" and redirects it on-path.
        let _ = shim.send_partial(request, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_msg_roundtrip() {
        let q = SearchMsg::Query {
            request: 99,
            terms: vec!["rust".into(), "netagg".into()],
            k: 10,
            mode: QueryMode::All,
        };
        assert_eq!(SearchMsg::decode(q.encode()).unwrap(), q);
        let r = SearchMsg::Reply {
            request: 99,
            payload: Bytes::from_static(b"result-bytes"),
        };
        assert_eq!(SearchMsg::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn search_msg_rejects_garbage() {
        assert!(SearchMsg::decode(Bytes::from_static(&[9, 9, 9])).is_err());
        assert!(SearchMsg::decode(Bytes::new()).is_err());
    }
}
