//! The search engine's aggregation functions (Section 4.2.1).
//!
//! * [`TopK`] — the standard distributed-search merge: keep the globally
//!   best `k` documents.
//! * [`Sample`] — the paper's computationally *cheap* function: return a
//!   deterministic sample of the merged documents sized by the output
//!   ratio `alpha` (which therefore controls data reduction).
//! * [`Categorise`] — the paper's *CPU-intensive* function: classify each
//!   document into its majority base category by parsing the snippet for
//!   category markers, and return the top-k per category.
//!
//! All three are associative and commutative, so they can run at any agg
//! box of the tree.

use crate::corpus::BASE_CATEGORIES;
use crate::score::{ScoredDoc, SearchResults};
use bytes::Bytes;
use netagg_core::{AggError, AggregationFunction};

/// Shared serialisation for all search aggregation functions.
pub trait SearchAgg {
    /// Merge partial result lists into one.
    fn merge(&self, parts: Vec<SearchResults>) -> SearchResults;
}

macro_rules! impl_agg_fn {
    ($ty:ty) => {
        impl AggregationFunction for $ty {
            type Item = SearchResults;

            fn deserialize(&self, payload: &Bytes) -> Result<SearchResults, AggError> {
                SearchResults::decode(payload)
            }

            fn serialize(&self, item: &SearchResults) -> Bytes {
                item.encode()
            }

            fn aggregate(&self, items: Vec<SearchResults>) -> SearchResults {
                self.merge(items)
            }

            fn empty(&self) -> SearchResults {
                SearchResults::default()
            }
        }
    };
}

/// Global top-k merge.
#[derive(Debug, Clone)]
pub struct TopK {
    /// Number of documents to keep.
    pub k: usize,
}

impl TopK {
    /// Keep the best `k` documents.
    pub fn new(k: usize) -> Self {
        Self { k }
    }
}

impl SearchAgg for TopK {
    fn merge(&self, parts: Vec<SearchResults>) -> SearchResults {
        SearchResults::merge_topk(parts, self.k)
    }
}
impl_agg_fn!(TopK);

/// Deterministic sampling with output ratio `alpha`: keeps
/// `ceil(alpha x merged)` documents, chosen by a hash of the document id so
/// the function stays commutative/associative (a random choice would not
/// be).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Output ratio in `[0, 1]`.
    pub alpha: f64,
}

impl Sample {
    /// Keep an `alpha` fraction of the merged documents.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        Self { alpha }
    }
}

impl SearchAgg for Sample {
    fn merge(&self, parts: Vec<SearchResults>) -> SearchResults {
        let mut docs: Vec<ScoredDoc> = parts.into_iter().flat_map(|p| p.docs).collect();
        // Deterministic priority per document: hash of the id. Taking the
        // alpha-fraction with smallest hash commutes across groupings.
        docs.sort_by_key(|d| (netagg_core::protocol_hash(d.doc as u64), d.doc));
        // ceil keeps at least one document whenever any input is non-empty.
        let keep = ((docs.len() as f64) * self.alpha).ceil() as usize;
        docs.truncate(keep);
        SearchResults { docs }
    }
}
impl_agg_fn!(Sample);

/// CPU-intensive classification: parse each snippet's `category:` markers,
/// classify the document into its majority base category, return the top-k
/// per category.
#[derive(Debug, Clone)]
pub struct Categorise {
    /// Documents kept per base category.
    pub k_per_category: usize,
}

impl Categorise {
    /// Keep the best `k_per_category` documents of each base category.
    pub fn new(k_per_category: usize) -> Self {
        Self { k_per_category }
    }

    /// Majority base category of a snippet (the deliberately string-heavy
    /// inner loop that makes this function CPU-bound, as in the paper).
    pub fn classify(snippet: &str) -> usize {
        let mut counts = [0u32; BASE_CATEGORIES.len()];
        for token in snippet.split_whitespace() {
            let Some(name) = token.strip_prefix("category:") else {
                continue;
            };
            for (i, cat) in BASE_CATEGORIES.iter().enumerate() {
                // Character-wise comparison (string parsing cost).
                if name.len() == cat.len() && name.chars().zip(cat.chars()).all(|(a, b)| a == b) {
                    counts[i] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl SearchAgg for Categorise {
    fn merge(&self, parts: Vec<SearchResults>) -> SearchResults {
        let mut per_cat: Vec<Vec<ScoredDoc>> = vec![Vec::new(); BASE_CATEGORIES.len()];
        for p in parts {
            for d in p.docs {
                let cat = Self::classify(&d.snippet);
                per_cat[cat].push(d);
            }
        }
        let mut out = Vec::new();
        for mut docs in per_cat {
            docs.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.doc.cmp(&b.doc))
            });
            docs.truncate(self.k_per_category);
            out.extend(docs);
        }
        SearchResults { docs: out }
    }
}
impl_agg_fn!(Categorise);

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, score: f64, snippet: &str) -> ScoredDoc {
        ScoredDoc {
            doc: id,
            score,
            snippet: snippet.to_string(),
        }
    }

    fn part(docs: Vec<ScoredDoc>) -> SearchResults {
        SearchResults { docs }
    }

    #[test]
    fn sample_respects_alpha() {
        let s = Sample::new(0.25);
        let parts = vec![part((0..100).map(|i| doc(i, 1.0, "")).collect())];
        let out = s.merge(parts);
        assert_eq!(out.docs.len(), 25);
    }

    #[test]
    fn sample_is_associative() {
        let s = Sample::new(0.5);
        let a = part((0..10).map(|i| doc(i, 1.0, "")).collect());
        let b = part((10..20).map(|i| doc(i, 1.0, "")).collect());
        let c = part((20..30).map(|i| doc(i, 1.0, "")).collect());
        let left = s.merge(vec![s.merge(vec![a.clone(), b.clone()]), c.clone()]);
        let right = s.merge(vec![a, s.merge(vec![b, c])]);
        // Same document set (order may differ only deterministically).
        let mut l: Vec<u32> = left.docs.iter().map(|d| d.doc).collect();
        let mut r: Vec<u32> = right.docs.iter().map(|d| d.doc).collect();
        l.sort_unstable();
        r.sort_unstable();
        assert_eq!(l, r);
    }

    #[test]
    fn sample_alpha_one_keeps_everything() {
        let s = Sample::new(1.0);
        let out = s.merge(vec![part((0..7).map(|i| doc(i, 1.0, "")).collect())]);
        assert_eq!(out.docs.len(), 7);
    }

    #[test]
    fn classify_finds_majority_category() {
        let snippet = "category:science category:science category:arts words";
        assert_eq!(
            Categorise::classify(snippet),
            BASE_CATEGORIES
                .iter()
                .position(|c| *c == "science")
                .unwrap()
        );
    }

    #[test]
    fn categorise_returns_topk_per_category() {
        let c = Categorise::new(1);
        let sci = "category:science";
        let art = "category:arts";
        let out = c.merge(vec![part(vec![
            doc(1, 1.0, sci),
            doc(2, 3.0, sci),
            doc(3, 2.0, art),
        ])]);
        assert_eq!(out.docs.len(), 2);
        assert!(out.docs.iter().any(|d| d.doc == 2));
        assert!(out.docs.iter().any(|d| d.doc == 3));
    }

    #[test]
    fn topk_agg_function_roundtrip() {
        let f = TopK::new(2);
        let a = part(vec![doc(1, 5.0, ""), doc(2, 1.0, "")]);
        let b = part(vec![doc(3, 3.0, "")]);
        let out = f.aggregate(vec![a, b]);
        assert_eq!(
            out.docs.iter().map(|d| d.doc).collect::<Vec<_>>(),
            vec![1, 3]
        );
        let ser = f.serialize(&out);
        assert_eq!(f.deserialize(&ser).unwrap(), out);
        assert!(f.empty().docs.is_empty());
    }
}
