//! Frontend (master): accepts client queries, fans sub-queries out to the
//! backends, collects the aggregated result through the master shim and
//! replies to the client.

use crate::backend::{backend_service_addr, SearchMsg};
use crate::score::{QueryMode, SearchResults};
use bytes::Bytes;
use netagg_core::lifecycle::{CancelToken, JoinScope, DEFAULT_JOIN_DEADLINE};
use netagg_core::protocol::AppId;
use netagg_core::shim::MasterShim;
use netagg_core::tree::service_addr;
use netagg_core::AggError;
use netagg_net::{Connection, NetError, NodeId, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Index of the frontend's client-facing listener in the service space
/// (backends use their worker ids; this is above any worker id).
const FRONTEND_SERVICE_IDX: u32 = 9_999;

/// Address clients connect to.
pub fn frontend_service_addr(app: AppId) -> NodeId {
    service_addr(app, FRONTEND_SERVICE_IDX)
}

/// Frontend configuration.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Top-k each backend returns.
    pub backend_k: u32,
    /// Per-request timeout.
    pub timeout: Duration,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            backend_k: 100,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Frontend counters.
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Queries answered end-to-end.
    pub queries_completed: AtomicU64,
    /// Queries that timed out or failed.
    pub queries_failed: AtomicU64,
    /// Combined-result bytes delivered.
    pub result_bytes: AtomicU64,
}

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);

struct Inner {
    /// Unique per frontend instance; distinguishes connection caches when
    /// several clusters share one process (tests, benches).
    instance: u64,
    app: AppId,
    cfg: FrontendConfig,
    transport: Arc<dyn Transport>,
    master: Arc<MasterShim>,
    backend_workers: Vec<u32>,
    stats: FrontendStats,
    next_request: AtomicU64,
    cancel: CancelToken,
}

/// A running frontend.
pub struct Frontend {
    inner: Arc<Inner>,
    scope: Arc<JoinScope>,
}

impl Frontend {
    /// Bind the client-facing listener and start serving.
    pub fn start(
        transport: Arc<dyn Transport>,
        app: AppId,
        master: Arc<MasterShim>,
        backend_workers: Vec<u32>,
        cfg: FrontendConfig,
    ) -> Result<Arc<Self>, NetError> {
        let mut listener = transport.bind(frontend_service_addr(app))?;
        let cancel = CancelToken::new();
        let inner = Arc::new(Inner {
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            app,
            cfg,
            transport,
            master,
            backend_workers,
            stats: FrontendStats::default(),
            next_request: AtomicU64::new(1),
            cancel: cancel.clone(),
        });
        let scope = Arc::new(JoinScope::new(
            format!("frontend-{}", app.0),
            cancel.clone(),
            DEFAULT_JOIN_DEADLINE,
        ));
        let fe = Arc::new(Self {
            inner: inner.clone(),
            scope: scope.clone(),
        });
        let accept_scope = scope.clone();
        scope
            .spawn(format!("frontend-{}", app.0), move || loop {
                match listener.accept_cancellable(&cancel) {
                    Ok(conn) => {
                        let inner = inner.clone();
                        // After cancellation the scope drops the closure
                        // instead of spawning: a connection accepted during
                        // teardown is simply closed.
                        accept_scope
                            .spawn(format!("frontend-{}-client", inner.app.0), move || {
                                serve_client(&inner, conn)
                            })
                            .expect("spawn frontend client");
                    }
                    Err(NetError::Timeout) => continue,
                    Err(_) => return, // cancelled or listener torn down
                }
            })
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(fe)
    }

    /// Counters exposed for the harness and tests.
    pub fn stats(&self) -> &FrontendStats {
        &self.inner.stats
    }

    /// Execute one query end-to-end on behalf of a caller in-process (used
    /// by tests and the harness when no client connection is needed).
    pub fn query(&self, terms: &[String]) -> Result<QueryOutcome, AggError> {
        execute(&self.inner, terms, QueryMode::Any)
    }

    /// Like [`Frontend::query`] with an explicit match mode.
    pub fn query_mode(&self, terms: &[String], mode: QueryMode) -> Result<QueryOutcome, AggError> {
        execute(&self.inner, terms, mode)
    }

    /// Stop serving, waking blocked accept/recv calls, and join the
    /// frontend's threads under the scope deadline. Idempotent.
    pub fn shutdown(&self) {
        self.inner.cancel.cancel();
        self.scope.finish();
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Result of one query as observed at the frontend.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The merged result list.
    pub results: SearchResults,
    /// End-to-end latency observed at the frontend.
    pub latency: Duration,
    /// Bytes of the combined result delivered to the frontend.
    pub result_bytes: usize,
}

fn execute(
    inner: &Arc<Inner>,
    terms: &[String],
    mode: QueryMode,
) -> Result<QueryOutcome, AggError> {
    let request = inner.next_request.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let pending = inner
        .master
        .register_request(request, inner.backend_workers.len());
    let q = SearchMsg::Query {
        request,
        terms: terms.to_vec(),
        k: inner.cfg.backend_k,
        mode,
    };
    // Fan the sub-queries out (fresh connections per request would be
    // wasteful; the frontend keeps one connection per backend per calling
    // thread via thread-local caching below).
    BACKEND_CONNS.with(|cache| -> Result<(), AggError> {
        let mut cache = cache.borrow_mut();
        for &w in &inner.backend_workers {
            let addr = backend_service_addr(inner.app, w);
            let key = (inner.instance, w);
            let conn = match cache.get_mut(&key) {
                Some(c) => c,
                None => {
                    let c = inner
                        .transport
                        .connect(frontend_service_addr(inner.app), addr)
                        .map_err(AggError::from)?;
                    cache.entry(key).or_insert(c)
                }
            };
            conn.send(q.encode()).map_err(AggError::from)?;
        }
        Ok(())
    })?;
    let result = pending.wait(inner.cfg.timeout);
    match result {
        Ok(agg) => {
            inner
                .stats
                .queries_completed
                .fetch_add(1, Ordering::Relaxed);
            inner
                .stats
                .result_bytes
                .fetch_add(agg.combined.len() as u64, Ordering::Relaxed);
            Ok(QueryOutcome {
                result_bytes: agg.combined.len(),
                results: SearchResults::decode(&agg.combined)?,
                latency: t0.elapsed(),
            })
        }
        Err(e) => {
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

thread_local! {
    static BACKEND_CONNS: std::cell::RefCell<std::collections::HashMap<(u64, u32), Box<dyn Connection>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

fn serve_client(inner: &Arc<Inner>, mut conn: Box<dyn Connection>) {
    loop {
        let frame = match conn.recv_cancellable(&inner.cancel) {
            Ok(f) => f,
            Err(NetError::Timeout) => continue,
            Err(_) => return, // cancelled or client gone
        };
        let Ok(SearchMsg::Query {
            request,
            terms,
            mode,
            ..
        }) = SearchMsg::decode(frame)
        else {
            continue;
        };
        let reply = match execute(inner, &terms, mode) {
            Ok(outcome) => SearchMsg::Reply {
                request,
                payload: outcome.results.encode(),
            },
            Err(_) => SearchMsg::Reply {
                request,
                payload: Bytes::new(),
            },
        };
        if conn.send(reply.encode()).is_err() {
            return;
        }
    }
}

/// A load-generating client: connects to the frontend and issues random
/// three-word queries (Section 4.2.1), measuring latency.
pub struct Client {
    conn: Box<dyn Connection>,
    rng: StdRng,
    vocabulary: usize,
    next_request: u64,
}

impl Client {
    /// Connect a load-generating client to the frontend.
    pub fn connect(
        transport: &Arc<dyn Transport>,
        app: AppId,
        client_id: u32,
        vocabulary: usize,
    ) -> Result<Self, NetError> {
        let conn = transport.connect(
            netagg_core::tree::client_addr(app, client_id),
            frontend_service_addr(app),
        )?;
        Ok(Self {
            conn,
            rng: StdRng::seed_from_u64(client_id as u64),
            vocabulary,
            next_request: (client_id as u64) << 32,
        })
    }

    /// Issue one random three-word query; returns (result payload bytes,
    /// latency).
    pub fn query_once(&mut self, timeout: Duration) -> Result<(usize, Duration), NetError> {
        use rand::Rng;
        let terms: Vec<String> = (0..3)
            .map(|_| crate::corpus::word(self.rng.random_range(0..self.vocabulary)))
            .collect();
        self.next_request += 1;
        let q = SearchMsg::Query {
            request: self.next_request,
            terms,
            k: 100,
            mode: QueryMode::Any,
        };
        let t0 = Instant::now();
        self.conn.send(q.encode())?;
        let frame = self.conn.recv_timeout(timeout)?;
        let latency = t0.elapsed();
        match SearchMsg::decode(frame)? {
            SearchMsg::Reply { payload, .. } => Ok((payload.len(), latency)),
            _ => Err(NetError::Corrupt("expected reply".into())),
        }
    }
}
