//! A distributed full-text search engine — the Apache Solr substitute used
//! by the NetAgg testbed evaluation (Section 3.3 / 4.2.1 of the paper).
//!
//! Architecture (mirroring Solr's distributed mode):
//!
//! * a [`frontend::Frontend`] (master) receives client queries and fans
//!   sub-queries out to backends;
//! * [`backend::Backend`]s (workers) each hold one shard of the inverted
//!   index and return their top-k partial results;
//! * partial results are merged by an associative, commutative aggregation
//!   function: plain top-k merge ([`aggfn::TopK`]), the paper's cheap
//!   [`aggfn::Sample`] (output-ratio controlled) or its CPU-intensive
//!   [`aggfn::Categorise`].
//!
//! With NetAgg deployed, backend shims redirect partial results to on-path
//! agg boxes ([`netagg`]); without it, they flow directly to the frontend
//! — the same code path the paper's "plain Solr" baseline takes.
//!
//! The corpus is synthetic ([`corpus`]): Zipf-distributed vocabulary and
//! explicit category markers substitute for the paper's Wikipedia snapshot
//! while exercising identical code paths (indexing, BM25 scoring, top-k
//! merge, category classification).

//! # Quick example
//!
//! ```
//! use minisearch::corpus::CorpusConfig;
//! use minisearch::frontend::FrontendConfig;
//! use minisearch::netagg::{SearchCluster, SearchFunction};
//! use netagg_core::prelude::*;
//! use netagg_net::ChannelTransport;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // Four backends behind one agg box.
//! let transport = Arc::new(ChannelTransport::new());
//! let mut deployment =
//!     NetAggDeployment::launch(transport.clone(), &ClusterSpec::single_rack(4, 1)).unwrap();
//! let mut cluster = SearchCluster::launch(
//!     &mut deployment,
//!     transport,
//!     &CorpusConfig { num_docs: 200, ..CorpusConfig::default() },
//!     SearchFunction::TopK { k: 10 },
//!     FrontendConfig { backend_k: 20, timeout: Duration::from_secs(10) },
//!     1.0,
//! )
//! .unwrap();
//! let out = cluster.frontend.query(&[minisearch::corpus::word(0)]).unwrap();
//! assert!(out.results.docs.len() <= 10);
//! cluster.shutdown();
//! deployment.shutdown();
//! ```

#![warn(missing_docs)]

pub mod aggfn;
pub mod backend;
pub mod corpus;
pub mod frontend;
pub mod index;
pub mod netagg;
pub mod score;
pub mod tokenize;

pub use aggfn::{Categorise, Sample, SearchAgg, TopK};
pub use backend::Backend;
pub use corpus::{Corpus, CorpusConfig, Document};
pub use frontend::{Frontend, QueryOutcome};
pub use index::InvertedIndex;
pub use score::{ScoredDoc, SearchResults};
